"""Randomized contention generator for stress and property tests.

Spawns ``n_nodes`` workers that perform a random mix of guarded counter
updates, plain eagershared writes, and local think time, with
exponentially distributed gaps drawn from the machine's seeded random
streams.  Used to hammer the optimistic protocol across many
interleavings; the invariants (final counter value, RMW chain, mutual
exclusion) must hold for every seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import WorkloadResult, build_machine, finish

GROUP = "synthetic_group"
COUNTER = "syn_counter"
NOISE = "syn_noise"
LOCK = "syn_lock"


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """Parameters for the randomized contention workload."""

    system: str = "gwc_optimistic"
    n_nodes: int = 6
    sections_per_node: int = 10
    mean_think: float = 5e-6
    mean_section: float = 1e-6
    #: Probability a worker also issues a plain (non-mutex) write
    #: between sections, generating unrelated sharing traffic.
    noise_probability: float = 0.5
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"


def _body(ctx: SectionContext):
    value = ctx.read(COUNTER)
    yield from ctx.compute(ctx.node.locals["_section_time"])
    if ctx.aborted:
        return
    ctx.write(COUNTER, value + 1)
    ctx.observe_rmw(COUNTER, value, value + 1)


_SECTION = Section(
    lock=LOCK,
    body=_body,
    shared_reads=(COUNTER,),
    shared_writes=(COUNTER,),
    label="synthetic",
)


def _worker(node: NodeHandle, system, config: SyntheticConfig):
    rng = node.sim.rng.stream(f"synthetic.{node.id}")
    for i in range(config.sections_per_node):
        yield from node.busy(rng.expovariate(1.0 / config.mean_think), "useful")
        node.locals["_section_time"] = rng.expovariate(1.0 / config.mean_section)
        yield from system.run_section(node, _SECTION)
        if rng.random() < config.noise_probability:
            yield from system.write(node, NOISE, (node.id, i))


def run_synthetic(config: SyntheticConfig = SyntheticConfig()) -> WorkloadResult:
    """Run the randomized workload; extra reports invariant checks."""
    machine, system = build_machine(
        config.system,
        config.n_nodes,
        params=config.params,
        seed=config.seed,
        topology=config.topology,
    )
    machine.create_group(GROUP)
    machine.declare_variable(GROUP, COUNTER, 0, mutex_lock=LOCK)
    machine.declare_variable(GROUP, NOISE, None)
    machine.declare_lock(GROUP, LOCK, protects=(COUNTER,))
    for node in machine.nodes:
        node.locals["_checker"] = machine.checker
        machine.spawn(_worker(node, system, config), name=f"syn-{node.id}")
    result = finish(machine, system)

    expected = config.n_nodes * config.sections_per_node
    finals = [n.store.read(COUNTER) for n in machine.nodes]
    if machine.checker is not None:
        machine.checker.verify_chain(COUNTER, 0)
    result.extra.update(
        expected=expected,
        final_values=finals,
        correct=max(finals) == expected,
        converged=all(v == expected for v in finals),
    )
    return result
