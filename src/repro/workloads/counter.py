"""Shared-counter kernel: every node increments one guarded counter.

The simplest possible mutual-exclusion workload: ``n_nodes`` processors
each perform ``increments_per_node`` read-modify-write updates on a
single lock-protected counter, with ``think_time`` of local work between
updates and ``update_time`` of work inside the section.

Used by the lock-protocol shoot-out ablation (A3 in DESIGN.md) and by
correctness tests (the final counter value and the checker's RMW chain
prove no update was lost under any protocol, including optimistic
execution with rollbacks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import WorkloadResult, build_machine, finish

GROUP = "counter_group"
COUNTER = "counter"
LOCK = "counter_lock"


@dataclass(frozen=True, slots=True)
class CounterConfig:
    """Parameters for the shared-counter workload."""

    system: str = "gwc"
    n_nodes: int = 4
    increments_per_node: int = 8
    #: Local (uncontended) work between increments, seconds.
    think_time: float = 10e-6
    #: Work inside the critical section, seconds.
    update_time: float = 1e-6
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"
    echo_blocking: bool = True
    #: Optimism threshold forwarded to gwc_optimistic.
    threshold: float | None = None


def _increment_body(ctx: SectionContext) -> "Generator":  # noqa: F821
    value = ctx.read(COUNTER)
    yield from ctx.compute(ctx.node.locals["_update_time"])
    if ctx.aborted:
        return
    ctx.write(COUNTER, value + 1)
    ctx.observe_rmw(COUNTER, value, value + 1)


def _worker(node: NodeHandle, system, config: CounterConfig, section: Section):
    for _ in range(config.increments_per_node):
        yield from node.busy(config.think_time, kind="useful")
        yield from system.run_section(node, section)


def run_counter(config: CounterConfig) -> WorkloadResult:
    """Run the counter workload; the result's extra carries final values."""
    machine, system = build_machine(
        config.system,
        config.n_nodes,
        params=config.params,
        seed=config.seed,
        topology=config.topology,
        echo_blocking=config.echo_blocking,
        **(
            {"threshold": config.threshold}
            if config.threshold is not None and config.system == "gwc_optimistic"
            else {}
        ),
    )
    machine.create_group(GROUP)
    machine.declare_variable(GROUP, COUNTER, 0, mutex_lock=LOCK)
    machine.declare_lock(GROUP, LOCK, protects=(COUNTER,), data_bytes=8)

    section = Section(
        lock=LOCK,
        body=_increment_body,
        shared_reads=(COUNTER,),
        shared_writes=(COUNTER,),
        label="counter-increment",
    )
    for node in machine.nodes:
        node.locals["_update_time"] = config.update_time
        node.locals["_checker"] = machine.checker
        machine.spawn(
            _worker(node, system, config, section), name=f"counter-{node.id}"
        )
    result = finish(machine, system)

    expected = config.n_nodes * config.increments_per_node
    final_values = [node.store.read(COUNTER) for node in machine.nodes]
    if machine.checker is not None:
        machine.checker.verify_chain(COUNTER, 0)
    result.extra.update(
        expected=expected,
        final_values=final_values,
        # Under entry consistency only nodes that held the lock last have
        # the final value (data ships with grants); eager systems converge
        # everywhere.
        correct=max(final_values) == expected,
        converged=all(v == expected for v in final_values),
    )
    return result
