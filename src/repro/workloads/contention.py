"""The Figure 1 locking comparison: three CPUs, one lock, one update each.

"Figure 1 compares wasted idle times for three successive sets of
mutually exclusive accesses under Sesame group write, entry, weak, and
release consistency.  Each part shows times for contending requests to
the same lock. ... CPU2 requests exclusive access later than CPU1 and
CPU3."

Setup mirrored here:

* three processors; **CPU2 is the lock owner / group root / manager**
  (the figure labels CPU2 "LOCK OWNER / GROUP ROOT");
* CPU1 and CPU3 request at t = 0 (CPU1's request arrives first), CPU2
  requests after a configurable delay;
* each CPU performs one critical section: read the guarded data, update
  it for ``update_time`` seconds, write it back, release;
* for entry consistency, all three CPUs initially hold the guarded data
  non-exclusively, so the first exclusive grant pays the invalidation
  round trip the paper describes.

The measurement is the total completion time of the three sections and
each CPU's idle time — smaller is better; the paper's Figure 1 shows
GWC < entry < weak/release.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import WorkloadResult, build_machine, finish

GROUP = "fig1_group"
DATA = "shared_a"
LOCK = "fig1_lock"

#: The figure's processor naming: CPU1, CPU2, CPU3 -> node ids.
CPU1, CPU2, CPU3 = 0, 1, 2


@dataclass(frozen=True, slots=True)
class ContentionConfig:
    """Parameters for the Figure 1 comparison."""

    system: str = "gwc"
    #: Time spent updating inside each critical section, seconds.
    update_time: float = 4e-6
    #: How much later CPU2 requests than CPU1/CPU3, seconds.
    cpu2_delay: float = 10e-6
    #: Offset ensuring CPU1's request beats CPU3's, seconds.
    cpu3_offset: float = 0.1e-6
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"
    #: Render a Figure-1-style ASCII timing diagram into the result.
    record_timeline: bool = False


def _update_body(ctx: SectionContext) -> "Generator":  # noqa: F821
    value = ctx.read(DATA)
    yield from ctx.compute(ctx.node.locals["_update_time"])
    if ctx.aborted:
        return
    ctx.write(DATA, value + 1)


def _cpu(
    node: NodeHandle,
    system,
    section: Section,
    start_delay: float,
    done_times: dict[int, float],
):
    if start_delay > 0:
        yield start_delay  # staggered request arrival, not idle work
    yield from system.run_section(node, section)
    done_times[node.id] = node.sim.now


def run_contention(config: ContentionConfig) -> WorkloadResult:
    """Run the Figure 1 scenario under one consistency system."""
    machine, system = build_machine(
        config.system,
        3,
        params=config.params,
        seed=config.seed,
        topology=config.topology,
    )
    # CPU2 is the group root (GWC) / initial owner (entry) / manager
    # (release), exactly as the figure labels it.
    machine.create_group(GROUP, members=(CPU1, CPU2, CPU3), root=CPU2)
    machine.declare_variable(GROUP, DATA, 0, mutex_lock=LOCK)
    machine.declare_lock(GROUP, LOCK, protects=(DATA,), data_bytes=64)

    if hasattr(system, "seed_copyset"):
        # Entry consistency: the data starts non-exclusive on all CPUs,
        # forcing the Figure 1(b) invalidation round trip.
        system.seed_copyset(LOCK, (CPU1, CPU2, CPU3))

    section = Section(
        lock=LOCK,
        body=_update_body,
        shared_reads=(DATA,),
        shared_writes=(DATA,),
        label="fig1-update",
    )
    if config.record_timeline:
        machine.enable_span_recording()
    done_times: dict[int, float] = {}
    starts = {CPU1: 0.0, CPU2: config.cpu2_delay, CPU3: config.cpu3_offset}
    for node in machine.nodes:
        node.locals["_update_time"] = config.update_time
        machine.spawn(
            _cpu(node, system, section, starts[node.id], done_times),
            name=f"cpu-{node.id + 1}",
        )
    result = finish(machine, system)
    if config.record_timeline:
        from repro.metrics.timeline import render_timeline

        result.extra["timeline"] = render_timeline(
            machine,
            title=f"Figure 1 timing diagram — {config.system}",
            lock=LOCK,
        )

    elapsed = result.elapsed
    idle = {
        f"cpu{node.id + 1}_idle": node.metrics.idle(done_times[node.id])
        - starts[node.id]
        for node in machine.nodes
    }
    final = max(node.store.read(DATA) for node in machine.nodes)
    result.extra.update(
        completion_time=elapsed,
        done_times=dict(sorted(done_times.items())),
        final_value=final,
        **idle,
    )
    return result
