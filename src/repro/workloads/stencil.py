"""A realistic DSM application: iterative 1-D Jacobi relaxation.

The kind of program the paper's introduction motivates DSM for: each
processor owns a block of a vector, repeatedly averages its cells with
their neighbours, and needs only its block's *boundary* values from the
two adjacent processors each iteration.

On the eagersharing substrate this is the showcase pattern:

* boundary cells are **single-writer eagershared variables** — the owner
  writes, the neighbour's copy updates automatically (§2's "ordinary
  variable" case; no locks, no fetches);
* iterations are separated by a :class:`~repro.locks.barrier.CentralBarrier`;
* a per-iteration *version stamp* accompanies each boundary (written
  after the data, so GWC ordering makes the data valid whenever the
  stamp is) — the neighbour waits on the stamp, not the barrier, to
  read fresh halos.

The result is verified against a sequential NumPy-free reference
computation of the same relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import NodeHandle
from repro.errors import WorkloadError
from repro.locks.barrier import CentralBarrier
from repro.locks.rmw import RemoteAtomics
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import WorkloadResult, build_machine, finish

GROUP = "stencil_group"


def left_var(node: int) -> str:
    """Boundary value this node exposes to its left neighbour."""
    return f"halo_left_{node}"


def right_var(node: int) -> str:
    """Boundary value this node exposes to its right neighbour."""
    return f"halo_right_{node}"


def stamp_var(node: int) -> str:
    """Iteration stamp for this node's published boundaries."""
    return f"halo_stamp_{node}"


@dataclass(frozen=True, slots=True)
class StencilConfig:
    """Parameters for the Jacobi relaxation."""

    n_nodes: int = 4
    cells_per_node: int = 8
    iterations: int = 6
    #: Compute cost per cell update, seconds.
    cell_time: float = 0.25e-6
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"


def reference_jacobi(config: StencilConfig) -> list[float]:
    """Sequential reference: the same relaxation on one flat vector."""
    n = config.n_nodes * config.cells_per_node
    values = [float(i) for i in range(n)]
    for _ in range(config.iterations):
        prev = values[:]
        for i in range(n):
            left = prev[i - 1] if i > 0 else prev[i]
            right = prev[i + 1] if i < n - 1 else prev[i]
            values[i] = (left + prev[i] + right) / 3.0
    return values


def _stage(
    node: NodeHandle,
    config: StencilConfig,
    barrier: CentralBarrier,
    blocks: dict[int, list[float]],
):
    n = config.n_nodes
    me = node.id
    block = blocks[me]
    for iteration in range(1, config.iterations + 1):
        # Publish this iteration's boundaries, stamp last (GWC ordering
        # makes the boundary data valid wherever the stamp is visible).
        node.iface.share_write(left_var(me), block[0])
        node.iface.share_write(right_var(me), block[-1])
        node.iface.share_write(stamp_var(me), iteration)

        # Wait for fresh halos from existing neighbours.
        if me > 0:
            yield from node.store.wait_until(
                stamp_var(me - 1), lambda s: s >= iteration
            )
            halo_left = node.store.read(right_var(me - 1))
        else:
            halo_left = block[0]
        if me < n - 1:
            yield from node.store.wait_until(
                stamp_var(me + 1), lambda s: s >= iteration
            )
            halo_right = node.store.read(left_var(me + 1))
        else:
            halo_right = block[-1]

        # Relax the block.
        yield from node.busy(config.cell_time * len(block), kind="useful")
        prev = block[:]
        for i in range(len(block)):
            left = prev[i - 1] if i > 0 else halo_left
            right = prev[i + 1] if i < len(block) - 1 else halo_right
            block[i] = (left + prev[i] + right) / 3.0

        # Everyone must finish the update before boundaries change again.
        yield from barrier.wait(node)


def run_stencil(config: StencilConfig = StencilConfig()) -> WorkloadResult:
    """Run the distributed relaxation and verify against the reference."""
    if config.n_nodes < 1 or config.cells_per_node < 2:
        raise WorkloadError("need >= 1 node and >= 2 cells per node")
    machine, system = build_machine("gwc", config.n_nodes, params=config.params,
                                    seed=config.seed, topology=config.topology)
    machine.create_group(GROUP, root=0)
    for node in range(config.n_nodes):
        machine.declare_variable(GROUP, left_var(node), 0.0)
        machine.declare_variable(GROUP, right_var(node), 0.0)
        machine.declare_variable(GROUP, stamp_var(node), 0)
    atomics = RemoteAtomics(machine)
    barrier = CentralBarrier("iter_barrier", GROUP, machine, atomics)

    blocks = {
        node: [
            float(node * config.cells_per_node + i)
            for i in range(config.cells_per_node)
        ]
        for node in range(config.n_nodes)
    }
    for node in machine.nodes:
        machine.spawn(
            _stage(node, config, barrier, blocks), name=f"stencil-{node.id}"
        )
    result = finish(machine, system)

    computed = [value for node in range(config.n_nodes) for value in blocks[node]]
    expected = reference_jacobi(config)
    max_error = max(abs(a - b) for a, b in zip(computed, expected))
    result.extra.update(
        computed=computed,
        expected=expected,
        max_error=max_error,
        correct=max_error < 1e-9,
        barrier_episodes=config.iterations,
    )
    return result
