"""The Figure 2 task-management application.

"One producer generates a total of 1024 tasks and waits for the last to
be executed before stopping. ... The time to produce a task is assumed
to be [a small fraction] of the time to process a task.  Since the time
to generate 1024 tasks is negligible compared to the execution time, the
producer is effectively an idle processor."

Structure of this driver:

* Node 0 is the **producer** and the sharing-group root.  It publishes
  new tasks by advancing a single-writer shared counter ``produced`` —
  an *ordinary* eagerly shared variable (Section 2: "the case for one
  writer is simple; an ordinary variable can lock a data structure
  awaited by readers").
* Nodes 1..N-1 are **consumers**.  Claiming a task and reporting a
  completion is one lock-protected critical section over the guarded
  counters ``taken`` and ``completed``.
* A consumer that finds the queue empty waits for ``produced`` to
  advance: under GWC the new value arrives eagerly and wakes it; under
  entry consistency it must *fetch and test* the producer's variable —
  exactly the network traffic the paper blames for entry consistency's
  lower peak.
* Speedup counts only task execution as useful work; producing is not
  useful time ("the producer is effectively an idle processor").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.errors import WorkloadError
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import (
    WorkloadResult,
    build_machine,
    finish,
    run_sharded,
    shard_fallback_reason,
)

GROUP = "fig2_group"
PRODUCED = "produced"
TAKEN = "taken"
COMPLETED = "completed"
LOCK = "queue_lock"


@dataclass(frozen=True, slots=True)
class TaskQueueConfig:
    """Parameters for the Figure 2 task-management run."""

    system: str = "gwc"
    #: Network size; the paper uses powers of two plus one (3, 5, ..., 129)
    #: "to eliminate load balancing effects".
    n_nodes: int = 5
    total_tasks: int = 64
    #: Time to execute one task, seconds.
    task_time: float = 200e-6
    #: task production : execution time ratio (paper: a small fraction,
    #: chosen here as 1/128 so one producer can just feed 128 consumers).
    produce_ratio: float = 1.0 / 128.0
    #: Bookkeeping compute inside the claim/report critical section.
    section_time: float = 0.2e-6
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"
    #: Run under the sharded kernel when > 1 (see :mod:`repro.sim.shards`).
    #: Unshardable configurations fall back to a serial run.
    shards: int = 1
    #: ``"optimistic"`` (Time Warp rollback) or ``"conservative"``.
    shard_policy: str = "optimistic"
    #: Shard execution backend: ``"inproc"``, ``"process"``, or ``None``
    #: to resolve via ``REPRO_SHARD_BACKEND`` (see
    #: :mod:`repro.sim.procshards`).  Parity is bit-identical either way.
    shard_backend: "str | None" = None
    #: Optional fault schedule (see :mod:`repro.faults.plan`), installed
    #: on every build — serial and each shard replica alike, so chaos
    #: runs stay shard-parity-comparable when the plan itself is
    #: deterministic (probability 1.0, no jitter).
    fault_plan: "FaultPlan | None" = None  # noqa: F821

    @property
    def produce_time(self) -> float:
        return self.task_time * self.produce_ratio


#: Sentinel claim results stored in ``node.locals["_claim"]``.
CLAIM_DONE = "done"
CLAIM_EMPTY = "empty"


def _claim_body(ctx: SectionContext) -> "Generator":  # noqa: F821
    """Report the previous completion and claim the next task."""
    yield from ctx.compute(ctx.node.locals["_section_time"])
    if ctx.aborted:
        return
    pending = ctx.local("_pending_report", 0)
    if pending:
        ctx.write(COMPLETED, ctx.read(COMPLETED) + pending)
        ctx.set_local("_pending_report", 0)
    taken = ctx.read(TAKEN)
    produced = ctx.node.store.read(PRODUCED)  # ordinary var: local copy
    total = ctx.local("_total")
    ctx.set_local("_seen_produced", produced)
    if taken >= total:
        ctx.set_local("_claim", CLAIM_DONE)
    elif taken < produced:
        ctx.write(TAKEN, taken + 1)
        ctx.set_local("_claim", taken)
    else:
        ctx.set_local("_claim", CLAIM_EMPTY)


_CLAIM_SECTION = Section(
    lock=LOCK,
    body=_claim_body,
    shared_reads=(TAKEN, COMPLETED),
    shared_writes=(TAKEN, COMPLETED),
    local_vars=("_pending_report", "_claim", "_seen_produced"),
    label="fig2-claim",
)


def _producer(node: NodeHandle, system, config: TaskQueueConfig):
    """Generate tasks, then wait for the last to be executed."""
    for task in range(1, config.total_tasks + 1):
        # Production time is real CPU time but not useful application
        # work in the paper's speedup metric.
        yield from node.busy(config.produce_time, kind="overhead")
        yield from system.write(node, PRODUCED, task)
    yield from system.wait_value(
        node, COMPLETED, lambda done: done >= config.total_tasks
    )


def _consumer(node: NodeHandle, system, config: TaskQueueConfig):
    node.locals["_total"] = config.total_tasks
    node.locals["_section_time"] = config.section_time
    node.locals["_pending_report"] = 0
    executed = 0
    while True:
        yield from system.run_section(node, _CLAIM_SECTION)
        claim = node.locals.get("_claim")
        if claim == CLAIM_DONE:
            break
        if claim == CLAIM_EMPTY:
            seen = node.locals["_seen_produced"]
            yield from system.wait_value(node, PRODUCED, lambda p: p > seen)
            continue
        yield from node.busy(config.task_time, kind="useful")
        executed += 1
        node.locals["_pending_report"] = 1
    node.locals["_executed"] = executed


def _build_task_queue(
    config: TaskQueueConfig, owned: "frozenset[int] | None" = None
):
    """Build one complete machine for the workload — shard-aware.

    With ``owned=None`` this is the serial build.  With an owned node
    set it builds the same machine deterministically but only spawns the
    owned nodes' processes (:meth:`DSMMachine.spawn_for`), making it the
    replica factory for :class:`~repro.sim.shards.ShardedSimulator`.
    """
    machine, system = build_machine(
        config.system,
        config.n_nodes,
        params=config.params,
        seed=config.seed,
        topology=config.topology,
    )
    machine.shard_owned = owned
    if config.fault_plan is not None:
        from repro.faults.injector import FaultInjector

        FaultInjector(machine, config.fault_plan).install()
    machine.create_group(GROUP, root=0)
    machine.declare_variable(GROUP, PRODUCED, 0)
    machine.declare_variable(GROUP, TAKEN, 0, mutex_lock=LOCK)
    machine.declare_variable(GROUP, COMPLETED, 0, mutex_lock=LOCK)
    # Under entry consistency each grant ships the guarded queue
    # structure (head/tail bookkeeping plus the active slot region), the
    # paper's "extra time to send the changed data with the lock".
    machine.declare_lock(GROUP, LOCK, protects=(TAKEN, COMPLETED), data_bytes=768)

    producer = machine.nodes[0]
    machine.spawn_for(0, _producer(producer, system, config), name="producer")
    for node in machine.nodes[1:]:
        machine.spawn_for(
            node.id, _consumer(node, system, config), name=f"consumer-{node.id}"
        )
    return machine, system


def run_task_queue(config: TaskQueueConfig) -> WorkloadResult:
    """Run the Figure 2 workload under one consistency system."""
    if config.n_nodes < 2:
        raise WorkloadError("task queue needs a producer and >= 1 consumer")
    fallback = None
    if config.shards > 1:
        fallback = shard_fallback_reason(
            config.system, config.shards, config.params
        )
        if fallback is None:
            result = run_sharded(
                lambda owned: _build_task_queue(config, owned),
                config.n_nodes,
                config.shards,
                config.shard_policy,
                backend=config.shard_backend,
            )
            kernel = result.extra.pop("_kernel")
            executed = sum(
                kernel.node(i).locals.get("_executed", 0)
                for i in range(1, config.n_nodes)
            )
            return _task_queue_extra(config, result, executed=executed)
    machine, system = _build_task_queue(config)
    result = finish(machine, system)
    if fallback is not None:
        result.extra["shard_fallback"] = fallback
    executed = sum(node.locals.get("_executed", 0) for node in machine.nodes[1:])
    return _task_queue_extra(config, result, executed=executed)


def _task_queue_extra(
    config: TaskQueueConfig, result: WorkloadResult, executed: int
) -> WorkloadResult:
    result.extra.update(
        total_tasks=config.total_tasks,
        executed=executed,
        all_executed=executed == config.total_tasks,
        max_speedup_bound=min(
            config.n_nodes - 1, 1.0 / config.produce_ratio
        ),
    )
    return result
