"""Shared plumbing for workload drivers.

Each workload module exposes a frozen config dataclass and a
``run_<name>(config) -> WorkloadResult`` function that builds a fresh
:class:`~repro.core.machine.DSMMachine`, instantiates the requested
consistency system, spawns the workload processes, runs to quiescence,
and returns the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consistency.base import DsmSystem, make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.errors import WorkloadError
from repro.metrics.collector import MachineMetrics
from repro.params import PAPER_PARAMS, MachineParams


@dataclass(slots=True)
class WorkloadResult:
    """Outcome of one workload run."""

    system: str
    n_nodes: int
    elapsed: float
    metrics: MachineMetrics
    #: Workload-specific observations (final values, per-node idle, ...).
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.metrics.speedup()

    @property
    def efficiency(self) -> float:
        return self.metrics.average_efficiency()

    def counter(self, name: str) -> int:
        return self.metrics.total_counter(name)


def build_machine(
    system: str,
    n_nodes: int,
    params: MachineParams = PAPER_PARAMS,
    seed: int = 0,
    topology: str = "mesh_torus",
    echo_blocking: bool = True,
    check: bool = True,
    **system_kwargs: Any,
) -> tuple[DSMMachine, DsmSystem]:
    """Create a machine plus the named consistency system bound to it."""
    if n_nodes < 1:
        raise WorkloadError(f"need at least one node: {n_nodes}")
    checker = MutualExclusionChecker() if check else None
    machine = DSMMachine(
        n_nodes=n_nodes,
        topology=topology,
        params=params,
        seed=seed,
        echo_blocking=echo_blocking,
        checker=checker,
    )
    dsm = make_system(system, machine, **system_kwargs)
    return machine, dsm


def finish(
    machine: DSMMachine,
    system: DsmSystem,
    max_events: int | None = None,
    **extra: Any,
) -> WorkloadResult:
    """Run the machine to quiescence and package the result."""
    machine.run(max_events=max_events)
    if machine.checker is not None:
        machine.checker.verify_no_occupancy()
    return WorkloadResult(
        system=system.name,
        n_nodes=machine.n_nodes,
        elapsed=machine.metrics.elapsed,
        metrics=machine.metrics,
        extra=extra,
    )
