"""Shared plumbing for workload drivers.

Each workload module exposes a frozen config dataclass and a
``run_<name>(config) -> WorkloadResult`` function that builds a fresh
:class:`~repro.core.machine.DSMMachine`, instantiates the requested
consistency system, spawns the workload processes, runs to quiescence,
and returns the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consistency.base import DsmSystem, make_system, system_is_shardable
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.errors import WorkloadError
from repro.metrics.collector import MachineMetrics
from repro.params import PAPER_PARAMS, MachineParams


@dataclass(slots=True)
class WorkloadResult:
    """Outcome of one workload run."""

    system: str
    n_nodes: int
    elapsed: float
    metrics: MachineMetrics
    #: Workload-specific observations (final values, per-node idle, ...).
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.metrics.speedup()

    @property
    def efficiency(self) -> float:
        return self.metrics.average_efficiency()

    def counter(self, name: str) -> int:
        return self.metrics.total_counter(name)


def build_machine(
    system: str,
    n_nodes: int,
    params: MachineParams = PAPER_PARAMS,
    seed: int = 0,
    topology: str = "mesh_torus",
    echo_blocking: bool = True,
    check: bool = True,
    **system_kwargs: Any,
) -> tuple[DSMMachine, DsmSystem]:
    """Create a machine plus the named consistency system bound to it."""
    if n_nodes < 1:
        raise WorkloadError(f"need at least one node: {n_nodes}")
    checker = MutualExclusionChecker() if check else None
    machine = DSMMachine(
        n_nodes=n_nodes,
        topology=topology,
        params=params,
        seed=seed,
        echo_blocking=echo_blocking,
        checker=checker,
    )
    dsm = make_system(system, machine, **system_kwargs)
    return machine, dsm


def finish(
    machine: DSMMachine,
    system: DsmSystem,
    max_events: int | None = None,
    **extra: Any,
) -> WorkloadResult:
    """Run the machine to quiescence and package the result."""
    from repro.sim.statehash import machine_state_hash

    machine.run(max_events=max_events)
    if machine.checker is not None:
        machine.checker.verify_no_occupancy()
    result = WorkloadResult(
        system=system.name,
        n_nodes=machine.n_nodes,
        elapsed=machine.metrics.elapsed,
        metrics=machine.metrics,
        extra=extra,
    )
    result.extra["state_hash"] = machine_state_hash(machine)
    return result


def shard_fallback_reason(
    system: str, shards: int, params: MachineParams
) -> str | None:
    """Why a requested sharded run must fall back to serial (or ``None``).

    The sharded kernel (:mod:`repro.sim.shards`) needs more than one
    shard, a message-pure consistency system, and a strictly positive
    cross-shard wire latency (the conservative lookahead / rollback
    fence).  Workload drivers call this before committing to a sharded
    run so unshardable configurations degrade gracefully instead of
    raising.
    """
    if shards <= 1:
        return "shards <= 1"
    if not system_is_shardable(system):
        return f"system {system!r} is not message-pure"
    if params.hop_latency <= 0:
        return "hop_latency <= 0 gives zero cross-shard lookahead"
    return None


def run_sharded(
    factory: Callable[["frozenset[int] | None"], tuple[DSMMachine, DsmSystem]],
    n_nodes: int,
    shards: int,
    policy: str,
    backend: str | None = None,
    **extra: Any,
) -> WorkloadResult:
    """Run a workload under the sharded kernel and package the result.

    ``factory(owned)`` must deterministically build one complete replica
    (machine + system + groups + processes) spawning only the processes
    of the nodes in ``owned`` — see :data:`repro.sim.shards.ShardFactory`.
    The result's metrics and ``state_hash`` are merged views reading
    each node from its owning replica, directly comparable (bit-for-bit)
    with a serial :func:`finish` result.

    ``backend`` selects the shard execution backend — ``"inproc"``
    (cooperative, one process) or ``"process"`` (one forked worker per
    shard; see :mod:`repro.sim.procshards`); ``None`` resolves via
    ``REPRO_SHARD_BACKEND``.  State hashes are bit-identical either way.

    The kernel itself rides along as ``result.extra["_kernel"]`` so the
    workload driver can read merged node handles for its own accounting;
    drivers pop it before returning (it holds live simulator state and
    must not leak into pickled sweep results).
    """
    from repro.sim.procshards import make_sharded_kernel
    from repro.sim.shards import ShardPlan

    plan = ShardPlan.from_groups(n_nodes, shards)
    kernel = make_sharded_kernel(factory, plan, policy=policy, backend=backend)
    kernel.run()
    kernel.verify()
    metrics = kernel.merged_metrics()
    result = WorkloadResult(
        system=kernel.system_name,
        n_nodes=n_nodes,
        elapsed=metrics.elapsed,
        metrics=metrics,
        extra=extra,
    )
    result.extra.update(
        shards=plan.n_shards,
        shard_policy=policy,
        shard_backend=kernel.backend,
        shard_stats=kernel.stats.summary(),
        state_hash=kernel.state_hash(),
    )
    result.extra["_kernel"] = kernel
    return result
