"""The Figure 8 linear pipeline used to evaluate optimistic locking.

"Each processor repeatedly waits for data from processor i-1, performs
local computations, gets a lock, performs more local computations and
updates shared data in a mutually exclusive section.  After releasing
the lock, it calculates new data and shares it with processor i+1.
Processor i then continues local calculations before looping again.
This example is basically a linear pipeline of events, where two sets of
local calculations can overlap at a time."

Model:

* a ring of N processors passes one data token; each node runs
  ``data_size / N`` iterations, so the token makes ``data_size`` hops in
  total ("for data size 1024, there are from 1024 to 8 iterations");
* one iteration = wait for the token → local computation *A* → critical
  section of length *A / mutex_ratio* updating guarded shared data →
  share the new token with the successor → trailing local computation
  *C = A* that overlaps the successor's work;
* with zero network delays the network power is
  ``(A + M + C) / (A + M)`` — exactly the paper's 1.89 ceiling for a
  mutex-to-local ratio of 1/8;
* "There is no contention among the processors for the mutually
  exclusive section, so no rollbacks occur" — the token serializes lock
  requests, which is what lets optimistic synchronization hide the whole
  lock round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.errors import WorkloadError
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import (
    WorkloadResult,
    build_machine,
    finish,
    run_sharded,
    shard_fallback_reason,
)

GROUP = "fig8_group"
ACC = "shared_block"
LOCK = "pipe_lock"


def pipe_var(node: int) -> str:
    """Name of the token variable written by ``node``."""
    return f"pipe_{node}"


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Parameters for the Figure 8 pipeline."""

    system: str = "gwc_optimistic"
    n_nodes: int = 4
    #: Total token hops; each node runs data_size / n_nodes iterations.
    data_size: int = 64
    #: Each local computation (A and C), seconds.
    local_time: float = 10e-6
    #: local : mutex time ratio (paper: the mutex section is 1/8 of each
    #: local computation).
    mutex_ratio: float = 8.0
    #: Size of one pipeline data token on the wire.
    item_bytes: int = 64
    #: Size of the guarded shared block updated in the mutex section.
    #: Under GWC its propagation hides in the pipeline slack; under entry
    #: consistency it ships with every lock grant, on the critical path —
    #: the paper's "extra time needed to transmit the shared data in the
    #: mutual exclusion section".
    block_bytes: int = 64
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"
    #: Optimism threshold override for gwc_optimistic.
    threshold: float | None = None
    #: Run under the sharded kernel when > 1 (see :mod:`repro.sim.shards`).
    #: Unshardable configurations fall back to a serial run.
    shards: int = 1
    #: ``"optimistic"`` (Time Warp rollback) or ``"conservative"``.
    shard_policy: str = "optimistic"
    #: Shard execution backend: ``"inproc"``, ``"process"``, or ``None``
    #: to resolve via ``REPRO_SHARD_BACKEND`` (see
    #: :mod:`repro.sim.procshards`).  Parity is bit-identical either way.
    shard_backend: "str | None" = None
    #: Optional fault schedule (see :mod:`repro.faults.plan`), installed
    #: on every build — serial and each shard replica alike, so chaos
    #: runs stay shard-parity-comparable when the plan itself is
    #: deterministic (probability 1.0, no jitter).
    fault_plan: "FaultPlan | None" = None  # noqa: F821

    @property
    def mutex_time(self) -> float:
        return self.local_time / self.mutex_ratio

    @property
    def iterations_per_node(self) -> int:
        return self.data_size // self.n_nodes

    def ideal_power(self) -> float:
        """The zero-delay network power: (A + M + C) / (A + M)."""
        a = self.local_time
        m = self.mutex_time
        return (2 * a + m) / (a + m)


def _mutex_body(ctx: SectionContext) -> "Generator":  # noqa: F821
    value = ctx.read(ACC)
    yield from ctx.compute(ctx.node.locals["_mutex_time"])
    if ctx.aborted:
        return
    ctx.write(ACC, value + ctx.local("_token"))


_MUTEX_SECTION = Section(
    lock=LOCK,
    body=_mutex_body,
    shared_reads=(ACC,),
    shared_writes=(ACC,),
    local_vars=("_token",),
    label="fig8-update",
)


def _stage(node: NodeHandle, system, config: PipelineConfig):
    n = config.n_nodes
    prev = pipe_var((node.id - 1) % n)
    mine = pipe_var(node.id)
    node.locals["_mutex_time"] = config.mutex_time
    for iteration in range(config.iterations_per_node):
        expected = n * iteration + node.id
        # Wait for the token from processor i-1 (node 0's first wait is
        # satisfied by the initial value, which starts the pipeline).
        yield from system.wait_value(node, prev, lambda v: v >= expected)
        yield from node.busy(config.local_time, kind="useful")  # A
        node.locals["_token"] = expected + 1
        yield from system.run_section(node, _MUTEX_SECTION)
        # Calculate new data and share it with processor i+1.
        yield from system.write(node, mine, expected + 1)
        yield from node.busy(config.local_time, kind="useful")  # C


def _build_pipeline(
    config: PipelineConfig, owned: "frozenset[int] | None" = None
):
    """Build one complete machine for the workload — shard-aware.

    With ``owned=None`` this is the serial build; with an owned node set
    it is the replica factory for the sharded kernel (spawns only the
    owned stages, everything else identical and deterministic).
    """
    system_kwargs = {}
    if config.threshold is not None and config.system == "gwc_optimistic":
        system_kwargs["threshold"] = config.threshold
    machine, system = build_machine(
        config.system,
        config.n_nodes,
        params=config.params,
        seed=config.seed,
        topology=config.topology,
        **system_kwargs,
    )
    machine.shard_owned = owned
    if config.fault_plan is not None:
        from repro.faults.injector import FaultInjector

        FaultInjector(machine, config.fault_plan).install()
    machine.create_group(GROUP, root=0)
    # Token variables: pipe_{N-1} starts at 0, which releases node 0's
    # first iteration and starts the pipeline.
    for node in range(config.n_nodes):
        initial = 0 if node == config.n_nodes - 1 else -1
        machine.declare_variable(
            GROUP, pipe_var(node), initial=initial, size_bytes=config.item_bytes
        )
    machine.declare_variable(
        GROUP, ACC, 0, mutex_lock=LOCK, size_bytes=config.block_bytes
    )
    machine.declare_lock(GROUP, LOCK, protects=(ACC,), data_bytes=config.block_bytes)

    for node in machine.nodes:
        machine.spawn_for(
            node.id, _stage(node, system, config), name=f"stage-{node.id}"
        )
    return machine, system


def run_pipeline(config: PipelineConfig) -> WorkloadResult:
    """Run the Figure 8 pipeline under one consistency system."""
    if config.data_size % config.n_nodes != 0:
        raise WorkloadError(
            f"data_size {config.data_size} must divide evenly among "
            f"{config.n_nodes} nodes"
        )
    fallback = None
    if config.shards > 1:
        fallback = shard_fallback_reason(
            config.system, config.shards, config.params
        )
        if fallback is None:
            result = run_sharded(
                lambda owned: _build_pipeline(config, owned),
                config.n_nodes,
                config.shards,
                config.shard_policy,
                backend=config.shard_backend,
            )
            kernel = result.extra.pop("_kernel")
            nodes = kernel.nodes
            return _pipeline_extra(config, result, nodes)
    machine, system = _build_pipeline(config)
    result = finish(machine, system)
    if fallback is not None:
        result.extra["shard_fallback"] = fallback
    return _pipeline_extra(config, result, machine.nodes)


def _pipeline_extra(
    config: PipelineConfig, result: WorkloadResult, nodes
) -> WorkloadResult:
    expected_acc = sum(range(1, config.data_size + 1))
    final_acc = max(node.store.read(ACC) for node in nodes)
    result.extra.update(
        network_power=result.speedup,
        ideal_power=config.ideal_power(),
        iterations_per_node=config.iterations_per_node,
        final_acc=final_acc,
        acc_correct=final_acc == expected_acc,
        rollbacks=result.counter("opt.rollbacks"),
    )
    return result
