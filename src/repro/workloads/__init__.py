"""Workloads: the programs the paper's evaluation runs.

* :mod:`repro.workloads.contention` — the Figure 1 three-CPU locking
  comparison.
* :mod:`repro.workloads.task_queue` — the Figure 2 task-management
  application (one producer, a lock-guarded shared queue).
* :mod:`repro.workloads.pipeline` — the Figure 8 linear pipeline used to
  evaluate optimistic locking.
* :mod:`repro.workloads.counter` — a shared-counter kernel used by the
  lock-protocol ablations.
* :mod:`repro.workloads.scenarios` — the Figure 7 rollback interaction
  and the echo-blocking corruption scenario.
* :mod:`repro.workloads.synthetic` — randomized contention generator for
  stress and property tests.
"""

from repro.workloads.base import WorkloadResult
from repro.workloads.contention import ContentionConfig, run_contention
from repro.workloads.counter import CounterConfig, run_counter
from repro.workloads.lock_bench import LockBenchConfig, run_lock_bench
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.scenarios import (
    DoubleWriteConfig,
    Figure7Config,
    run_double_write,
    run_figure7,
)
from repro.workloads.stencil import StencilConfig, run_stencil
from repro.workloads.synthetic import SyntheticConfig, run_synthetic
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

__all__ = [
    "ContentionConfig",
    "CounterConfig",
    "DoubleWriteConfig",
    "Figure7Config",
    "LockBenchConfig",
    "PipelineConfig",
    "StencilConfig",
    "SyntheticConfig",
    "TaskQueueConfig",
    "WorkloadResult",
    "run_contention",
    "run_counter",
    "run_double_write",
    "run_figure7",
    "run_lock_bench",
    "run_pipeline",
    "run_stencil",
    "run_synthetic",
    "run_task_queue",
]
