"""A write-heavy producer workload for the write-burst experiment.

Each node repeatedly emits a run of plain shared-data writes (its own
slice of the group's variables) and then synchronizes through a
lock-protected accumulator update.  The run of consecutive writes by one
process is exactly the pattern the Sesame hardware's grouped-write
transmission targets, so this workload makes the ``write_burst``
machine parameter directly observable: the sharing traffic shrinks with
the burst size while the final shared-memory state stays identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.node import NodeHandle
from repro.errors import WorkloadError
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import WorkloadResult, build_machine, finish

GROUP = "burst_group"
ACC = "burst_acc"
LOCK = "burst_lock"


def data_var(node: int, slot: int) -> str:
    """Name of slot ``slot`` in node ``node``'s private write slice."""
    return f"data_{node}_{slot}"


@dataclass(frozen=True, slots=True)
class BurstWriterConfig:
    """Parameters for the burst-writer workload."""

    system: str = "gwc"
    n_nodes: int = 8
    #: Synchronization rounds per node.
    rounds: int = 8
    #: Plain shared writes each node issues per round, before the
    #: lock-protected accumulator update that closes the round.
    writes_per_round: int = 16
    #: Wire size of one data item.
    item_bytes: int = 32
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"


def _producer(node: NodeHandle, system: Any, config: BurstWriterConfig):
    for round_no in range(config.rounds):
        for slot in range(config.writes_per_round):
            value = round_no * config.writes_per_round + slot + 1
            yield from system.write(node, data_var(node.id, slot), value)
        # Close the round under the lock: the acquire is a
        # synchronization boundary, so every buffered write of this
        # round is on the wire before the accumulator update commits.
        yield from system.acquire(node, LOCK)
        acc = yield from system.read(node, ACC)
        yield from system.write(node, ACC, acc + 1)
        yield from system.release(node, LOCK)


def run_burst_writer(config: BurstWriterConfig) -> WorkloadResult:
    """Run the burst-writer workload under one consistency system."""
    if config.rounds < 1 or config.writes_per_round < 1:
        raise WorkloadError(
            f"need at least one round and one write per round: "
            f"{config.rounds} x {config.writes_per_round}"
        )
    machine, system = build_machine(
        config.system,
        config.n_nodes,
        params=config.params,
        seed=config.seed,
        topology=config.topology,
    )
    machine.create_group(GROUP, root=0)
    for node in range(config.n_nodes):
        for slot in range(config.writes_per_round):
            machine.declare_variable(
                GROUP, data_var(node, slot), initial=0, size_bytes=config.item_bytes
            )
    machine.declare_variable(GROUP, ACC, 0, mutex_lock=LOCK)
    machine.declare_lock(GROUP, LOCK, protects=(ACC,))

    for node in machine.nodes:
        machine.spawn(_producer(node, system, config), name=f"producer-{node.id}")
    result = finish(machine, system)

    # Every burst buffer must have drained: the workload ends at a
    # synchronization boundary (the final release), so a leftover
    # buffered write would mean a flush boundary was missed.
    pending = sum(node.iface.pending_burst_writes for node in machine.nodes)
    expected_acc = config.n_nodes * config.rounds
    final_acc = machine.nodes[0].store.read(ACC)
    last_round_base = (config.rounds - 1) * config.writes_per_round
    # The converged image, read from node 0's store (eagersharing has
    # delivered everything at quiescence): identical across burst sizes.
    image = tuple(
        machine.nodes[0].store.read(data_var(node, slot))
        for node in range(config.n_nodes)
        for slot in range(config.writes_per_round)
    )
    image_ok = all(
        value == last_round_base + slot + 1
        for value, slot in zip(
            image,
            [s for _ in range(config.n_nodes) for s in range(config.writes_per_round)],
        )
    )
    stats = machine.network.stats
    result.extra.update(
        final_acc=final_acc,
        acc_correct=final_acc == expected_acc,
        image=image,
        image_correct=image_ok,
        pending_burst_writes=pending,
        update_messages=stats.by_kind.get("gwc.update", 0),
        burst_messages=stats.by_kind.get("gwc.update_burst", 0),
        total_messages=stats.messages,
        total_bytes=stats.bytes,
        burst_flushes=sum(node.iface.burst_flushes for node in machine.nodes),
    )
    return result
