"""Protocol interaction scenarios: Figure 7 and the echo-blocking hazard.

:func:`run_figure7` reconstructs "The Most Complex Rollback Interaction":
a requester far from the group root goes optimistic while a processor
adjacent to the root requests, updates, and releases first.  The
requester's interrupt triggers a rollback, its late speculative update
reaches the root *after* its own grant (so the root accepts and echoes
it), and the hardware blocking filter must drop the echo so it cannot
overwrite the correct re-executed value.

:func:`run_double_write` exercises the hazard the paper gives for the
hardware blocking mechanism: a processor writes the same variable twice
in a mutual exclusion section, releases, and immediately re-enters
optimistically.  Without echo blocking, the first write's root echo can
land between rollback saving and restoring, corrupting the saved state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.params import PAPER_PARAMS, MachineParams
from repro.sim.trace import Tracer
from repro.workloads.base import WorkloadResult, finish
from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine

GROUP = "fig7_group"
DATA = "a"
LOCK = "fig7_lock"


@dataclass(frozen=True, slots=True)
class Figure7Config:
    """Parameters for the Figure 7 rollback interaction."""

    #: Ring size: the requester sits opposite the root so its request
    #: takes many hops while the other processor is adjacent.
    n_nodes: int = 8
    #: Speculative compute time inside the requester's section.
    requester_compute: float = 4e-6
    #: Compute time in the other processor's section.
    other_compute: float = 0.2e-6
    params: MachineParams = PAPER_PARAMS
    echo_blocking: bool = True
    seed: int = 0


def _make_body(compute_key: str, tag_key: str):
    def body(ctx: SectionContext) -> Any:
        value = ctx.read(DATA)
        yield from ctx.compute(ctx.node.locals[compute_key])
        if ctx.aborted:
            return
        ctx.write(DATA, (ctx.node.locals[tag_key], value))

    return body


def run_figure7(config: Figure7Config = Figure7Config()) -> WorkloadResult:
    """Run the Figure 7 scenario; extra records every protocol event."""
    tracer = Tracer()
    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=config.n_nodes,
        topology="ring",
        params=config.params,
        seed=config.seed,
        tracer=tracer,
        echo_blocking=config.echo_blocking,
        checker=checker,
    )
    system = make_system("gwc_optimistic", machine)
    root = 0
    other = 1
    requester = config.n_nodes // 2  # maximally far from the root
    machine.create_group(GROUP, root=root)
    machine.declare_variable(GROUP, DATA, ("init", None), mutex_lock=LOCK)
    machine.declare_lock(GROUP, LOCK, protects=(DATA,))

    requester_section = Section(
        lock=LOCK,
        body=_make_body("_compute", "_tag"),
        shared_reads=(DATA,),
        shared_writes=(DATA,),
        label="fig7-requester",
    )
    other_section = Section(
        lock=LOCK,
        body=_make_body("_compute", "_tag"),
        shared_reads=(DATA,),
        shared_writes=(DATA,),
        label="fig7-other",
    )

    def requester_proc(node: NodeHandle):
        node.locals["_compute"] = config.requester_compute
        node.locals["_tag"] = "r"
        outcome = yield from system.run_section(node, requester_section)
        node.locals["_outcome"] = outcome

    def other_proc(node: NodeHandle):
        node.locals["_compute"] = config.other_compute
        node.locals["_tag"] = "y"
        outcome = yield from system.run_section(node, other_section)
        node.locals["_outcome"] = outcome

    # Both request "simultaneously"; the other processor is adjacent to
    # the root, so its request, update, and release all reach the root
    # before the requester's request arrives.
    machine.spawn(requester_proc(machine.nodes[requester]), name="requester")
    machine.spawn(other_proc(machine.nodes[other]), name="other")
    result = finish(machine, system)

    req_node = machine.nodes[requester]
    final_values = {n.id: n.store.read(DATA) for n in machine.nodes}
    result.extra.update(
        requester=requester,
        other=other,
        final_values=final_values,
        converged=len({str(v) for v in final_values.values()}) == 1,
        requester_rolled_back=bool(
            req_node.metrics.counters.get("opt.rollbacks", 0)
        ),
        echoes_dropped=req_node.iface.filter.dropped,
        root_discards=machine.root_engine(GROUP).discarded,
        trace=tracer,
    )
    return result


@dataclass(frozen=True, slots=True)
class DoubleWriteConfig:
    """Parameters for the double-write echo hazard scenario.

    The timing realizes the exact hazard the paper gives for Figure 6:
    "if the same variable were written twice in a mutual exclusion
    section and only the first change had returned before [the next
    optimistic attempt reads it], the [values] would be improper."

    One worker (placed a few hops from the root so echoes take about one
    round trip) writes the counter twice per section — the two writes
    separated by ``intra_gap`` of computation, so their root echoes come
    back the same distance apart — then re-enters the section
    optimistically after only ``think_time``.  With ``think_time``
    between ``RTT - intra_gap`` and ``RTT``, the next section's read
    lands in the window where (without the hardware blocking filter) the
    first write's echo has regressed the local copy but the second
    write's echo has not yet repaired it.
    """

    n_nodes: int = 8
    #: Position of the single active worker on the ring (hops from root).
    worker: int = 2
    rounds: int = 10
    #: Compute separating the two writes inside the section.
    intra_gap: float = 1e-6
    #: Gap between releasing and optimistically re-entering.
    think_time: float = 0.5e-6
    params: MachineParams = PAPER_PARAMS
    echo_blocking: bool = True
    seed: int = 0


def run_double_write(config: DoubleWriteConfig = DoubleWriteConfig()) -> WorkloadResult:
    """Increment a counter twice per section, re-entering immediately.

    With echo blocking every increment survives.  With the filter
    disabled, the first write's root echo regresses the local counter
    just as the next (granted!) optimistic section reads it, so the
    committed update is computed from a stale value — a lost update the
    final counter value and the checker's RMW chain both expose.
    """
    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=config.n_nodes,
        topology="ring",
        params=config.params,
        seed=config.seed,
        echo_blocking=config.echo_blocking,
        checker=checker,
    )
    system = make_system("gwc_optimistic", machine)
    machine.create_group(GROUP, root=0)
    machine.declare_variable(GROUP, "c", 0, mutex_lock=LOCK)
    machine.declare_lock(GROUP, LOCK, protects=("c",))

    def body(ctx: SectionContext):
        first = ctx.read("c")
        ctx.write("c", first + 1)
        yield from ctx.compute(ctx.node.locals["_gap"])
        if ctx.aborted:
            return
        # The same variable written twice in one mutual exclusion
        # section — the Figure 6 hazard case.
        second = ctx.read("c")
        ctx.write("c", second + 1)
        ctx.observe_rmw("c", first, second + 1)

    section = Section(
        lock=LOCK,
        body=body,
        shared_reads=("c",),
        shared_writes=("c",),
        label="double-write",
    )

    def worker(node: NodeHandle):
        node.locals["_gap"] = config.intra_gap
        for _ in range(config.rounds):
            yield from system.run_section(node, section)
            yield from node.busy(config.think_time, kind="useful")

    active = machine.nodes[config.worker]
    machine.spawn(worker(active), name=f"dw-{active.id}")
    result = finish(machine, system)

    expected = 2 * config.rounds
    final_values = [n.store.read("c") for n in machine.nodes]
    chain_ok = True
    try:
        checker.verify_chain("c", 0)
    except Exception:  # noqa: BLE001 - the ablation wants a boolean
        chain_ok = False
    result.extra.update(
        expected=expected,
        final_values=final_values,
        correct=active.store.read("c") == expected
        and max(final_values) == expected,
        chain_ok=chain_ok,
        echoes_dropped=sum(n.iface.filter.dropped for n in machine.nodes),
    )
    return result
