"""Root-sharding parity workload: one family, many roots, same answer.

The proof obligation of root sharding (PR 10) is *semantic parity*: a
family of K sibling subgroups, each sequencing its own partition of the
shared address space, must drive every member to exactly the final
state a single-root run produces.  This workload is built so that the
final state is fully determined regardless of how sequencing is split:

* a **hot key** hammered by one writer (single-writer, so the last
  write wins under any per-variable total order),
* a spread of **cold units** each owned by one writer,
* several **lock-protected counters** incremented through critical
  sections (the mutual-exclusion checker proves the RMW chain, so the
  final count is exact under any root layout — including after a lock
  manager migrates between live roots mid-run).

Plain writes in flight when a migration fence lands are discarded
at-most-once (the PR 6 failover-window rule, reused verbatim); each
writer therefore makes its *final* write durable by polling its own
apply-back and re-sharing on timeout, the same durability barrier the
fenced section path uses.  Lock requests in flight at fence time are
recovered by the standard :class:`LockRetryPolicy` timeout.

With ``rebalance=True`` a controller process watches family throughput
and, once ``rebalance_frac`` of the expected traffic has been
sequenced, re-partitions the family online via LPT planning
(:func:`repro.memory.repartition.rebalance_family`) — moving the hot
key off its hashed home.  The result records per-root sequencing load
before and after the fence so sweeps can assert the acceptance bar:
max-root share <= 2x mean-root share after re-partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.consistency.base import DsmSystem, make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.errors import WorkloadError
from repro.locks.gwc_lock import LockRetryPolicy
from repro.memory.repartition import (
    MigrationReport,
    arm_migration_fencing,
    rebalance_family,
)
from repro.params import PAPER_PARAMS, MachineParams
from repro.sim.statehash import shared_state_hash, shared_state_payload
from repro.workloads.base import WorkloadResult, finish

GROUP = "rootshard_group"
HOT = "hot_key"


def cold_var(index: int) -> str:
    return f"cold{index}"


def tally_var(index: int) -> str:
    return f"tally{index}"


def tally_lock(index: int) -> str:
    return f"shard_lock{index}"


@dataclass(frozen=True, slots=True)
class RootShardConfig:
    """Parameters for the root-sharding parity workload."""

    system: str = "gwc"
    n_nodes: int = 16
    #: Number of root partitions; 1 is the serial baseline.
    roots: int = 2
    #: Relay-tree fanout for hierarchical multicast; None = direct.
    fanout: int | None = None
    #: Writes to the injected hot key (one writer).
    hot_rounds: int = 48
    hot_writer: int = 1
    #: Think time between hot-key writes.  Keeping this well below
    #: ``think_time`` while sizing ``hot_rounds`` so the hot writer and
    #: the cold writers finish together makes the key hot in *rate* —
    #: the stationary-load shape LPT rebalancing is built for.
    hot_think: float = 5e-7
    #: Single-writer cold variables and writes per variable.
    cold_units: int = 8
    cold_rounds: int = 6
    #: Lock-protected counters; locker ``i`` works counter ``i % n_locks``.
    n_locks: int = 2
    n_lockers: int = 8
    increments: int = 3
    think_time: float = 2e-6
    update_time: float = 1e-6
    #: Re-partition online once ``rebalance_frac`` of the expected
    #: traffic has been sequenced (requires roots > 1).
    rebalance: bool = False
    rebalance_frac: float = 0.4
    min_gain: float = 0.05
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    partition_seed: int = 0
    topology: str = "mesh_torus"
    #: Optimism threshold forwarded to gwc_optimistic.
    threshold: float | None = None
    max_events: int | None = None

    def root_nodes(self) -> tuple[int, ...]:
        """Deterministic, spread-out root placement."""
        return tuple(
            (k * self.n_nodes) // self.roots for k in range(self.roots)
        )

    def expected_sequenced(self) -> int:
        """Rough expected family-wide sequenced-write count.

        Plain writes sequence once each; every counter increment costs
        about four sequenced writes (request, grant, data, release).
        Used only to time the online rebalance, not for assertions.
        """
        lockers = min(self.n_lockers, self.n_nodes)
        return (
            self.hot_rounds
            + self.cold_units * self.cold_rounds
            + 4 * lockers * self.increments
        )


def _durable_write(
    node: NodeHandle,
    system: DsmSystem,
    var: str,
    value: Any,
    settle: float,
) -> Generator[Any, Any, None]:
    """Write and poll the apply-back, re-sharing if a fence ate it.

    A plain write in flight when a migration (or failover) epoch fence
    lands is window-discarded — at-most-once delivery.  The writer's
    own apply never comes back, so after a few settle periods the write
    is re-issued; by then the member has adopted the new epoch and the
    re-routed copy lands at the new owning root.
    """
    yield from system.write(node, var, value)
    node.iface.flush_write_bursts()
    waits = 0
    while node.iface._applied.get(var) != value:
        yield settle
        waits += 1
        if waits % 8 == 0:
            yield from system.write(node, var, value)
            node.iface.flush_write_bursts()
        if waits > 100_000:
            raise WorkloadError(f"durable write of {var!r} never applied")


def _plain_writer(
    node: NodeHandle,
    system: DsmSystem,
    var: str,
    rounds: int,
    think_time: float,
    settle: float,
) -> Generator[Any, Any, None]:
    for i in range(rounds - 1):
        yield from node.busy(think_time, kind="useful")
        yield from system.write(node, var, i + 1)
    yield from node.busy(think_time, kind="useful")
    yield from _durable_write(node, system, var, rounds, settle)


def _increment_body(ctx: SectionContext) -> Generator[Any, Any, None]:
    var = ctx.node.locals["_rootshard_var"]
    value = ctx.read(var)
    yield from ctx.compute(ctx.node.locals["_rootshard_update_time"])
    if ctx.aborted:
        return
    ctx.write(var, value + 1)
    ctx.observe_rmw(var, value, value + 1)


def _locker(
    node: NodeHandle,
    system: DsmSystem,
    section: Section,
    count: int,
    think_time: float,
) -> Generator[Any, Any, None]:
    for _ in range(count):
        yield from node.busy(think_time, kind="useful")
        yield from system.run_section(node, section)


def _controller(
    machine: DSMMachine,
    config: RootShardConfig,
    settle: float,
    out: dict[str, Any],
) -> Generator[Any, Any, None]:
    """Watch family throughput, then re-partition online."""
    target = max(1, int(config.expected_sequenced() * config.rebalance_frac))
    while True:
        total = sum(
            engine.locally_sequenced for engine in machine.engines_for(GROUP)
        )
        if total >= target:
            break
        yield settle
    out["load_before"] = tuple(
        engine.locally_sequenced for engine in machine.engines_for(GROUP)
    )
    report = rebalance_family(machine, GROUP, min_gain=config.min_gain)
    out["report"] = report
    # Post-fence baseline: refresh traffic the migration itself
    # sequenced is excluded from the "after" load window.
    out["post_start"] = tuple(
        engine.locally_sequenced for engine in machine.engines_for(GROUP)
    )
    out["rebalanced_at"] = machine.sim.now


def run_rootshard(config: RootShardConfig) -> WorkloadResult:
    """Run the workload; extras carry parity hash and per-root loads."""
    if config.roots < 1:
        raise WorkloadError(f"need at least one root: {config.roots}")
    if config.roots > config.n_nodes:
        raise WorkloadError(
            f"{config.roots} roots need at least that many nodes "
            f"({config.n_nodes})"
        )
    machine = DSMMachine(
        n_nodes=config.n_nodes,
        topology=config.topology,
        params=config.params,
        seed=config.seed,
        reliable=True,
        checker=MutualExclusionChecker(),
    )
    settle = machine.nack_timeout / 4.0
    retry = LockRetryPolicy(
        timeout=40.0 * machine.nack_timeout, max_retries=64
    )
    system_kwargs: dict[str, Any] = {"lock_retry": retry}
    if config.threshold is not None and config.system == "gwc_optimistic":
        system_kwargs["threshold"] = config.threshold
    system = make_system(config.system, machine, **system_kwargs)

    machine.create_group(
        GROUP,
        roots=config.root_nodes(),
        partition_seed=config.partition_seed,
        fanout=config.fanout,
    )
    machine.declare_variable(GROUP, HOT, 0)
    for i in range(config.cold_units):
        machine.declare_variable(GROUP, cold_var(i), 0)
    for j in range(config.n_locks):
        machine.declare_variable(GROUP, tally_var(j), 0, mutex_lock=tally_lock(j))
        machine.declare_lock(
            GROUP, tally_lock(j), protects=(tally_var(j),), data_bytes=8
        )

    # The retry policy's timeout path cancels and re-requests, and a
    # migration fence can eat a grant in flight — both need the
    # managers' duplicate/cancel tolerance (recovery mode, no leases:
    # nothing crashes here, so time-based reclaim would only add risk).
    for engine in machine.engines_for(GROUP):
        engine.configure_lock_recovery()

    rebalancing = config.rebalance and config.roots > 1
    if rebalancing:
        arm_migration_fencing(machine)

    machine.spawn(
        _plain_writer(
            machine.nodes[config.hot_writer % config.n_nodes],
            system,
            HOT,
            config.hot_rounds,
            config.hot_think,
            settle,
        ),
        name="rootshard-hot",
    )
    for i in range(config.cold_units):
        writer = machine.nodes[(3 + 2 * i) % config.n_nodes]
        machine.spawn(
            _plain_writer(
                writer, system, cold_var(i), config.cold_rounds,
                config.think_time, settle,
            ),
            name=f"rootshard-cold{i}",
        )
    lockers = min(config.n_lockers, config.n_nodes)
    expected_tally = [0] * config.n_locks
    for rank in range(lockers):
        node = machine.nodes[rank]
        j = rank % config.n_locks
        expected_tally[j] += config.increments
        node.locals["_rootshard_var"] = tally_var(j)
        node.locals["_rootshard_update_time"] = config.update_time
        section = Section(
            lock=tally_lock(j),
            body=_increment_body,
            shared_reads=(tally_var(j),),
            shared_writes=(tally_var(j),),
            label=f"rootshard-inc{j}",
        )
        machine.spawn(
            _locker(node, system, section, config.increments, config.think_time),
            name=f"rootshard-locker{rank}",
        )
    control: dict[str, Any] = {}
    if rebalancing:
        machine.spawn(
            _controller(machine, config, settle, control),
            name="rootshard-controller",
        )

    result = finish(machine, system, max_events=config.max_events)

    if machine.checker is not None:
        for j in range(config.n_locks):
            machine.checker.verify_chain(tally_var(j), 0)
    payload = shared_state_payload(machine)
    values = payload["families"][GROUP]
    correct = values[HOT] == config.hot_rounds
    correct &= all(
        values[cold_var(i)] == config.cold_rounds
        for i in range(config.cold_units)
    )
    correct &= all(
        values[tally_var(j)] == expected_tally[j]
        for j in range(config.n_locks)
    )

    engines = machine.engines_for(GROUP)
    load_total = tuple(engine.locally_sequenced for engine in engines)
    report: MigrationReport | None = control.get("report")
    load_after: tuple[int, ...] | None = None
    max_over_mean_after: float | None = None
    if "post_start" in control:
        post_start = control["post_start"]
        load_after = tuple(
            engine.locally_sequenced - start
            for engine, start in zip(engines, post_start)
        )
        total_after = sum(load_after)
        if total_after > 0:
            max_over_mean_after = max(load_after) / (
                total_after / len(load_after)
            )
    result.extra.update(
        shared_hash=shared_state_hash(machine),
        correct=correct,
        roots=config.roots,
        root_nodes=config.root_nodes(),
        fanout=config.fanout,
        load_total=load_total,
        load_before=control.get("load_before"),
        load_after=load_after,
        max_over_mean_after=max_over_mean_after,
        migration_moves=dict(report.moves) if report is not None else None,
        locks_transferred=(
            report.locks_transferred if report is not None else 0
        ),
        fenced_partitions=(
            report.fenced_partitions if report is not None else ()
        ),
        migration_discards=sum(
            engine.migration_discards for engine in engines
        ),
        relayed_applies=sum(
            node.iface.relayed_applies for node in machine.nodes
        ),
        epoch_restarts=machine.metrics.total_counter(
            "section.epoch_restarts"
        ),
    )
    return result
