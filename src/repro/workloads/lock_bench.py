"""Lock-protocol shoot-out: the paper's locks vs. the cited baselines.

Runs the shared-counter kernel under five mutual-exclusion protocols on
the same eagersharing substrate:

* ``gwc_queue``  — the Section 2 queue-based GWC lock;
* ``optimistic`` — the Section 4 optimistic protocol;
* ``tas``        — test-and-set spinning via remote atomics [3];
* ``ttas``       — test-and-test-and-set with local spinning [17];
* ``mcs``        — the MCS software queue lock [14].

For the spin and MCS baselines the counter is an *ordinary* eagershared
variable (no root discard is involved); correctness still follows from
GWC's channel ordering: a holder's release is sequenced after its data
writes, so the next holder — whose acquisition reply leaves the root
later — always finds the data locally current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.node import NodeHandle
from repro.errors import WorkloadError
from repro.locks.mcs import McsLock
from repro.locks.rmw import RemoteAtomics
from repro.locks.spin import TasSpinLock, TtasSpinLock
from repro.memory.varspace import FREE_VALUE
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.base import WorkloadResult
from repro.workloads.counter import CounterConfig, run_counter

GROUP = "lockbench_group"
COUNTER = "lb_counter"
LOCK_VAR = "lb_lock"

PROTOCOLS = ("gwc_queue", "optimistic", "tas", "ttas", "mcs")


@dataclass(frozen=True, slots=True)
class LockBenchConfig:
    """Parameters for the lock-protocol shoot-out."""

    protocol: str = "gwc_queue"
    n_nodes: int = 6
    increments_per_node: int = 8
    think_time: float = 10e-6
    update_time: float = 1e-6
    params: MachineParams = PAPER_PARAMS
    seed: int = 0
    topology: str = "mesh_torus"


def _baseline_lock(config: LockBenchConfig, machine: DSMMachine, atomics: RemoteAtomics):
    if config.protocol == "tas":
        machine.declare_variable(GROUP, LOCK_VAR, FREE_VALUE)
        return TasSpinLock(LOCK_VAR, atomics)
    if config.protocol == "ttas":
        machine.declare_variable(GROUP, LOCK_VAR, FREE_VALUE)
        return TtasSpinLock(LOCK_VAR, atomics)
    if config.protocol == "mcs":
        return McsLock(LOCK_VAR, GROUP, machine, atomics)
    raise WorkloadError(f"unknown baseline protocol {config.protocol!r}")


def run_lock_bench(config: LockBenchConfig) -> WorkloadResult:
    """Run the counter kernel under the chosen lock protocol."""
    if config.protocol not in PROTOCOLS:
        raise WorkloadError(
            f"unknown protocol {config.protocol!r}; known: {PROTOCOLS}"
        )
    if config.protocol in ("gwc_queue", "optimistic"):
        system = "gwc" if config.protocol == "gwc_queue" else "gwc_optimistic"
        result = run_counter(
            CounterConfig(
                system=system,
                n_nodes=config.n_nodes,
                increments_per_node=config.increments_per_node,
                think_time=config.think_time,
                update_time=config.update_time,
                params=config.params,
                seed=config.seed,
                topology=config.topology,
            )
        )
        result.extra["protocol"] = config.protocol
        return result

    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=config.n_nodes,
        topology=config.topology,
        params=config.params,
        seed=config.seed,
        checker=checker,
    )
    machine.create_group(GROUP, root=0)
    machine.declare_variable(GROUP, COUNTER, 0)  # ordinary eagershared word
    atomics = RemoteAtomics(machine)
    lock = _baseline_lock(config, machine, atomics)

    def worker(node: NodeHandle) -> Generator[Any, Any, None]:
        for _ in range(config.increments_per_node):
            yield from node.busy(config.think_time, kind="useful")
            yield from lock.acquire(node)
            checker.enter(LOCK_VAR, node.id, node.sim.now)
            value = node.store.read(COUNTER)
            yield from node.busy(config.update_time, kind="useful")
            node.iface.share_write(COUNTER, value + 1)
            checker.observe_rmw(COUNTER, value, value + 1)
            checker.exit(LOCK_VAR, node.id, node.sim.now)
            yield from lock.release(node)

    for node in machine.nodes:
        machine.spawn(worker(node), name=f"lb-{node.id}")
    elapsed = machine.run()
    machine.sim.check_quiescent()
    checker.verify_no_occupancy()
    checker.verify_chain(COUNTER, 0)

    expected = config.n_nodes * config.increments_per_node
    finals = [n.store.read(COUNTER) for n in machine.nodes]
    result = WorkloadResult(
        system=config.protocol,
        n_nodes=config.n_nodes,
        elapsed=elapsed,
        metrics=machine.metrics,
        extra={
            "protocol": config.protocol,
            "expected": expected,
            "final_values": finals,
            "correct": max(finals) == expected,
            "converged": all(v == expected for v in finals),
            "remote_attempts": machine.metrics.total_counter(
                "spin.remote_attempts"
            ),
            "atomics_served": atomics.served,
            "messages": machine.network.stats.messages,
        },
    )
    return result
