"""The DSM machine: processors + interconnect + sharing groups.

:class:`DSMMachine` assembles a complete simulated system: a
deterministic simulator, the chosen topology and cost parameters, one
:class:`~repro.core.node.NodeHandle` per processor (local store +
eagersharing interface + metrics), and any number of sharing groups with
their variables, locks, and root engines.

Typical construction::

    machine = DSMMachine(n_nodes=8)
    machine.create_group("g")                       # all nodes, root 0
    machine.declare_variable("g", "counter", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("counter",))
    system = make_system("gwc_optimistic", machine)
    machine.spawn_workers(worker_fn, system)        # or machine.sim.spawn
    machine.run()
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Generator, Iterable

from repro.consistency.checker import MutualExclusionChecker
from repro.core.node import NodeHandle
from repro.errors import MemoryError_, NetworkError
from repro.memory.interface import NodeInterface
from repro.memory.sharing_group import SharingGroup
from repro.memory.store import LocalStore
from repro.memory.varspace import LockDecl, RootPartitionMap, VarDecl
from repro.metrics.collector import MachineMetrics
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import make_topology
from repro.params import PAPER_PARAMS, MachineParams
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

#: Handler for non-GWC protocol traffic: ``handler(node_id, message)``.
KindHandler = Callable[[int, Message], None]


class DSMMachine:
    """A simulated distributed-shared-memory machine."""

    def __init__(
        self,
        n_nodes: int,
        topology: str = "mesh_torus",
        params: MachineParams = PAPER_PARAMS,
        seed: int = 0,
        tracer: Tracer | None = None,
        echo_blocking: bool = True,
        checker: MutualExclusionChecker | None = None,
        loss_rate: float = 0.0,
        reliable: bool = False,
        lossy_failover: bool = False,
    ) -> None:
        self.params = params
        self.sim = Simulator(seed=seed, tracer=tracer)
        self.topology = make_topology(topology, n_nodes)
        self.loss_model = None
        nack_timeout = None
        if loss_rate > 0.0 or reliable:
            # ``reliable`` arms the NACK/heartbeat/duplicate-tolerance
            # machinery without random loss — needed when a fault
            # injector (rather than the loss model) removes or
            # duplicates messages.
            if loss_rate > 0.0:
                from repro.net.loss import LossModel

                self.loss_model = LossModel(
                    loss_rate,
                    self.sim.rng.stream("loss"),
                    lossy_failover=lossy_failover,
                )
            # Recovery timeout: comfortably above one diameter crossing.
            nack_timeout = max(
                4.0 * self.topology.diameter() * params.hop_latency
                + 16.0 * params.packet_bytes / params.link_bandwidth,
                2e-6,
            )
        self.nack_timeout = nack_timeout
        self.network = Network(self.sim, self.topology, params, self.loss_model)
        self.metrics = MachineMetrics(n_nodes)
        self.checker = checker
        #: Installed by :class:`repro.faults.failover.RootFailoverManager`.
        #: Its presence gates the epoch-fenced critical-section paths;
        #: when ``None`` every section runs the original code path.
        self.failover_manager: Any = None
        #: Set by :mod:`repro.memory.repartition` when online
        #: re-partitioning may bump epochs on live roots; arms the same
        #: fenced critical-section paths failover uses (see
        #: :attr:`epoch_fencing`).
        self._migration_fencing = False
        #: family name -> partition-ordered subgroup names.  Every group
        #: is a family (single-root groups are families of one); a
        #: sharded-root group is K sibling subgroups over the same
        #: members, each with its own root and sequence space.
        self.families: dict[str, tuple[str, ...]] = {}
        #: family name -> deterministic unit->partition assignment.
        self.partition_maps: dict[str, RootPartitionMap] = {}
        #: When this machine is one shard's replica of a sharded run
        #: (see :mod:`repro.sim.shards`), the node ids this replica
        #: authoritatively executes; ``None`` means a serial machine
        #: that owns everything.  Gates :meth:`spawn_for`.
        self.shard_owned: frozenset[int] | None = None
        self.groups: dict[str, SharingGroup] = {}
        self._kind_handlers: dict[str, KindHandler] = {}
        self._per_node_handlers: dict[
            str, Callable[[int, str], Callable[[Message], None]]
        ] = {}
        self._iface_free_at: dict[int, float] = {}
        self.nodes: list[NodeHandle] = []
        for node_id in range(n_nodes):
            store = LocalStore(node_id)
            iface = NodeInterface(
                self.sim,
                self.network,
                node_id,
                store,
                echo_blocking=echo_blocking,
                nack_timeout=nack_timeout,
                write_burst=params.write_burst,
            )
            handle = NodeHandle(
                node_id=node_id,
                sim=self.sim,
                store=store,
                iface=iface,
                metrics=self.metrics[node_id],
                params=params,
            )
            self.nodes.append(handle)
            dispatcher = self._make_dispatcher(node_id)
            if params.interface_service_time <= 0.0:
                # Immediate dispatch is stateless per message, so the
                # network may resolve (dst, kind) -> final callable once
                # and skip the dispatcher frame on every delivery.
                self.network.attach(
                    node_id,
                    dispatcher,
                    resolver=partial(self._resolve_kind, node_id),
                )
            else:
                self.network.attach(node_id, dispatcher)
        self.register_kind_handler(
            "gwc",
            lambda node_id, msg: self.nodes[node_id].iface.on_message(msg),
            per_node=lambda node_id, kind: self.nodes[node_id].iface.delivery_for(
                kind
            ),
        )

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def migration_fencing(self) -> bool:
        """Whether online re-partitioning may fence live-root epochs."""
        return self._migration_fencing

    @property
    def epoch_fencing(self) -> bool:
        """Whether critical sections must run the epoch-fenced paths.

        True when root failover is installed *or* online re-partitioning
        is armed — both can bump a group's epoch under a live section,
        which the fenced lock-held and optimistic runners detect and
        turn into a rollback + re-run.
        """
        return self.failover_manager is not None or self._migration_fencing

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _make_dispatcher(self, node_id: int) -> Callable[[Message], None]:
        # Per-node cache of kind -> single-argument delivery callable.
        # Prefixes registered with a ``per_node`` resolver collapse to
        # the node's bound method (no intermediate dispatch frame);
        # others fall back to ``handler(node_id, msg)``.
        kind_cache: dict[str, Callable[[Message], None]] = {}

        def handle(msg: Message) -> None:
            fn = kind_cache.get(msg.kind)
            if fn is None:
                fn = self._resolve_kind(node_id, msg.kind)
                kind_cache[msg.kind] = fn
            fn(msg)

        service = self.params.interface_service_time
        if service <= 0.0:
            return handle

        def dispatch_serialized(msg: Message) -> None:
            # The node's interface processes one inbound message at a
            # time: a hot node (e.g. an overloaded global root) queues.
            start = max(self.sim.now, self._iface_free_at.get(node_id, 0.0))
            done = start + service
            self._iface_free_at[node_id] = done
            self.sim.at_fn(done, partial(handle, msg))

        return dispatch_serialized

    def _resolve_kind(self, node_id: int, kind: str) -> Callable[[Message], None]:
        """Build the delivery callable for one (node, kind) pair.

        Unknown kinds resolve to a callable that raises on *delivery*,
        matching the historical behaviour of failing when the message
        event fires rather than when it is sent.
        """
        prefix = kind.split(".", 1)[0]
        resolver = self._per_node_handlers.get(prefix)
        if resolver is not None:
            return resolver(node_id, kind)
        handler = self._kind_handlers.get(prefix)
        if handler is None:
            def unknown_kind(msg: Message) -> None:
                raise NetworkError(
                    f"node {node_id}: no handler for message kind {msg.kind!r}"
                )

            return unknown_kind
        return partial(handler, node_id)

    def register_kind_handler(
        self,
        prefix: str,
        handler: KindHandler,
        per_node: Callable[[int, str], Callable[[Message], None]] | None = None,
    ) -> None:
        """Route messages whose kind starts with ``prefix + '.'``.

        Args:
            prefix: Kind prefix (the part before the first ``.``).
            handler: Generic ``handler(node_id, msg)`` callback.
            per_node: Optional ``(node_id, kind) ->`` direct delivery
                callable resolver; when given, dispatch skips the
                generic handler's extra call frame.
        """
        if prefix in self._kind_handlers:
            raise NetworkError(f"kind prefix {prefix!r} already registered")
        self._kind_handlers[prefix] = handler
        if per_node is not None:
            self._per_node_handlers[prefix] = per_node

    # ------------------------------------------------------------------
    # Groups, variables, locks
    # ------------------------------------------------------------------

    @staticmethod
    def subgroup_name(family: str, partition: int) -> str:
        """Name of partition ``partition`` in a sharded-root family.

        Partition 0 keeps the base name so single-root callers and
        goldens are untouched; partition k is ``{family}@r{k}``.
        """
        return family if partition == 0 else f"{family}@r{partition}"

    def create_group(
        self,
        name: str,
        members: Iterable[int] | None = None,
        root: int = 0,
        roots: Iterable[int] | None = None,
        partition_seed: int = 0,
        fanout: int | None = None,
    ) -> SharingGroup:
        """Create a sharing group (default: all nodes, rooted at node 0).

        With ``roots=(r0, r1, ...)`` the group's address space is
        *root-sharded*: K sibling subgroups are created over the same
        members — partition 0 keeps ``name``, partition k is
        ``{name}@r{k}`` — each with its own root, sequencer, and epoch.
        A :class:`RootPartitionMap` seeded with ``partition_seed``
        deterministically assigns every declared variable/lock unit to
        one partition.  ``fanout`` bounds per-node multicast degree via
        a hierarchical relay tree (None = direct root fanout).
        """
        if name in self.groups:
            raise MemoryError_(f"group {name!r} already exists")
        member_tuple = (
            tuple(range(self.n_nodes)) if members is None else tuple(members)
        )
        root_tuple = (root,) if roots is None else tuple(roots)
        if len(set(root_tuple)) != len(root_tuple):
            raise MemoryError_(f"group {name!r}: duplicate roots {root_tuple}")
        subgroup_names: list[str] = []
        for partition, part_root in enumerate(root_tuple):
            sub_name = self.subgroup_name(name, partition)
            if sub_name in self.groups:
                raise MemoryError_(f"group {sub_name!r} already exists")
            group = SharingGroup(
                sub_name,
                self.network,
                member_tuple,
                part_root,
                fanout=fanout,
                family=name,
                partition=partition,
            )
            self.groups[sub_name] = group
            subgroup_names.append(sub_name)
            for node_id in group.members:
                self.nodes[node_id].iface.join_group(group)
            # The root engine lives on the root node's interface.
            from repro.consistency.gwc import GroupRootEngine

            engine = GroupRootEngine(self.sim, group, self.params.packet_bytes)
            if self.nack_timeout is not None:
                engine.enable_reliability(heartbeat_interval=self.nack_timeout)
            self.nodes[part_root].iface.root_engines[sub_name] = engine
        self.families[name] = tuple(subgroup_names)
        self.partition_maps[name] = RootPartitionMap(
            name, len(root_tuple), seed=partition_seed
        )
        return self.groups[name]

    def root_engine(self, group: str) -> "GroupRootEngine":  # noqa: F821
        """The root engine for a group (lives at the group's root node)."""
        grp = self.groups[group]
        return self.nodes[grp.root].iface.root_engines[group]

    def family_groups(self, family: str) -> "tuple[SharingGroup, ...]":
        """All sibling subgroups of a family, in partition order."""
        return tuple(self.groups[sub] for sub in self.families[family])

    def engines_for(self, family: str) -> "tuple[GroupRootEngine, ...]":  # noqa: F821
        """All root engines of a family, in partition order."""
        return tuple(self.root_engine(sub) for sub in self.families[family])

    def partition_map(self, family: str) -> RootPartitionMap:
        """The deterministic unit->partition assignment of a family."""
        return self.partition_maps[family]

    def home_group(self, family: str, var: str) -> SharingGroup:
        """The subgroup whose root currently owns variable/lock ``var``."""
        pmap = self.partition_maps[family]
        return self.groups[self.families[family][pmap.partition_of(var)]]

    def root_load_summary(self, family: str) -> "dict[int, dict[str, int]]":
        """Per-partition locally-sequenced load, by sequencing unit.

        Only counts writes each engine sequenced itself (adopted state
        from failover/migration is excluded), so the numbers reflect
        where sequencing work actually happened.
        """
        return {
            group.partition: dict(self.root_engine(group.name).load_by_unit)
            for group in self.family_groups(family)
        }

    def declare_variable(
        self,
        group: str,
        name: str,
        initial: Any = 0,
        mutex_lock: str | None = None,
        size_bytes: int = 8,
    ) -> VarDecl:
        """Declare an eagerly shared variable on a group (family).

        In a sharded-root family the variable lands on the subgroup its
        partition-map unit hashes to; variables with a ``mutex_lock``
        share that lock's unit, so grants and mutex-data discard
        decisions always happen on the owning root.
        """
        pmap = self.partition_maps[group]
        pmap.register(name, mutex_lock)
        grp = self.home_group(group, name)
        decl = VarDecl(
            name=name,
            group=grp.name,
            initial=initial,
            size_bytes=size_bytes,
            mutex_lock=mutex_lock,
        )
        grp.declare_variable(decl)
        for node_id in grp.members:
            self.nodes[node_id].store.declare(name, initial)
        return decl

    def declare_lock(
        self,
        group: str,
        name: str,
        protects: Iterable[str] = (),
        data_bytes: int = 64,
    ) -> LockDecl:
        """Declare a lock on a group; installs the root-side manager."""
        pmap = self.partition_maps[group]
        pmap.register(name)
        grp = self.home_group(group, name)
        decl = LockDecl(
            name=name,
            group=grp.name,
            protects=tuple(protects),
            data_bytes=data_bytes,
        )
        grp.declare_lock(decl)
        from repro.memory.varspace import FREE_VALUE

        for node_id in grp.members:
            self.nodes[node_id].store.declare(name, FREE_VALUE)
        self.root_engine(grp.name).add_lock(decl)
        return decl

    def lock_decl(self, name: str) -> LockDecl:
        """Look a lock declaration up across all groups."""
        for group in self.groups.values():
            if name in group.locks:
                return group.locks[name]
        raise MemoryError_(f"no group declares lock {name!r}")

    def group_of_lock(self, name: str) -> SharingGroup:
        for group in self.groups.values():
            if name in group.locks:
                return group
        raise MemoryError_(f"no group declares lock {name!r}")

    def enable_span_recording(self) -> None:
        """Keep per-interval busy records for timeline rendering."""
        for node in self.nodes:
            node.metrics.record_spans()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def spawn(
        self, gen: Generator[Any, Any, Any], name: str = "process"
    ) -> "Process":  # noqa: F821
        return self.sim.spawn(gen, name)

    def spawn_for(
        self, node_id: int, gen: Generator[Any, Any, Any], name: str = "process"
    ) -> "Process | None":  # noqa: F821
        """Spawn a process that runs on ``node_id`` — shard-aware.

        On a serial machine (``shard_owned is None``) this is exactly
        :meth:`spawn`.  On a shard replica it only spawns processes for
        nodes the replica owns; a non-owned node's generator is closed
        unstarted (its process runs in that node's owning replica).
        Workload drivers that use this for every process are sharding-
        ready with no other changes.
        """
        owned = self.shard_owned
        if owned is not None and node_id not in owned:
            gen.close()
            return None
        return self.sim.spawn(gen, name)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        check_quiescent: bool = True,
    ) -> float:
        """Run to completion; records elapsed time into the metrics."""
        elapsed = self.sim.run(until=until, max_events=max_events)
        self.metrics.elapsed = elapsed
        if check_quiescent and until is None:
            self.sim.check_quiescent()
        return elapsed
