"""One simulated processor with its store, sharing interface, and clocks.

A :class:`NodeHandle` is what workload code holds: it bundles the node's
local memory image, its eagersharing interface, its metrics buckets, and
helpers for spending simulated CPU time — including
:meth:`NodeHandle.interruptible_busy`, which lets an optimistic critical
section stop computing the moment a rollback interrupt arrives.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.memory.interface import NodeInterface
from repro.memory.store import LocalStore
from repro.metrics.collector import NodeMetrics
from repro.params import MachineParams
from repro.sim.kernel import Simulator
from repro.sim.waiters import Future, Signal


class NodeHandle:
    """A processor in a :class:`~repro.core.machine.DSMMachine`."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        store: LocalStore,
        iface: NodeInterface,
        metrics: NodeMetrics,
        params: MachineParams,
    ) -> None:
        self.id = node_id
        self.sim = sim
        self.store = store
        self.iface = iface
        self.metrics = metrics
        self.params = params
        #: Node-private scratch variables (the paper's ``lcl_*`` locals);
        #: optimistic sections snapshot and restore entries here.
        self.locals: dict[str, Any] = {}
        #: Deferred work chunks (seconds of useful compute) this
        #: processor can context-swap to while blocked on a lock — the
        #: paper's "wait or context swap" alternative.
        self.background_work: list[float] = []

    def __repr__(self) -> str:
        return f"NodeHandle({self.id})"

    # ------------------------------------------------------------------
    # Spending simulated time
    # ------------------------------------------------------------------

    def busy(
        self, seconds: float, kind: str = "useful"
    ) -> Generator[Any, Any, float]:
        """Spend CPU time, recorded into the given metrics bucket."""
        if seconds > 0:
            yield seconds
            self.metrics.add_time(kind, seconds, end=self.sim.now)
        return seconds

    def compute(
        self, flops: float, kind: str = "useful"
    ) -> Generator[Any, Any, float]:
        """Spend the CPU time needed for ``flops`` operations."""
        return (yield from self.busy(self.params.compute_time(flops), kind))

    def interruptible_busy(
        self,
        seconds: float,
        abort: Signal | None = None,
    ) -> Generator[Any, Any, tuple[float, bool]]:
        """Compute for up to ``seconds``, stopping early if ``abort`` fires.

        Returns ``(elapsed, aborted)``.  The elapsed time is *not*
        recorded in any metrics bucket — callers classify it afterwards
        (useful vs. wasted), which is how rolled-back speculation ends up
        in the right column.
        """
        if seconds <= 0:
            return (0.0, False)
        if abort is None:
            yield seconds
            return (seconds, False)

        start = self.sim.now
        done = Future(name=f"n{self.id}.interruptible_busy")

        def on_timer() -> None:
            if not done.resolved:
                done.resolve(False)

        def on_abort(_: Any) -> None:
            if not done.resolved:
                done.resolve(True)

        timer = self.sim.schedule(seconds, on_timer)
        abort.add_callback(on_abort)
        aborted = yield done
        abort.remove_callback(on_abort)
        if aborted:
            self.sim.cancel(timer)
        elapsed = self.sim.now - start
        return (elapsed, bool(aborted))

    def add_background_work(self, chunks: "list[float] | tuple[float, ...]") -> None:
        """Queue deferred compute the node may run while lock-blocked."""
        for chunk in chunks:
            if chunk <= 0:
                raise ValueError(f"background chunk must be positive: {chunk}")
            self.background_work.append(float(chunk))

    def wait_until_with_swap(
        self,
        var: str,
        predicate: "Callable[[Any], bool]",  # noqa: F821
        swap_overhead: float,
    ) -> Generator[Any, Any, Any]:
        """Wait for a value, context-swapping to background work meanwhile.

        The paper's regular lock path "waits or context swaps until lock
        permission has been granted".  Each swap to a background chunk
        pays ``swap_overhead`` (saving/restoring processor context); the
        chunk itself runs to completion as useful work, then the lock
        condition is rechecked.  With no background work left this is an
        ordinary blocking wait.
        """
        while True:
            value = self.store.read(var)
            if predicate(value):
                return value
            if not self.background_work:
                return (yield from self.store.wait_until(var, predicate))
            chunk = self.background_work.pop(0)
            self.metrics.count("swap.switches")
            yield from self.busy(swap_overhead, kind="overhead")
            yield from self.busy(chunk, kind="useful")

    # ------------------------------------------------------------------
    # Shared memory convenience
    # ------------------------------------------------------------------

    def read_local(self, var: str) -> Any:
        """Read the node's local copy of a shared variable (no delay)."""
        return self.store.read(var)

    def write_shared(self, var: str, value: Any) -> None:
        """Eagerly share a write (applies locally, forwards to the root)."""
        self.iface.share_write(var, value)
