"""Critical sections: the code the paper's Figures 3 and 4 transform.

A :class:`Section` describes one mutually exclusive code region
declaratively — which lock guards it, which shared variables it reads
and writes, which node-local scratch variables it changes — plus a
``body`` callable that performs the actual reads, computation, and
writes through a :class:`SectionContext`.

Declaring the read/write sets is the "compiler support" of Figure 4: it
is exactly the information the optimistic runner needs to save rollback
state before speculating and to restore it after a conflict.

Bodies must be *re-executable*: the optimistic runner calls the body a
second time after a rollback.  A body is re-executable when it takes all
inputs through ``ctx.read`` / ``ctx.local`` and produces all effects
through ``ctx.write`` / ``ctx.set_local``, and checks ``ctx.aborted``
after each compute step (speculation that has been interrupted must stop
before writing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.errors import RollbackError
from repro.sim.waiters import Signal

#: A section body: a generator function over a :class:`SectionContext`.
SectionBody = Callable[["SectionContext"], Generator[Any, Any, Any]]


@dataclass(frozen=True, slots=True)
class Section:
    """Declarative description of one critical section.

    Attributes:
        lock: Name of the lock guarding the section.
        shared_reads: Shared variables the body reads (saved for rollback
            — the paper's ``saved_shared_a_in``).
        shared_writes: Shared variables the body writes (saved for
            rollback; their updates pass through — and may be discarded
            by — the group root).
        local_vars: Keys of ``node.locals`` the body changes (the paper's
            ``saved_lcl_c``).
        body: The section body.
        label: Optional diagnostic label.
    """

    lock: str
    body: SectionBody
    shared_reads: tuple[str, ...] = ()
    shared_writes: tuple[str, ...] = ()
    local_vars: tuple[str, ...] = ()
    label: str = "section"

    @property
    def save_set(self) -> tuple[str, ...]:
        """Shared variables whose local copies must be saved for rollback."""
        seen: dict[str, None] = {}
        for name in (*self.shared_reads, *self.shared_writes):
            seen.setdefault(name)
        return tuple(seen)

    def save_bytes(self, word_bytes: int = 8) -> int:
        """Approximate size of the rollback save set, for cost modelling."""
        return word_bytes * (len(self.save_set) + len(self.local_vars))


class SectionContext:
    """The body's window onto the node during one section execution."""

    def __init__(
        self,
        node: "NodeHandle",  # noqa: F821 - circular-import avoidance
        write_through: Callable[[str, Any], None],
        abort: Signal | None = None,
    ) -> None:
        self.node = node
        self._write_through = write_through
        self._abort = abort
        #: CPU time the body has spent so far (classified by the runner).
        self.elapsed = 0.0
        #: Set once an interrupt cut a compute step short.
        self.aborted = False
        #: Read-modify-write observations, committed to the machine's
        #: checker only if this execution commits (rolled-back
        #: speculation must not pollute the serializability chain).
        self.rmw_observations: list[tuple[str, Any, Any]] = []
        if abort is not None:
            # Latch the abort so a fire between two compute steps is not
            # lost (Signal wake-ups only reach waiters registered at fire
            # time).
            abort.add_callback(self._on_abort)

    def _on_abort(self, _payload: Any) -> None:
        self.aborted = True

    # -- data access ---------------------------------------------------

    def read(self, var: str) -> Any:
        """Read the local copy of a shared variable."""
        return self.node.store.read(var)

    def write(self, var: str, value: Any) -> None:
        """Write a shared variable through the active consistency system."""
        if self.aborted:
            raise RollbackError(
                f"section body on node {self.node.id} wrote {var!r} after "
                "its speculation was aborted; check ctx.aborted after "
                "compute steps"
            )
        self._write_through(var, value)

    def local(self, name: str, default: Any = None) -> Any:
        """Read a node-local scratch variable."""
        return self.node.locals.get(name, default)

    def observe_rmw(self, counter: str, read_value: Any, written_value: Any) -> None:
        """Record a read-modify-write for the serializability oracle.

        Buffered here and fed to the checker by the section runner only
        when the execution commits.
        """
        self.rmw_observations.append((counter, read_value, written_value))

    def set_local(self, name: str, value: Any) -> None:
        if self.aborted:
            raise RollbackError(
                f"section body on node {self.node.id} set local {name!r} "
                "after its speculation was aborted"
            )
        self.node.locals[name] = value

    # -- time ----------------------------------------------------------

    def compute(self, seconds: float) -> Generator[Any, Any, float]:
        """Spend section CPU time; may end early if speculation aborts."""
        if self.aborted:
            return 0.0
        elapsed, aborted = yield from self.node.interruptible_busy(
            seconds, self._abort
        )
        self.elapsed += elapsed
        if aborted:
            self.aborted = True
        return elapsed


@dataclass(slots=True)
class SectionOutcome:
    """What one section execution did (returned by section runners)."""

    optimistic: bool = False
    rolled_back: bool = False
    useful_time: float = 0.0
    wasted_time: float = 0.0
    result: Any = None
    extra: dict[str, Any] = field(default_factory=dict)


def snapshot_for_rollback(node: "NodeHandle", section: Section) -> dict[str, Any]:  # noqa: F821
    """Figure 4 lines (14)-(16): save everything the body may change."""
    saved: dict[str, Any] = {}
    for var in section.save_set:
        saved[f"shared:{var}"] = node.store.read(var)
    for name in section.local_vars:
        saved[f"local:{name}"] = node.locals.get(name)
    return saved


def restore_from_rollback(
    node: "NodeHandle",  # noqa: F821
    section: Section,
    saved: dict[str, Any],
) -> None:
    """Figure 4 lines (22)-(24): put every saved value back.

    Restores write the local store directly (not through eagersharing):
    rollback repairs *local* state only — remote copies were never
    corrupted because the group root discarded the speculative updates.
    """
    for var in section.save_set:
        key = f"shared:{var}"
        if key not in saved:
            raise RollbackError(f"rollback snapshot missing {key!r}")
        node.store.write(var, saved[key])
    for name in section.local_vars:
        key = f"local:{name}"
        if key not in saved:
            raise RollbackError(f"rollback snapshot missing {key!r}")
        node.locals[name] = saved[key]
