"""Core library: nodes, machines, critical sections, and the public API.

This package assembles the substrates (simulation kernel, network, DSM
memory, consistency engines, lock protocols) into the object a user
programs against: a :class:`~repro.core.machine.DSMMachine` populated
with :class:`~repro.core.node.NodeHandle` processors, running workload
processes that execute :class:`~repro.core.section.Section` critical
sections under a chosen consistency system.
"""

from repro.core.machine import DSMMachine
from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext

__all__ = [
    "DSMMachine",
    "NodeHandle",
    "Section",
    "SectionContext",
]
