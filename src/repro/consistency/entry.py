"""Entry consistency comparator (the paper's Midway-style baseline).

Behaviours the paper's comparison depends on (Section 3, Figure 1(b)):

* Guarded data is **not** eagerly shared: its current values travel with
  each lock grant ("extra time to send the changed data with the lock").
* Locks can be acquired in exclusive or non-exclusive mode; moving to
  exclusive mode first **invalidates** every node holding the data
  non-exclusively (a round trip per holder, overlapped).
* **Releases are local**: the releasing node keeps ownership and hands
  the lock directly to the next queued requester.
* This is the paper's "fast version of entry consistency, which is
  assumed always to know the lock owner": requesters consult an oracle
  for the current owner when sending, so no time is lost guessing.
  (Requests that race an in-flight ownership transfer are forwarded.)
* Reads of non-guarded remote data use **demand fetch**: a round trip to
  the variable's home ("processors must fetch and test a variable
  written by the producer", Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.consistency.base import DsmSystem, register_system
from repro.core.node import NodeHandle
from repro.errors import LockStateError
from repro.net.message import Message
from repro.sim.waiters import Future

#: Lock acquisition modes.
EXCLUSIVE = "exclusive"
NON_EXCLUSIVE = "non_exclusive"


@dataclass(slots=True)
class _EcLockState:
    """Global (oracle-visible) state of one entry-consistency lock."""

    owner: int
    held: bool = False
    granting: bool = False
    queue: list[tuple[int, str]] = field(default_factory=list)
    #: Nodes holding valid copies of the guarded data.
    copyset: set[int] = field(default_factory=set)
    pending_acks: int = 0
    pending_grant: tuple[int, str] | None = None


@dataclass(frozen=True, slots=True)
class _Req:
    lock: str
    requester: int
    mode: str
    #: Wrong-guess forwarding hops so far (guess mode only).
    forwards: int = 0


class EntrySystem(DsmSystem):
    """Entry consistency with owner-queued locks and demand fetch."""

    name = "entry"

    #: Default per-fetch software service time at the home node.  Entry
    #: consistency (Midway) is a software DSM: serving a demand fetch
    #: runs a request handler on the home processor (a few hundred
    #: instructions at 33 MFLOPS), where Sesame's eagersharing is done
    #: by dedicated interface hardware at zero processor cost.  This
    #: asymmetry is the paper's core premise (Section 1.1).
    DEFAULT_FETCH_SERVICE_TIME = 10e-6

    #: Forwarding chains give up and consult the true owner after this
    #: many wrong guesses (guarantees termination with stale caches).
    MAX_FORWARDS = 8

    def __init__(
        self,
        machine: "DSMMachine",  # noqa: F821
        fetch_service_time: float | None = None,
        owner_oracle: bool = True,
    ) -> None:
        super().__init__(machine)
        #: The paper's "fast version ... assumed always to know the lock
        #: owner".  With ``owner_oracle=False`` requesters instead use
        #: their last-observed owner and wrong guesses are forwarded —
        #: §1.3's "if the guess is wrong ... the request is forwarded to
        #: a new guess supplied by p", the cost the paper says makes
        #: entry consistency "not perform as well" under light
        #: contention.
        self.owner_oracle = owner_oracle
        #: Per-(lock, node) last-observed owner (guess mode only).
        self._owner_guess: dict[tuple[str, int], int] = {}
        self._locks: dict[str, _EcLockState] = {}
        #: Home (latest exclusive writer) of each non-guarded variable.
        self._var_home: dict[str, int] = {}
        #: Futures for requesters blocked on a grant: (lock, node).
        self._grant_waits: dict[tuple[str, int], Future] = {}
        #: Futures for in-flight demand fetches, keyed by fetch id.
        self._fetch_waits: dict[int, Future] = {}
        self._fetch_ids = 0
        self._poll_interval: float | None = None
        #: Per-fetch fixed service time at the home node, seconds.
        self.fetch_service_time: float = (
            fetch_service_time
            if fetch_service_time is not None
            else self.DEFAULT_FETCH_SERVICE_TIME
        )
        self._home_free_at: dict[int, float] = {}
        machine.register_kind_handler("ec", self._on_message)
        #: Diagnostics.
        self.invalidations = 0
        self.data_grants = 0
        self.fetches = 0

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def _lock_state(self, lock: str) -> _EcLockState:
        state = self._locks.get(lock)
        if state is None:
            group = self.machine.group_of_lock(lock)
            state = _EcLockState(owner=group.root, copyset={group.root})
            self._locks[lock] = state
        return state

    def _home(self, var: str) -> int:
        home = self._var_home.get(var)
        if home is not None:
            return home
        for group in self.machine.groups.values():
            if var in group.variables:
                return group.root
        raise LockStateError(f"no group declares variable {var!r}")

    def seed_copyset(self, lock: str, nodes: tuple[int, ...]) -> None:
        """Pre-populate non-exclusive holders (Figure 1(b)'s setup)."""
        self._lock_state(lock).copyset.update(nodes)

    def _send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int | None = None
    ) -> None:
        self.machine.network.send(
            Message(
                src=src,
                dst=dst,
                kind=kind,
                payload=payload,
                size_bytes=(
                    size_bytes
                    if size_bytes is not None
                    else self.machine.params.packet_bytes
                ),
            )
        )

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    def read(self, node: NodeHandle, var: str) -> Generator[Any, Any, Any]:
        """Guarded or home-local reads are local; otherwise demand fetch."""
        group = node.iface.group_of(var)
        decl = group.var_decl(var)
        if decl.is_mutex_data or self._home(var) == node.id:
            return node.store.read(var)
        return (yield from self._fetch(node, var))

    def _fetch(self, node: NodeHandle, var: str) -> Generator[Any, Any, Any]:
        """One demand-fetch round trip to the variable's home."""
        self.fetches += 1
        node.metrics.count("ec.fetches")
        self._fetch_ids += 1
        fetch_id = self._fetch_ids
        future = Future(name=f"ec.fetch.{fetch_id}")
        self._fetch_waits[fetch_id] = future
        self._send(
            node.id,
            self._home(var),
            "ec.fetch_req",
            payload=(fetch_id, var, node.id),
        )
        value = yield future
        node.store.write(var, value)
        return value

    def write(
        self, node: NodeHandle, var: str, value: Any
    ) -> Generator[Any, Any, None]:
        """Non-guarded write: local commit; this node becomes the home."""
        node.store.write(var, value)
        self._var_home[var] = node.id
        return
        yield  # pragma: no cover - marks this function as a generator

    def wait_value(
        self,
        node: NodeHandle,
        var: str,
        predicate: Callable[[Any], bool],
    ) -> Generator[Any, Any, Any]:
        """Poll — entry consistency pushes nothing.

        Non-guarded remote variables are re-fetched until the predicate
        holds (the paper's "fetch and test a variable written by the
        producer").  Guarded variables are polled by repeated
        non-exclusive lock acquisitions with a round-trip back-off —
        "the waits for updated read copies of values protected by a
        lock become significant for larger networks" (Section 3.1).
        """
        group = node.iface.group_of(var)
        decl = group.var_decl(var)
        if decl.is_mutex_data:
            return (yield from self._poll_guarded(node, var, decl, predicate))
        while True:
            # The home migrates to whichever node wrote last, so it must
            # be re-evaluated every round — a waiter that trusted a stale
            # home would sleep on a copy nobody will ever update.
            if self._home(var) == node.id:
                value = node.store.read(var)
                fetched = False
            else:
                value = yield from self._fetch(node, var)
                fetched = True
            if predicate(value):
                return value
            if not fetched:
                yield self.poll_interval()

    def poll_interval(self) -> float:
        """Back-off between guarded-data polls: about one round trip."""
        if self._poll_interval is None:
            params = self.machine.params
            diameter = self.machine.topology.diameter()
            self._poll_interval = max(
                2.0 * params.wire_time(params.packet_bytes, diameter), 1e-6
            )
        return self._poll_interval

    def _poll_guarded(
        self,
        node: NodeHandle,
        var: str,
        decl: Any,
        predicate: Callable[[Any], bool],
    ) -> Generator[Any, Any, Any]:
        while True:
            yield from self.acquire(node, decl.mutex_lock, mode=NON_EXCLUSIVE)
            value = node.store.read(var)
            yield from self.release(node, decl.mutex_lock)
            if predicate(value):
                return value
            yield self.poll_interval()

    def section_write(self, node: NodeHandle, var: str, value: Any) -> None:
        """Guarded write: local only; ships with the next lock grant."""
        node.store.write(var, value)

    # ------------------------------------------------------------------
    # Lock protocol
    # ------------------------------------------------------------------

    def acquire(
        self, node: NodeHandle, lock: str, mode: str = EXCLUSIVE
    ) -> Generator[Any, Any, None]:
        state = self._lock_state(lock)
        node.metrics.count("lock.requests")
        if (
            mode == NON_EXCLUSIVE
            and node.id in state.copyset
            and not state.held
            and not state.granting
        ):
            node.metrics.count("lock.acquired")
            return
        if (
            mode == EXCLUSIVE
            and state.owner == node.id
            and not state.held
            and not state.granting
            and state.copyset <= {node.id}
        ):
            # Re-acquisition by the owner with no remote copies: free.
            state.held = True
            state.copyset = {node.id}
            node.metrics.count("lock.acquired")
            return
        future = Future(name=f"ec.grant.{lock}.{node.id}")
        self._grant_waits[(lock, node.id)] = future
        target = (
            state.owner
            if self.owner_oracle
            else self._owner_guess.get((lock, node.id), state.owner if node.id == state.owner else self.machine.group_of_lock(lock).root)
        )
        self._send(
            node.id, target, "ec.acquire_req", payload=_Req(lock, node.id, mode)
        )
        yield future
        node.metrics.count("lock.acquired")

    def release(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        """Local release; hand off directly to the next queued requester."""
        state = self._lock_state(lock)
        if state.held and state.owner == node.id:
            state.held = False
            node.metrics.count("lock.released")
            self._pump_queue(lock, state)
        else:
            # Non-exclusive release: the copy stays valid in the copyset.
            node.metrics.count("lock.released")
        return
        yield  # pragma: no cover - marks this function as a generator

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _on_message(self, node_id: int, msg: Message) -> None:
        if msg.kind == "ec.acquire_req":
            self._on_acquire_req(node_id, msg.payload)
        elif msg.kind == "ec.grant":
            self._on_grant(node_id, msg.payload)
        elif msg.kind == "ec.invalidate":
            lock, owner = msg.payload
            state = self._lock_state(lock)
            state.copyset.discard(node_id)
            self._send(node_id, owner, "ec.inval_ack", payload=lock)
        elif msg.kind == "ec.inval_ack":
            self._on_inval_ack(node_id, msg.payload)
        elif msg.kind == "ec.fetch_req":
            self._serve_fetch(node_id, msg.payload)
        elif msg.kind == "ec.fetch_reply":
            fetch_id, value = msg.payload
            self._fetch_waits.pop(fetch_id).resolve(value)
        else:
            raise LockStateError(f"unknown entry-consistency message {msg.kind!r}")

    def _serve_fetch(self, node_id: int, payload: tuple[int, str, int]) -> None:
        """Serve one demand fetch at the home node.

        Unlike eagersharing (done by dedicated interface hardware without
        slowing the processor), demand fetches occupy the home node's
        memory system one at a time.  Serializing the replies is what
        makes a heavily fetched home — the Figure 2 producer — a
        hot-spot, the paper's reason demand-fetch protocols "do not
        execute efficiently on more than a few dozen processors".
        """
        fetch_id, var, requester = payload
        node = self.machine.nodes[node_id]
        value = node.store.read(var)
        size = node.iface.group_of(var).wire_bytes(
            var, self.machine.params.packet_bytes
        )
        service = self.machine.params.memory_time(size) + self.fetch_service_time
        now = self.machine.sim.now
        free_at = max(now, self._home_free_at.get(node_id, 0.0)) + service
        self._home_free_at[node_id] = free_at
        self.machine.sim.at(
            free_at,
            lambda: self._send(
                node_id,
                requester,
                "ec.fetch_reply",
                payload=(fetch_id, value),
                size_bytes=size,
            ),
        )

    def _on_acquire_req(self, node_id: int, req: _Req) -> None:
        state = self._lock_state(req.lock)
        if state.owner != node_id:
            # Wrong guess (or ownership transferred in flight): forward.
            self.machine.nodes[node_id].metrics.count("ec.forwards")
            import dataclasses

            forwarded = dataclasses.replace(req, forwards=req.forwards + 1)
            if self.owner_oracle or req.forwards + 1 >= self.MAX_FORWARDS:
                target = state.owner  # authoritative
            else:
                target = self._owner_guess.get((req.lock, node_id), state.owner)
                if target == node_id:
                    target = state.owner
            # Li/Hudak-style path compression: future requests through
            # this node chase the requester, who will soon hold the lock.
            self._owner_guess[(req.lock, node_id)] = req.requester
            self._send(node_id, target, "ec.acquire_req", payload=forwarded)
            return
        if state.held or state.granting:
            state.queue.append((req.requester, req.mode))
            return
        self._start_grant(req.lock, state, req.requester, req.mode)

    def _start_grant(
        self, lock: str, state: _EcLockState, requester: int, mode: str
    ) -> None:
        """Begin granting: invalidate remote copies first if exclusive."""
        state.granting = True
        state.pending_grant = (requester, mode)
        if mode == EXCLUSIVE:
            victims = state.copyset - {state.owner, requester}
            if victims:
                state.pending_acks = len(victims)
                self.invalidations += len(victims)
                for victim in victims:
                    self._send(
                        state.owner,
                        victim,
                        "ec.invalidate",
                        payload=(lock, state.owner),
                    )
                return
        self._finish_grant(lock, state)

    def _on_inval_ack(self, node_id: int, lock: str) -> None:
        state = self._lock_state(lock)
        if state.owner != node_id or state.pending_grant is None:
            raise LockStateError(f"stray invalidation ack for {lock!r} at {node_id}")
        state.pending_acks -= 1
        if state.pending_acks == 0:
            self._finish_grant(lock, state)

    def _finish_grant(self, lock: str, state: _EcLockState) -> None:
        """Send the grant, shipping the guarded data with it."""
        assert state.pending_grant is not None
        requester, mode = state.pending_grant
        state.pending_grant = None
        decl = self.machine.lock_decl(lock)
        owner_store = self.machine.nodes[state.owner].store
        data = {var: owner_store.read(var) for var in decl.protects}
        self.data_grants += 1
        size = self.machine.params.packet_bytes + decl.data_bytes
        # The granting (old) owner learns where the lock went.
        self._owner_guess[(lock, state.owner)] = requester
        self._send(
            state.owner,
            requester,
            "ec.grant",
            payload=(lock, mode, data),
            size_bytes=size,
        )
        if mode == EXCLUSIVE:
            state.owner = requester
            state.held = True
            state.copyset = {requester}
        else:
            state.copyset.add(requester)
            state.granting = False
            # Non-exclusive grants do not block the queue.
            self._pump_queue(lock, state)

    def _on_grant(self, node_id: int, payload: tuple[str, str, dict[str, Any]]) -> None:
        lock, mode, data = payload
        state = self._lock_state(lock)
        # The grantee now knows the owner exactly: itself.
        self._owner_guess[(lock, node_id)] = node_id
        store = self.machine.nodes[node_id].store
        for var, value in data.items():
            store.write(var, value)
        if mode == EXCLUSIVE:
            state.granting = False
        waiter = self._grant_waits.pop((lock, node_id), None)
        if waiter is None:
            raise LockStateError(f"grant for {lock!r} at {node_id} had no waiter")
        waiter.resolve(None)

    def _pump_queue(self, lock: str, state: _EcLockState) -> None:
        if state.queue and not state.held and not state.granting:
            requester, mode = state.queue.pop(0)
            self._start_grant(lock, state, requester, mode)


register_system("entry", EntrySystem)
