"""Group write consistency with eagersharing (the Sesame model).

Root side — :class:`GroupRootEngine`: every shared write in a group
flows to the group root, which (1) runs the lock manager for writes to
lock variables, (2) **discards** updates to mutex-protected data from
nodes that do not currently hold the protecting lock (the guarantee
optimistic execution relies on), and (3) stamps everything else with the
group-global sequence number and multicasts it down the spanning tree.

Node side — :class:`GwcSystem`: reads are local (eagersharing already
delivered remote changes), writes are non-blocking ("the Sesame
interface copies local data changes without slowing calculations"),
waiting for a value change is a sleep on the local store's change
signal, and locks are the Section 2 queue-based GWC locks.

:class:`OptimisticGwcSystem` is the same substrate with critical
sections executed by the Section 4 optimistic protocol.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Generator

from repro.consistency.base import DsmSystem, register_system
from repro.core.node import NodeHandle
from repro.core.section import Section, SectionOutcome
from repro.errors import MemoryError_
from repro.locks.gwc_lock import GwcLockClient, GwcLockManager, LockRetryPolicy
from repro.memory.interface import ApplyPacket, BurstUpdateRequest, UpdateRequest
from repro.memory.sharing_group import SharingGroup
from repro.memory.varspace import LockDecl
from repro.net.message import Message
from repro.sim.kernel import Simulator


class GroupRootEngine:
    """Sequencing arbiter + lock manager host for one sharing group."""

    def __init__(self, sim: Simulator, group: SharingGroup, packet_bytes: int) -> None:
        self.sim = sim
        self.group = group
        self.packet_bytes = packet_bytes
        self.lock_managers: dict[str, GwcLockManager] = {}
        #: Speculative mutex-data updates discarded at the root.
        self.discarded = 0
        #: Updates sequenced and multicast.
        self.sequenced = 0
        #: Sequencer epoch (root failover): bumped on every re-election;
        #: every packet and heartbeat is stamped with it so members can
        #: fence out a deposed sequencer's traffic.  ``epoch_start_seq``
        #: is the first sequence number this engine's epoch covers.
        self.epoch = 0
        self.epoch_start_seq = 0
        #: Set when a successor took over this engine's group: a deposed
        #: engine sequences nothing and answers no NACKs.
        self.deposed = False
        #: Stale messages swallowed by the deposed guard.
        self.deposed_ignored = 0
        #: Updates stamped with a superseded epoch and discarded: writes
        #: issued into the failover window, dropped by the new root
        #: exactly like a non-holder's speculative write (§4).
        self.window_discards = 0
        #: Writes this engine itself stamped and multicast.  Unlike
        #: :attr:`sequenced` (which a successor inherits via
        #: :meth:`adopt_state`), this counts only local sequencing work,
        #: so per-root load comparisons reflect where work happened.
        self.locally_sequenced = 0
        #: Local sequencing work by sequencing unit (a lock write or a
        #: write to its mutex data counts against the lock; a standalone
        #: variable counts against itself).  Feeds hot-unit detection
        #: and the per-root load CSV fields.
        self.load_by_unit: dict[str, int] = {}
        #: Local sequencing work by sequencer epoch.
        self.load_by_epoch: dict[int, int] = {}
        #: Names whose ownership migrated *away* from this engine's
        #: partition (online re-partitioning), and stale in-flight
        #: updates for them discarded at the old owner's fence.
        self.migrated: set[str] = set()
        self.migration_discards = 0
        #: The root's authoritative value of every variable, updated at
        #: sequencing time.  Remote atomics (locks/rmw.py) serialize here.
        self._authoritative: dict[str, Any] = {}
        #: Reliable-multicast state ("...and to retransmit all hidden
        #: sharing messages"): sequenced-packet history for NACK service
        #: plus a trailing heartbeat that exposes tail loss.
        self._history: dict[int, ApplyPacket] = {}
        self._heartbeat_interval: float | None = None
        self._heartbeat_event = None
        self.retransmissions = 0
        #: Members that dynamically disabled eagersharing, per variable.
        self._excluded: dict[str, set[int]] = {}
        self.suppressed_sends = 0
        #: Lock-recovery configuration (see :meth:`configure_lock_recovery`).
        self._lock_recovery = False
        self._lease_duration: float | None = None
        self._lease_is_crashed: "Callable[[int], bool] | None" = None
        self._lease_max_extensions: int | None = None
        #: Packet-train collection (Layer 1 batching): while a train is
        #: open, :meth:`_sequence_and_multicast` appends sequenced
        #: packets here instead of multicasting each one immediately;
        #: :meth:`_train_flush` ships the whole run as one
        #: :meth:`MulticastTree.multicast_train` — one heap event per
        #: member instead of one per (member, packet), with per-packet
        #: arrival times computed exactly as unbatched.  ``None`` means
        #: no train is open (single sequenced writes take the direct
        #: path, byte-for-byte the pre-train behaviour).
        self._train: "list[ApplyPacket] | None" = None
        self._train_depth = 0
        #: Multi-packet trains actually shipped (diagnostics).
        self.trains_sent = 0

    def enable_reliability(self, heartbeat_interval: float) -> None:
        """Keep history for retransmission and emit trailing heartbeats."""
        self._heartbeat_interval = heartbeat_interval

    def emit_heartbeat(self) -> None:
        """Immediately announce the latest sequence number to members.

        The trailing heartbeat only re-arms on new sequenced traffic, so
        a member cut off by a (now healed) partition could otherwise
        miss the final packets forever if no further writes happen.  The
        fault injector calls this on partition heal and node restart so
        NACK-based catch-up starts at once.  No-op when reliability is
        off (there is no retransmission history to catch up from).
        """
        if self._heartbeat_interval is None:
            return
        if self._heartbeat_event is not None:
            self.sim.cancel(self._heartbeat_event)
            self._heartbeat_event = None
        self._emit_heartbeat()

    def configure_lock_recovery(
        self,
        lease_duration: float | None = None,
        is_crashed: "Callable[[int], bool] | None" = None,
        max_extensions: int | None = None,
    ) -> None:
        """Enable recovery mode (and optionally leases) on every lock.

        Applies to locks already declared and to locks added later.
        With ``lease_duration`` set, each manager reclaims a crashed
        holder's lock after the lease expires, emitting the follow-on
        grant through the normal sequencing path.  ``max_extensions``
        bounds consecutive live-holder lease extensions per grant (see
        :meth:`GwcLockManager.enable_lease`).
        """
        self._lock_recovery = True
        self._lease_duration = lease_duration
        self._lease_is_crashed = is_crashed
        self._lease_max_extensions = max_extensions
        for manager in self.lock_managers.values():
            self._apply_recovery(manager)

    def _apply_recovery(self, manager: GwcLockManager) -> None:
        manager.enable_recovery()
        if self._lease_duration is not None:
            manager.enable_lease(
                self.sim,
                partial(self._emit_lock_values, manager.decl.name),
                self._lease_duration,
                self._lease_is_crashed,
                max_extensions=self._lease_max_extensions,
            )

    def _emit_lock_values(self, name: str, values: list[Any]) -> None:
        """Sequence root-originated lock writes (lease reclaim grants)."""
        self._train_begin()
        try:
            for value in values:
                self._sequence_and_multicast(
                    var=name,
                    value=value,
                    origin=self.group.root,
                    is_mutex_data=False,
                    is_lock=True,
                )
        finally:
            self._train_flush()

    def depose(self) -> None:
        """Mark this engine superseded by a failover successor.

        Cancels its timers so a stale lease check or trailing heartbeat
        cannot allocate sequence numbers on the group's (now replaced)
        multicast tree after the new epoch has begun.
        """
        self.deposed = True
        if self._heartbeat_event is not None:
            self.sim.cancel(self._heartbeat_event)
            self._heartbeat_event = None
        for manager in self.lock_managers.values():
            manager._cancel_lease()

    def adopt_state(
        self, epoch: int, next_seq: int, image: "dict[str, Any]"
    ) -> None:
        """Seed a successor engine from quorum-reconstructed state.

        ``next_seq`` is the quorum maximum of the survivors' applied
        sequence numbers; this epoch's packets start exactly there, so
        the engine's retransmission history can serve any NACK within
        the new epoch.
        """
        self.epoch = epoch
        self.epoch_start_seq = next_seq
        self.sequenced = next_seq
        self._authoritative = dict(image)

    def begin_migration_epoch(self, moved_names: "tuple[str, ...]") -> None:
        """Fence this partition for an ownership handoff.

        Bumps the sequencer epoch exactly like a failover takeover —
        the new epoch starts at the current sequence position, so stale
        in-flight updates (old epoch) are window-discarded and members
        that adopt the fence jump their cursor to the refresh the
        migration sequences right after this call.  ``moved_names`` are
        recorded so their stale updates are attributed to migration.
        """
        self.epoch += 1
        self.epoch_start_seq = self.sequenced
        self.migrated.update(moved_names)
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now,
                "root.migration_epoch",
                group=self.group.name,
                epoch=self.epoch,
                epoch_start=self.epoch_start_seq,
                moved=list(moved_names),
            )

    def on_nack(self, member: int, from_seq: int) -> None:
        """Resend every sequenced packet from ``from_seq`` to ``member``."""
        if self.deposed:
            self.deposed_ignored += 1
            return
        if self._heartbeat_interval is None:
            raise MemoryError_(
                f"group {self.group.name!r} got a NACK but reliability is off"
            )
        import dataclasses

        for seq in range(max(from_seq, self.epoch_start_seq), self.sequenced):
            packet = dataclasses.replace(self._history[seq], retransmit=True)
            self.retransmissions += 1
            self.group.tree.network.send(
                Message(
                    src=self.group.root,
                    dst=member,
                    kind="gwc.apply",
                    payload=packet,
                    size_bytes=self.group.wire_bytes(packet.var, self.packet_bytes),
                )
            )

    def _refresh_heartbeat(self) -> None:
        if self._heartbeat_interval is None:
            return
        if self._heartbeat_event is not None:
            self.sim.cancel(self._heartbeat_event)
        self._heartbeat_event = self.sim.schedule(
            self._heartbeat_interval, self._emit_heartbeat
        )

    def _emit_heartbeat(self) -> None:
        self._heartbeat_event = None
        if self.deposed:
            return
        latest = self.sequenced - 1
        if latest < 0:
            return
        payload = (self.group.name, latest, self.epoch, self.epoch_start_seq)
        for member in self.group.members:
            if member == self.group.root:
                continue
            self.group.tree.network.send(
                Message(
                    src=self.group.root,
                    dst=member,
                    kind="gwc.heartbeat",
                    payload=payload,
                    size_bytes=self.packet_bytes,
                )
            )

    def authoritative_read(self, var: str) -> Any:
        """The value of ``var`` in global sequence order, as of now."""
        if var not in self._authoritative:
            for name, value in self.group.initial_image().items():
                self._authoritative.setdefault(name, value)
        return self._authoritative[var]

    def sequence_plain_write(self, var: str, value: Any, origin: int) -> None:
        """Sequence a write produced at the root itself (remote atomics)."""
        decl = self.group.variables.get(var)
        self._sequence_and_multicast(
            var=var,
            value=value,
            origin=origin,
            is_mutex_data=decl.is_mutex_data if decl is not None else False,
            is_lock=self.group.is_lock(var),
        )

    def on_unsubscribe(self, var: str, member: int) -> None:
        """Dynamic eagersharing disable: stop shipping values to member."""
        self._excluded.setdefault(var, set()).add(member)

    def on_resubscribe(self, var: str, member: int) -> None:
        """Re-enable eagersharing; refresh everyone with a sequenced write.

        The refresh is an ordinary sequenced write of the current
        authoritative value, so the resubscriber (and anyone else) ends
        up with a copy that is correct in global order.
        """
        excluded = self._excluded.get(var)
        if excluded is not None:
            excluded.discard(member)
        self.sequence_plain_write(var, self.authoritative_read(var), self.group.root)

    def add_lock(self, decl: LockDecl) -> GwcLockManager:
        manager = GwcLockManager(decl)
        self.lock_managers[decl.name] = manager
        if self._lock_recovery:
            self._apply_recovery(manager)
        return manager

    def manager(self, lock: str) -> GwcLockManager:
        return self.lock_managers[lock]

    def on_update(self, request: UpdateRequest) -> None:
        """Handle one origin->root update packet."""
        if self.deposed:
            # A stale in-flight update addressed to the old sequencer;
            # the client's retry re-routes to the successor.
            self.deposed_ignored += 1
            return
        if request.epoch != self.epoch:
            # Issued into the failover window under the previous
            # sequencer's epoch.  The origin's view of the lock state
            # (and of the sequence history) may predate reconstruction,
            # so the write is discarded like any non-holder speculation;
            # the origin re-issues after adopting the new epoch.
            self.window_discards += 1
            if request.var in self.migrated:
                self.migration_discards += 1
            if self.sim.trace_enabled:
                self.sim.tracer.record(
                    self.sim.now,
                    "root.window_discarded",
                    group=self.group.name,
                    var=request.var,
                    origin=request.origin,
                    epoch=request.epoch,
                    current=self.epoch,
                )
            return
        self._train_begin()
        try:
            self._handle_write(request.var, request.value, request.origin)
        finally:
            self._train_flush()

    def on_update_burst(self, request: BurstUpdateRequest) -> None:
        """Handle one origin->root multi-write burst packet.

        Each write is sequenced individually, in issue order, through
        exactly the per-write logic of :meth:`on_update` (lock manager,
        mutex-data discard, plain sequencing); the resulting run of
        apply packets ships down the tree as one packet train.
        """
        if self.deposed:
            self.deposed_ignored += 1
            return
        if request.epoch != self.epoch:
            # Every write in the burst was issued into the failover
            # window; discard them all, one count per write, exactly as
            # if they had arrived as individual stale updates.
            self.window_discards += len(request.writes)
            if self.migrated:
                self.migration_discards += sum(
                    var in self.migrated for var, _ in request.writes
                )
            if self.sim.trace_enabled:
                self.sim.tracer.record(
                    self.sim.now,
                    "root.window_discarded_burst",
                    group=self.group.name,
                    writes=len(request.writes),
                    origin=request.origin,
                    epoch=request.epoch,
                    current=self.epoch,
                )
            return
        self._train_begin()
        try:
            for var, value in request.writes:
                self._handle_write(var, value, request.origin)
        finally:
            self._train_flush()

    def _handle_write(self, var: str, value: Any, origin: int) -> None:
        """Lock-manage / discard / sequence one current-epoch write."""
        group = self.group
        if var in self.migrated:
            # A write buffered before an online re-partition moved the
            # name away, flushed after this member adopted the bumped
            # epoch.  This root no longer owns the declaration; discard
            # like any migration-window write (the origin's durable-
            # write retry re-routes to the new owner).
            self.migration_discards += 1
            return
        if group.is_lock(var):
            manager = self.lock_managers[var]
            for granted in manager.on_write(origin, value):
                self._sequence_and_multicast(
                    var=var,
                    value=granted,
                    origin=group.root,
                    is_mutex_data=False,
                    is_lock=True,
                )
            return

        decl = group.var_decl(var)
        if decl.is_mutex_data:
            manager = self.lock_managers[decl.mutex_lock]
            if not manager.holds(origin):
                self.discarded += 1
                if self.sim.trace_enabled:
                    self.sim.tracer.record(
                        self.sim.now,
                        "root.discarded",
                        group=group.name,
                        var=var,
                        value=value,
                        origin=origin,
                        holder=manager.holder,
                    )
                return
        self._sequence_and_multicast(
            var=var,
            value=value,
            origin=origin,
            is_mutex_data=decl.is_mutex_data,
            is_lock=False,
        )

    def sequence_rebuilt_lock(self, name: str, value: Any) -> None:
        """Sequence one lock write synthesized from failover evidence.

        The ``rebuilt`` stamp lets a member decline a grant it no longer
        wants (its release died with the old root after the evidence
        snapshot was taken).
        """
        self._sequence_and_multicast(
            var=name,
            value=value,
            origin=self.group.root,
            is_mutex_data=False,
            is_lock=True,
            rebuilt=True,
        )

    def _sequence_and_multicast(
        self,
        var: str,
        value: Any,
        origin: int,
        is_mutex_data: bool,
        is_lock: bool,
        rebuilt: bool = False,
    ) -> None:
        if self.deposed:
            self.deposed_ignored += 1
            return
        self._authoritative[var] = value
        seq = self.group.tree.next_sequence()
        packet = ApplyPacket(
            group=self.group.name,
            seq=seq,
            var=var,
            value=value,
            origin=origin,
            is_mutex_data=is_mutex_data,
            is_lock=is_lock,
            epoch=self.epoch,
            epoch_start=self.epoch_start_seq,
            rebuilt=rebuilt,
        )
        self.sequenced += 1
        self.locally_sequenced += 1
        unit = var
        if is_mutex_data:
            decl = self.group.variables.get(var)
            if decl is not None and decl.mutex_lock is not None:
                unit = decl.mutex_lock
        self.load_by_unit[unit] = self.load_by_unit.get(unit, 0) + 1
        self.load_by_epoch[self.epoch] = self.load_by_epoch.get(self.epoch, 0) + 1
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now,
                "root.sequenced",
                group=self.group.name,
                seq=seq,
                var=var,
                value=value,
                origin=origin,
            )
        if self._heartbeat_interval is not None:
            self._history[seq] = packet
        if self._train is not None:
            # A train is open: the whole synchronous run of sequenced
            # packets ships together at flush time.
            self._train.append(packet)
            return
        self._emit_packet(packet)
        self._refresh_heartbeat()

    # ------------------------------------------------------------------
    # Packet-train emission (Layer 1 batching)
    # ------------------------------------------------------------------

    def _train_begin(self) -> None:
        """Open a packet train (re-entrant; outermost flush ships it)."""
        if self._train_depth == 0:
            self._train = []
        self._train_depth += 1

    def _train_flush(self) -> None:
        """Close the train and ship any collected packets.

        A one-packet train takes the ordinary single-multicast path —
        byte-for-byte what the root did before trains existed.  A
        multi-packet train ships via
        :meth:`MulticastTree.multicast_train`, unless some variable in
        the train has excluded (unsubscribed) members, in which case
        each packet is emitted individually so per-member suppression
        applies exactly as unbatched.
        """
        self._train_depth -= 1
        if self._train_depth > 0:
            return
        train = self._train
        self._train = None
        if not train:
            return
        if len(train) == 1:
            self._emit_packet(train[0])
        elif any(self._excluded.get(packet.var) for packet in train):
            for packet in train:
                self._emit_packet(packet)
        else:
            self.trains_sent += 1
            self.group.tree.multicast_train(
                "gwc.apply",
                train,
                [
                    self.group.wire_bytes(packet.var, self.packet_bytes)
                    for packet in train
                ],
            )
        self._refresh_heartbeat()

    def _emit_packet(self, packet: ApplyPacket) -> None:
        """Multicast one sequenced packet (with per-member suppression)."""
        var = packet.var
        excluded = self._excluded.get(var)
        if not excluded:
            self.group.tree.multicast(
                "gwc.apply", packet, self.group.wire_bytes(var, self.packet_bytes)
            )
        else:
            import dataclasses

            from repro.memory.interface import SUPPRESSED

            full_size = self.group.wire_bytes(var, self.packet_bytes)
            # Point-to-point sends: stamped ``direct`` so hierarchical-
            # multicast relays do not forward what every member already
            # received straight from the root.
            full = dataclasses.replace(packet, direct=True)
            header = dataclasses.replace(packet, value=SUPPRESSED, direct=True)
            for member in self.group.members:
                suppress = member in excluded
                self.suppressed_sends += int(suppress)
                self.group.tree.network.send(
                    Message(
                        src=self.group.root,
                        dst=member,
                        kind="gwc.apply",
                        payload=header if suppress else full,
                        size_bytes=self.packet_bytes if suppress else full_size,
                    )
                )


class GwcSystem(DsmSystem):
    """Group write consistency with the regular Section 2 locks."""

    name = "gwc"
    #: GWC is message-pure: updates, lock traffic, and sequencing all
    #: travel through the network, and each node's handlers only touch
    #: that node's own state — safe under the sharded kernel.
    shardable = True

    def __init__(
        self,
        machine: "DSMMachine",  # noqa: F821
        lock_retry: LockRetryPolicy | None = None,
    ) -> None:
        super().__init__(machine)
        self._clients: dict[str, GwcLockClient] = {}
        #: Optional timeout/backoff policy for every lock acquisition
        #: (see :class:`~repro.locks.gwc_lock.LockRetryPolicy`).  None
        #: keeps the paper's block-forever protocol.
        self.lock_retry = lock_retry

    def _client(self, lock: str) -> GwcLockClient:
        client = self._clients.get(lock)
        if client is None:
            client = GwcLockClient(self.machine.lock_decl(lock), self.lock_retry)
            self._clients[lock] = client
        return client

    # -- data ----------------------------------------------------------

    def read(self, node: NodeHandle, var: str) -> Generator[Any, Any, Any]:
        return node.store.read(var)
        yield  # pragma: no cover - marks this function as a generator

    def write(
        self, node: NodeHandle, var: str, value: Any
    ) -> Generator[Any, Any, None]:
        node.iface.share_write(var, value)
        return
        yield  # pragma: no cover - marks this function as a generator

    def wait_value(
        self,
        node: NodeHandle,
        var: str,
        predicate: Callable[[Any], bool],
    ) -> Generator[Any, Any, Any]:
        # Blocking on a value is a synchronization boundary: anything
        # this process buffered must become visible before it sleeps,
        # or a peer waiting on one of those writes would deadlock.
        node.iface.flush_write_bursts()
        return (yield from node.store.wait_until(var, predicate))

    def section_write(self, node: NodeHandle, var: str, value: Any) -> None:
        node.iface.share_write(var, value)

    # -- locks ----------------------------------------------------------

    def acquire(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        yield from self._client(lock).acquire(node)

    def release(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        yield from self._client(lock).release(node)
        if self.machine.migration_fencing:
            yield from self._confirm_release(node, lock)

    def _confirm_release(
        self, node: NodeHandle, lock: str
    ) -> Generator[Any, Any, None]:
        """Wait out the release under a migration fence, re-sending if eaten.

        The paper's release is fire-and-forget, and that is safe only
        while the sequencer is immortal: a FREE in flight when a
        migration epoch fence lands is window-discarded, leaving the
        root convinced this node still holds the lock (and the fence's
        refresh re-imposes the stale grant on this node's own store,
        which would trip the next acquire's nesting check).  Requests
        already recover via the retry policy and data writes via the
        fenced durability barrier; this is the same barrier for the
        release: poll until the sequenced stream moves past our grant,
        re-issuing the FREE once the new epoch has been adopted.

        Root *failover* does not need (or run) this barrier: there the
        stale holder table dies with the old root, and the successor
        rebuilds the lock from first-person member evidence — this
        node's local FREE — so a lost release is corrected on the root
        side.  Migration hands the exported table between two live
        roots with no reconstruction step, which is exactly why the
        client must make its release durable itself.
        """
        from repro.memory.varspace import FREE_VALUE, grant_value

        mine = grant_value(node.id)
        iface = node.iface
        settle = self.machine.nack_timeout / 4.0
        waits = 0
        while (
            iface._applied.get(lock) == mine or node.store.read(lock) == mine
        ):
            yield settle
            waits += 1
            if waits % 8 == 0:
                iface.share_write(lock, FREE_VALUE)
            if waits > 100_000:
                from repro.errors import LockStateError

                raise LockStateError(
                    f"node {node.id}: release of {lock!r} never sequenced"
                )


class OptimisticGwcSystem(GwcSystem):
    """GWC with Section 4 optimistic mutual exclusion for sections.

    Standalone :meth:`acquire`/:meth:`release` remain the regular
    blocking protocol; :meth:`run_section` speculates.
    """

    name = "gwc_optimistic"

    def __init__(
        self,
        machine: "DSMMachine",  # noqa: F821
        decay: float | None = None,
        threshold: float | None = None,
        force: str | None = None,
        wait_mode: str | None = None,
        swap_overhead: float | None = None,
        lock_retry: LockRetryPolicy | None = None,
    ) -> None:
        super().__init__(machine, lock_retry=lock_retry)
        from repro.locks.history import DEFAULT_DECAY, DEFAULT_THRESHOLD
        from repro.locks.optimistic import (
            WAIT_SPIN,
            OptimisticConfig,
            OptimisticMutexRunner,
        )

        self.config = OptimisticConfig(
            decay=decay if decay is not None else DEFAULT_DECAY,
            threshold=threshold if threshold is not None else DEFAULT_THRESHOLD,
            force=force,
            wait_mode=wait_mode if wait_mode is not None else WAIT_SPIN,
            swap_overhead=swap_overhead if swap_overhead is not None else 1e-6,
        )
        self.runner = OptimisticMutexRunner(self, self.config)

    def run_section(
        self, node: NodeHandle, section: Section
    ) -> Generator[Any, Any, SectionOutcome]:
        return (yield from self.runner.run_section(node, section))


register_system("gwc", GwcSystem, shardable=True)
register_system("gwc_optimistic", OptimisticGwcSystem, shardable=True)
