"""Online safety oracles for chaos and campaign runs.

The post-run checks in :mod:`repro.faults.chaos` only see the final
state; a campaign wants to catch a safety violation *at the instant it
happens*, with enough context to explain it.  :class:`InvariantMonitor`
is that layer: it wraps the run's :class:`MutualExclusionChecker` and
adds a periodic in-simulation sweep that samples protocol state the
checker cannot see.  Armed oracles:

``mutual_exclusion``
    Two live nodes inside a section guarded by the same lock (the
    wrapped checker's entry check, re-raised with evidence).
``section_pairing``
    A section exit without a matching enter (wrapped checker).
``epoch_monotonic``
    A node's adopted sequencer epoch, or the current root engine's
    epoch, moved backwards.  Epochs are fencing tokens; a regression
    would let a deposed sequencer's writes back in.
``sequencer_gap``
    A node's apply cursor moved backwards, or its reorder buffer holds
    a packet *below* the cursor (an already-applied sequence number
    buffered for re-apply — a duplicate about to corrupt the stream).
``single_writer``
    Single-writer token integrity, checked two ways.  The sweep compares
    occupancy with the root's authoritative lock state: a live node
    inside the critical section while the root believes another node
    (or nobody) holds the lock means the token was reclaimed or
    re-granted under a live holder.  At every RMW commit, the update's
    read must equal the previous committed write: two writers that
    derived updates from the same base value held the token
    concurrently, even if their sections never visibly overlapped
    (the epoch-fenced runner records enter/exit atomically at commit,
    so this is the *only* live signal of a stolen token there).  A
    break matching the crash-lost-write signature — the new read equals
    the previous entry's own read, and a crash has fired — is excused,
    mirroring the post-run crash-tolerant chain check.
``gvt_monotonic``
    (:class:`GvtMonitor`, sharded runs only) the sharded kernel's
    global-virtual-time estimate decreased between rounds, which would
    break fossil collection's commit guarantee.

Every observation lands in a bounded evidence ring; on violation the
monitor raises :class:`~repro.errors.InvariantViolationError` carrying
the oracle name and the trail, so a minimized repro bundle can replay
not just *that* the run failed but *how*.

Like the :class:`~repro.sim.watchdog.Watchdog`, the sweep disarms
itself once every process has finished, so a healthy run is never kept
alive by its checks.  The sweep is read-only: it never mutates protocol
state or draws randomness, so arming the monitor cannot change a run's
protocol-visible behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    ConsistencyError,
    InvariantViolationError,
    SimulationError,
)
from repro.memory.varspace import grant_value

if TYPE_CHECKING:
    from repro.core.machine import DSMMachine
    from repro.faults.injector import FaultInjector

#: Observations kept in the evidence ring (oldest dropped first).
DEFAULT_EVIDENCE = 48

#: The oracle names InvariantMonitor can raise under.
ORACLES = (
    "mutual_exclusion",
    "section_pairing",
    "epoch_monotonic",
    "sequencer_gap",
    "single_writer",
    "gvt_monotonic",
)


class GvtMonitor:
    """GVT-monotonicity oracle for sharded campaign trials.

    Hook it onto :attr:`repro.sim.shards.ShardedSimulator.on_gvt`; it
    raises the moment a round's GVT estimate is below the previous
    round's (fossil collection would then have committed uncommitted
    history).
    """

    def __init__(self, max_evidence: int = DEFAULT_EVIDENCE) -> None:
        self.last: float | None = None
        self.samples = 0
        self.evidence: deque[str] = deque(maxlen=max_evidence)

    def note(self, gvt: float) -> None:
        self.samples += 1
        self.evidence.append(f"round {self.samples}: gvt={gvt:.9g}")
        if self.last is not None and gvt < self.last:
            raise InvariantViolationError(
                f"GVT moved backwards: {self.last:.9g} -> {gvt:.9g} at "
                f"round {self.samples}",
                oracle="gvt_monotonic",
                evidence=tuple(self.evidence),
            )
        self.last = gvt


class InvariantMonitor:
    """Continuous invariant checking for one chaos run.

    Args:
        machine: The machine under test (its ``checker`` must be set for
            the mutual-exclusion oracle to arm).
        interval: Simulated seconds between sweeps.
        injector: Optional fault injector; when given, crashed nodes are
            skipped (their frozen state legitimately lags) and their
            monotonicity baselines reset so a restart re-learns them.
    """

    def __init__(
        self,
        machine: "DSMMachine",
        interval: float,
        injector: "FaultInjector | None" = None,
        max_evidence: int = DEFAULT_EVIDENCE,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"monitor interval must be > 0: {interval}")
        self.machine = machine
        self.interval = interval
        self.injector = injector
        self.evidence: deque[str] = deque(maxlen=max_evidence)
        #: Diagnostics.
        self.sweeps = 0
        self.armed = False
        self.installed = False
        #: Monotonicity baselines, reset for a node while it is down.
        self._node_epochs: dict[tuple[int, str], int] = {}
        self._node_cursors: dict[tuple[int, str], int] = {}
        self._root_epochs: dict[str, int] = {}
        #: Last committed (read, written) per RMW counter, plus how many
        #: chain breaks were excused as crash-lost writes.
        self._chain_tail: dict[str, tuple[Any, Any]] = {}
        self._chain_excused = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Wrap the checker and schedule the first sweep (idempotent)."""
        if self.installed:
            return
        self.installed = True
        checker = self.machine.checker
        if checker is not None:
            self._wrap_checker(checker)
        self.armed = True
        self.machine.sim.schedule(self.interval, self._sweep)

    def _wrap_checker(self, checker: Any) -> None:
        orig_enter = checker.enter
        orig_exit = checker.exit
        orig_crashed = checker.node_crashed

        def enter(lock: str, node: int, time: float) -> None:
            self._note(f"t={time:.9g} node {node} entered {lock!r}")
            try:
                orig_enter(lock, node, time)
            except ConsistencyError as exc:
                self._violate("mutual_exclusion", str(exc))

        def exit(lock: str, node: int, time: float) -> None:
            self._note(f"t={time:.9g} node {node} exited {lock!r}")
            try:
                orig_exit(lock, node, time)
            except ConsistencyError as exc:
                self._violate("section_pairing", str(exc))

        def node_crashed(node: int, time: float) -> list[str]:
            released = orig_crashed(node, time)
            self._note(
                f"t={time:.9g} node {node} crashed"
                + (f", force-exited {released}" if released else "")
            )
            return released

        orig_rmw = checker.observe_rmw

        def observe_rmw(counter: str, read_value: Any, written_value: Any) -> None:
            self._check_rmw(counter, read_value, written_value)
            orig_rmw(counter, read_value, written_value)

        checker.enter = enter
        checker.exit = exit
        checker.node_crashed = node_crashed
        checker.observe_rmw = observe_rmw

    # ------------------------------------------------------------------
    # Evidence and violation plumbing
    # ------------------------------------------------------------------

    def _note(self, line: str) -> None:
        self.evidence.append(line)

    def _violate(self, oracle: str, detail: str) -> None:
        self._note(f"VIOLATION[{oracle}]: {detail}")
        raise InvariantViolationError(
            f"invariant {oracle!r} violated at t={self.machine.sim.now:.9g}: "
            f"{detail}",
            oracle=oracle,
            evidence=tuple(self.evidence),
        )

    def _down(self, node: int) -> bool:
        return self.injector is not None and self.injector.is_crashed(node)

    def _check_rmw(self, counter: str, read_value: Any, written_value: Any) -> None:
        """Online RMW-chain continuity (single-writer token integrity).

        Each committed update must read exactly the previous committed
        write.  A break means two token holders derived updates from the
        same base value — concurrent writers — unless it carries the
        crash-lost-write signature (new read equals the previous entry's
        own read) with an unconsumed fired crash to blame.
        """
        now = self.machine.sim.now
        self._note(
            f"t={now:.9g} rmw {counter!r}: read {read_value!r} "
            f"wrote {written_value!r}"
        )
        last = self._chain_tail.get(counter)
        if last is not None and read_value != last[1]:
            crashes = self.injector.crashes if self.injector is not None else 0
            if self._chain_excused < crashes and read_value == last[0]:
                self._chain_excused += 1
                self._note(
                    f"t={now:.9g} excused chain break on {counter!r} "
                    f"(crash-lost write {last[1]!r})"
                )
            else:
                self._violate(
                    "single_writer",
                    f"rmw on {counter!r} read {read_value!r} but the "
                    f"previous committed write was {last[1]!r}: two "
                    "writers held the token concurrently (lost update)",
                )
        self._chain_tail[counter] = (read_value, written_value)

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------

    def _sweep(self) -> None:
        if not self.armed:
            return
        sim = self.machine.sim
        if not sim.blocked_processes():
            # Workload complete: stop sweeping so the queue can drain.
            self.armed = False
            return
        self.sweeps += 1
        self.check_now()
        sim.schedule(self.interval, self._sweep)

    def check_now(self) -> None:
        """Run every sampled oracle once (also usable post-run)."""
        self._check_sequencing()
        self._check_root_epochs()
        self._check_single_writer()

    def _check_sequencing(self) -> None:
        """Per-node apply-cursor / epoch monotonicity and gap absence."""
        for node in self.machine.nodes:
            if self._down(node.id):
                # Frozen pre-crash state; forget baselines so the
                # restart's adopted cursor/epoch start a fresh chain.
                for group in list(node.iface._next_seq):
                    self._node_cursors.pop((node.id, group), None)
                    self._node_epochs.pop((node.id, group), None)
                continue
            iface = node.iface
            for group, cursor in iface._next_seq.items():
                key = (node.id, group)
                last = self._node_cursors.get(key)
                if last is not None and cursor < last:
                    self._violate(
                        "sequencer_gap",
                        f"node {node.id} apply cursor for {group!r} moved "
                        f"backwards: {last} -> {cursor}",
                    )
                self._node_cursors[key] = cursor
                stale = [
                    seq for seq in iface._reorder.get(group, ()) if seq < cursor
                ]
                if stale:
                    self._violate(
                        "sequencer_gap",
                        f"node {node.id} reorder buffer for {group!r} holds "
                        f"already-applied seq(s) {sorted(stale)} below "
                        f"cursor {cursor}",
                    )
                epoch = iface._epoch[group]
                last_epoch = self._node_epochs.get(key)
                if last_epoch is not None and epoch < last_epoch:
                    self._violate(
                        "epoch_monotonic",
                        f"node {node.id} epoch for {group!r} moved "
                        f"backwards: {last_epoch} -> {epoch}",
                    )
                self._node_epochs[key] = epoch

    def _check_root_epochs(self) -> None:
        """The current root engine's epoch never decreases per group."""
        for name in self.machine.groups:
            try:
                engine = self.machine.root_engine(name)
            except KeyError:
                continue  # mid-failover: no engine installed yet
            last = self._root_epochs.get(name)
            if last is not None and engine.epoch < last:
                self._violate(
                    "epoch_monotonic",
                    f"root engine epoch for {name!r} moved backwards: "
                    f"{last} -> {engine.epoch}",
                )
            self._root_epochs[name] = engine.epoch

    def _check_single_writer(self) -> None:
        """Root's lock token vs actual occupancy.

        If a live node is inside a critical section, the authoritative
        lock manager at the group's current root must still name it as
        the holder.  Anything else means the token was reclaimed or
        re-granted under a live holder — the exact failure a broken
        lease configuration produces, caught here *before* a second
        entry turns it into a mutual-exclusion violation.
        """
        checker = self.machine.checker
        if checker is None:
            return
        for lock, (node, since) in list(checker._inside.items()):
            if self._down(node):
                continue  # the injector's force-exit callback is pending
            try:
                group = self.machine.group_of_lock(lock)
            except Exception:
                continue  # lock not group-managed (non-GWC protocols)
            try:
                engine = self.machine.root_engine(group.name)
            except KeyError:
                continue
            manager = engine.lock_managers.get(lock)
            if manager is None:
                continue
            if manager.holder != node:
                self._violate(
                    "single_writer",
                    f"node {node} has been inside {lock!r} since "
                    f"t={since:.9g} but the root's holder is "
                    f"{manager.holder} (token reclaimed/re-granted under "
                    f"a live holder; grant value would be "
                    f"{grant_value(node)})",
                )


__all__ = [
    "DEFAULT_EVIDENCE",
    "ORACLES",
    "GvtMonitor",
    "InvariantMonitor",
]
