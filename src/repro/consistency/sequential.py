"""Sequential consistency baseline.

Section 1.2 of the paper: "The strictest model is sequential
consistency, which requires both read and write memory accesses to
appear on all computers in the same order ... It is inefficient even
for two processors."

Implemented the classic way on top of the same substrate: every shared
write is sent to a global sequencer (the group root), multicast in
order, and — the expensive part — **the writer blocks until every
member has acknowledged the write**.  Reads are local (each member's
copy reflects a prefix of the global order, and writer-blocking makes
the order real time).  Locks reuse the centralized-manager protocol;
no release fence is needed because every write already fenced.

This system exists as a baseline for experiments; the paper's point is
exactly that nobody should build a large DSM this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.consistency.base import register_system
from repro.consistency.release import ReleaseSystem
from repro.core.node import NodeHandle
from repro.errors import ConsistencyError
from repro.net.message import Message
from repro.sim.waiters import Future


@dataclass(slots=True)
class _PendingWrite:
    """One globally ordered write awaiting member acknowledgements."""

    writer: int
    acks_left: int
    done: Future = field(default_factory=lambda: Future(name="sc.write"))


class SequentialSystem(ReleaseSystem):
    """Sequential consistency: globally ordered, writer-blocking writes."""

    name = "sequential"

    def __init__(self, machine: "DSMMachine") -> None:  # noqa: F821
        # Reuse the release-consistency lock protocol; replace the data
        # path entirely.
        super().__init__(machine)
        machine.register_kind_handler("sc", self._on_sc_message)
        self._pending: dict[int, _PendingWrite] = {}
        self._write_ids = 0
        self._global_seq = 0
        #: Diagnostics: total writer-blocked time can be derived from
        #: workload metrics; count the writes here.
        self.ordered_writes = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write(
        self, node: NodeHandle, var: str, value: Any
    ) -> Generator[Any, Any, None]:
        """Send to the sequencer and block until all members applied."""
        group = node.iface.group_of(var)
        self._write_ids += 1
        write_id = self._write_ids
        pending = _PendingWrite(writer=node.id, acks_left=len(group.members))
        self._pending[write_id] = pending
        self.machine.network.send(
            Message(
                src=node.id,
                dst=group.root,
                kind="sc.write",
                payload=(write_id, var, value, node.id),
                size_bytes=group.wire_bytes(var, self.machine.params.packet_bytes),
            )
        )
        yield pending.done

    def section_write(self, node: NodeHandle, var: str, value: Any) -> None:
        """Lock-protected writes: globally ordered, fenced at release.

        Inside a critical section the lock already serializes access, so
        per-write blocking adds nothing; the write still goes through
        the global sequencer, is applied locally at once, and the
        inherited release fence (:class:`ReleaseSystem`) blocks the lock
        release until every member acknowledged — the strongest
        behaviour a locked section can observe.
        """
        group = node.iface.group_of(var)
        node.store.write(var, value)
        self._write_ids += 1
        self._outstanding[node.id] = (
            self._outstanding.get(node.id, 0) + len(group.members) - 1
        )
        self.machine.network.send(
            Message(
                src=node.id,
                dst=group.root,
                kind="sc.section_write",
                payload=(var, value, node.id),
                size_bytes=group.wire_bytes(var, self.machine.params.packet_bytes),
            )
        )

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------

    def _on_sc_message(self, node_id: int, msg: Message) -> None:
        if msg.kind == "sc.write":
            write_id, var, value, writer = msg.payload
            group = self.machine.nodes[node_id].iface.group_of(var)
            if group.root != node_id:
                raise ConsistencyError("sc.write arrived at a non-root node")
            self._global_seq += 1
            self.ordered_writes += 1
            size = group.wire_bytes(var, self.machine.params.packet_bytes)
            for member in group.members:
                self.machine.network.send(
                    Message(
                        src=node_id,
                        dst=member,
                        kind="sc.apply",
                        payload=(write_id, var, value, writer),
                        size_bytes=size,
                    )
                )
        elif msg.kind == "sc.section_write":
            var, value, writer = msg.payload
            group = self.machine.nodes[node_id].iface.group_of(var)
            self._global_seq += 1
            self.ordered_writes += 1
            size = group.wire_bytes(var, self.machine.params.packet_bytes)
            for member in group.members:
                if member == writer:
                    continue  # the writer applied locally already
                self.machine.network.send(
                    Message(
                        src=node_id,
                        dst=member,
                        kind="sc.section_apply",
                        payload=(var, value, writer),
                        size_bytes=size,
                    )
                )
        elif msg.kind == "sc.section_apply":
            var, value, writer = msg.payload
            self.machine.nodes[node_id].store.write(var, value)
            self.machine.network.send(
                Message(
                    src=node_id,
                    dst=writer,
                    kind="rc.ack",  # feeds the inherited release fence
                    payload=None,
                    size_bytes=self.machine.params.packet_bytes,
                )
            )
        elif msg.kind == "sc.apply":
            write_id, var, value, writer = msg.payload
            self.machine.nodes[node_id].store.write(var, value)
            self.machine.network.send(
                Message(
                    src=node_id,
                    dst=writer,
                    kind="sc.ack",
                    payload=write_id,
                    size_bytes=self.machine.params.packet_bytes,
                )
            )
        elif msg.kind == "sc.ack":
            pending = self._pending.get(msg.payload)
            if pending is None:
                raise ConsistencyError(f"stray SC ack for write {msg.payload}")
            pending.acks_left -= 1
            if pending.acks_left == 0:
                del self._pending[msg.payload]
                pending.done.resolve(None)
        else:
            raise ConsistencyError(f"unknown SC message {msg.kind!r}")


register_system("sequential", SequentialSystem)
