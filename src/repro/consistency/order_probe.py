"""A total-store-order oracle for group write consistency.

GWC's core guarantee: "All eagerly shared writes ... will be performed
in the same order on all sharing processors."  :class:`OrderProbe`
wraps every member interface's apply step and records the sequence of
``(seq, var, value)`` tuples each node actually applied, then verifies:

1. **prefix property** — every member's applied sequence is a prefix of
   the root's sequenced history (members may lag, never diverge);
2. **gaplessness** — each member applied consecutive sequence numbers
   (dropped echoes and suppressed applies still consume their number);
3. **agreement** — any two members agree on every sequence number both
   applied.

The probe observes the interface from outside (it monkey-patches
``_process``), so the protocol under test is unmodified.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConsistencyError


class OrderProbe:
    """Records and verifies per-member apply orders for one group."""

    def __init__(self, machine: "DSMMachine", group: str) -> None:  # noqa: F821
        self.machine = machine
        self.group = group
        #: node -> list of (seq, var, value) in apply order.
        self.applied: dict[int, list[tuple[int, str, Any]]] = {}
        grp = machine.groups[group]
        for node_id in grp.members:
            self.applied[node_id] = []
            iface = machine.nodes[node_id].iface
            original = iface._process

            def spy(packet, node_id=node_id, original=original):
                if packet.group == self.group:
                    self.applied[node_id].append(
                        (packet.seq, packet.var, packet.value)
                    )
                original(packet)

            iface._process = spy  # type: ignore[method-assign]

    def verify(self) -> None:
        """Raise :class:`ConsistencyError` on any total-order violation."""
        for node_id, seq in self.applied.items():
            numbers = [s for s, _, _ in seq]
            if numbers != sorted(numbers):
                raise ConsistencyError(
                    f"node {node_id} applied out of order: {numbers}"
                )
            for i, n in enumerate(numbers):
                if n != i:
                    raise ConsistencyError(
                        f"node {node_id} has a gap: applied seq {n} at "
                        f"position {i}"
                    )
        # Agreement on every common prefix.
        members = sorted(self.applied)
        for a in members:
            for b in members:
                if b <= a:
                    continue
                common = min(len(self.applied[a]), len(self.applied[b]))
                if self.applied[a][:common] != self.applied[b][:common]:
                    raise ConsistencyError(
                        f"nodes {a} and {b} disagree on the apply order"
                    )

    def max_lag(self) -> int:
        """How many applies the slowest member trails the fastest by."""
        lengths = [len(seq) for seq in self.applied.values()]
        return max(lengths) - min(lengths) if lengths else 0
