"""Correctness oracles for mutual exclusion.

:class:`MutualExclusionChecker` records every critical-section entry and
exit (with the owning lock, node, and simulated time) and verifies:

1. **Mutual exclusion** — at most one node is inside a section guarded
   by the same lock at any instant;
2. **Serializability of guarded counters** — for sections that report a
   read-modify-write of a counter, the sequence of observed values is a
   permutation-free chain (each section reads the value the previous one
   wrote), which fails loudly if a lost update slips through — e.g. when
   the echo-blocking ablation corrupts rollback state.

The checker is an oracle, not part of the protocol: production runs
leave ``machine.checker`` unset and pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConsistencyError


@dataclass(frozen=True, slots=True)
class SectionSpan:
    """One completed critical-section occupancy."""

    lock: str
    node: int
    enter: float
    exit: float


class MutualExclusionChecker:
    """Online checker for lock-protected critical sections."""

    def __init__(self) -> None:
        self._inside: dict[str, tuple[int, float]] = {}
        self.spans: list[SectionSpan] = []
        #: Per-counter chains: name -> list of (read_value, written_value).
        self.chains: dict[str, list[tuple[object, object]]] = {}

    def enter(self, lock: str, node: int, time: float) -> None:
        current = self._inside.get(lock)
        if current is not None:
            other, since = current
            raise ConsistencyError(
                f"mutual exclusion violated on {lock!r}: node {node} entered "
                f"at t={time} while node {other} has been inside since "
                f"t={since}"
            )
        self._inside[lock] = (node, time)

    def exit(self, lock: str, node: int, time: float) -> None:
        current = self._inside.get(lock)
        if current is None or current[0] != node:
            raise ConsistencyError(
                f"node {node} exited {lock!r} at t={time} without a "
                f"matching enter (inside: {current})"
            )
        del self._inside[lock]
        self.spans.append(
            SectionSpan(lock=lock, node=node, enter=current[1], exit=time)
        )

    def node_crashed(self, node: int, time: float) -> list[str]:
        """Force-exit every section ``node`` was inside when it crashed.

        A crashed holder never reaches its ``exit`` call; without this
        hook the next lease-reclaim grant would be reported as a false
        mutual-exclusion violation.  The truncated occupancy is still
        recorded as a span (its real extent ended at the crash).
        Returns the lock names that were force-exited.
        """
        released = [
            lock for lock, (inside, _since) in self._inside.items() if inside == node
        ]
        for lock in released:
            _inside, since = self._inside.pop(lock)
            self.spans.append(
                SectionSpan(lock=lock, node=node, enter=since, exit=time)
            )
        return released

    def observe_rmw(self, counter: str, read_value: object, written_value: object) -> None:
        """Record one read-modify-write on a guarded counter."""
        self.chains.setdefault(counter, []).append((read_value, written_value))

    def verify_chain(self, counter: str, initial: object) -> None:
        """Check that RMW observations form an unbroken chain.

        Every section must have read exactly the value the previous
        section wrote; a gap means a lost or phantom update.
        """
        expected = initial
        for i, (read_value, written_value) in enumerate(
            self.chains.get(counter, [])
        ):
            if read_value != expected:
                raise ConsistencyError(
                    f"counter {counter!r}: update #{i} read {read_value!r} "
                    f"but the previous write was {expected!r} (lost update)"
                )
            expected = written_value

    def verify_no_occupancy(self) -> None:
        """Check that every entered section has exited."""
        if self._inside:
            raise ConsistencyError(
                f"sections still occupied at end of run: {self._inside}"
            )

    def occupancy_of(self, lock: str) -> list[SectionSpan]:
        return [s for s in self.spans if s.lock == lock]
