"""The abstract DSM programming API workloads are written against.

Every consistency system provides the same operations — local/remote
reads, shared writes, value waits, lock acquire/release, and critical
section execution — so that one workload runs unchanged under group
write consistency, optimistic GWC, entry consistency, and weak/release
consistency.  All operations are generator functions driven by the
simulation kernel (``yield from system.op(...)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Generator

from repro.core.node import NodeHandle
from repro.core.section import (
    Section,
    SectionContext,
    SectionOutcome,
    restore_from_rollback,
    snapshot_for_rollback,
)


class DsmSystem(ABC):
    """One consistency model + lock protocol bound to a machine."""

    #: Short identifier used by experiments ("gwc", "entry", ...).
    name: str = "abstract"

    #: Whether this system is safe to run under the sharded kernel
    #: (:mod:`repro.sim.shards`).  A shardable system must be
    #: *message-pure*: every cross-node interaction travels through
    #: :meth:`Network.send` so replicas only communicate via routed,
    #: timestamped messages.  Systems that mutate state at several
    #: nodes from one handler (e.g. entry consistency's centralized
    #: lock bookkeeping) are not shardable and fall back to serial.
    shardable: bool = False

    def __init__(self, machine: "DSMMachine") -> None:  # noqa: F821
        self.machine = machine

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    @abstractmethod
    def read(self, node: NodeHandle, var: str) -> Generator[Any, Any, Any]:
        """Read a shared variable; may cost time (demand fetch)."""

    @abstractmethod
    def write(self, node: NodeHandle, var: str, value: Any) -> Generator[Any, Any, None]:
        """Write a shared variable under this model's propagation rules."""

    @abstractmethod
    def wait_value(
        self,
        node: NodeHandle,
        var: str,
        predicate: Callable[[Any], bool],
    ) -> Generator[Any, Any, Any]:
        """Block until the variable satisfies ``predicate``; returns it."""

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    @abstractmethod
    def acquire(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        """Gain exclusive access to the named lock."""

    @abstractmethod
    def release(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        """Give up exclusive access."""

    # ------------------------------------------------------------------
    # Critical sections
    # ------------------------------------------------------------------

    def section_write(self, node: NodeHandle, var: str, value: Any) -> None:
        """Zero-time write used by section bodies (model-specific).

        Defaults to a plain local store write; eagersharing systems
        override to forward the update toward the group root.
        """
        node.store.write(var, value)

    def run_section(
        self, node: NodeHandle, section: Section
    ) -> Generator[Any, Any, SectionOutcome]:
        """Execute one critical section: acquire, body, release.

        Systems with speculative execution override this (the optimistic
        GWC system replaces it with the Figure 4 protocol).
        """
        yield from self.acquire(node, section.lock)
        outcome = yield from self._run_body_held(node, section)
        yield from self.release(node, section.lock)
        return outcome

    def _run_body_held(
        self, node: NodeHandle, section: Section
    ) -> Generator[Any, Any, SectionOutcome]:
        """Run the body while the lock is held; time counts as useful."""
        checker = self.machine.checker
        if not self.machine.epoch_fencing:
            if checker is not None:
                checker.enter(section.lock, node.id, node.sim.now)
            ctx = SectionContext(
                node,
                write_through=lambda var, value: self.section_write(
                    node, var, value
                ),
            )
            result = yield from section.body(ctx)
            node.metrics.add_time("useful", ctx.elapsed, end=node.sim.now)
            if checker is not None:
                for counter, read_value, written_value in ctx.rmw_observations:
                    checker.observe_rmw(counter, read_value, written_value)
                checker.exit(section.lock, node.id, node.sim.now)
            return SectionOutcome(
                optimistic=False,
                rolled_back=False,
                useful_time=ctx.elapsed,
                result=result,
            )
        return (yield from self._run_body_held_fenced(node, section))

    def _run_body_held_fenced(
        self, node: NodeHandle, section: Section
    ) -> Generator[Any, Any, SectionOutcome]:
        """Epoch-fenced body execution, active under a failover manager.

        A sequencer epoch change while the body runs means the group
        root crashed mid-section: writes the body issued may have died
        with it (or been discarded by the new root as failover-window
        traffic), so the commit check treats the epoch change exactly
        like an optimistic conflict — roll the section back and re-run
        it under the new root (this node still holds the lock: the
        rebuilt lock table granted it from this node's own evidence).
        Checker bookkeeping is deferred to commit time, the same pattern
        the optimistic runner uses for speculative sections.
        """
        checker = self.machine.checker
        iface = node.iface
        group = iface.group_of(section.lock).name
        settle = self.machine.nack_timeout / 4.0
        restarts = 0
        committed = False
        while True:
            entry_epoch = iface._epoch[group]
            entered = node.sim.now
            saved = snapshot_for_rollback(node, section)
            pending: dict[str, Any] = {}

            def write_through(
                var: str, value: Any, _pending: dict[str, Any] = pending
            ) -> None:
                _pending[var] = value
                self.section_write(node, var, value)

            ctx = SectionContext(node, write_through=write_through)
            result = yield from section.body(ctx)
            if not committed and checker is not None:
                # Commit in the same simulator event as the body's last
                # write (the crash-atomicity contract the counter
                # workload relies on).  Only the first run commits: a
                # re-run restores the pre-section snapshot, so it
                # re-derives byte-identical reads and writes and the
                # first observation stays accurate for the one update
                # that ultimately lands.
                checker.enter(section.lock, node.id, entered)
                for counter, read_value, written_value in ctx.rmw_observations:
                    checker.observe_rmw(counter, read_value, written_value)
                checker.exit(section.lock, node.id, node.sim.now)
            committed = True
            # Durability barrier: a write only survives the root once it
            # has been sequenced, which this node observes as its own
            # apply coming back.  If the root died before sequencing,
            # the ack never arrives — the epoch change then triggers a
            # rollback and re-run so the committed observation's write
            # is actually re-issued under the new root.
            while (
                iface._epoch[group] == entry_epoch
                and any(
                    iface._applied.get(var) != value
                    for var, value in pending.items()
                )
            ):
                yield settle
            if iface._epoch[group] == entry_epoch:
                break
            restarts += 1
            node.metrics.count("section.epoch_restarts")
            node.metrics.add_time("wasted", ctx.elapsed, end=node.sim.now)
            restore_from_rollback(node, section, saved)
        node.metrics.add_time("useful", ctx.elapsed, end=node.sim.now)
        return SectionOutcome(
            optimistic=False,
            rolled_back=restarts > 0,
            useful_time=ctx.elapsed,
            result=result,
        )


#: Registry populated by the concrete system modules.
_SYSTEM_FACTORIES: dict[str, Callable[["DSMMachine"], DsmSystem]] = {}  # noqa: F821
_SHARDABLE_SYSTEMS: set[str] = set()


def register_system(
    name: str,
    factory: Callable[["DSMMachine"], DsmSystem],  # noqa: F821
    shardable: bool = False,
) -> None:
    """Register a consistency system under an experiment name."""
    _SYSTEM_FACTORIES[name] = factory
    if shardable:
        _SHARDABLE_SYSTEMS.add(name)


def system_is_shardable(name: str) -> bool:
    """Whether the named system may run under the sharded kernel."""
    _import_implementations()
    return name in _SHARDABLE_SYSTEMS


def system_names() -> tuple[str, ...]:
    """All registered system names (importing the implementations)."""
    _import_implementations()
    return tuple(sorted(_SYSTEM_FACTORIES))


def _import_implementations() -> None:
    # Imported lazily to avoid circular imports at package load time.
    import repro.consistency.entry  # noqa: F401
    import repro.consistency.gwc  # noqa: F401
    import repro.consistency.release  # noqa: F401
    import repro.consistency.sequential  # noqa: F401


def make_system(name: str, machine: "DSMMachine", **kwargs: Any) -> DsmSystem:  # noqa: F821
    """Build a consistency system by name, bound to ``machine``.

    Extra keyword arguments are forwarded to the system's constructor
    (e.g. ``threshold=0.5`` for ``gwc_optimistic``).
    """
    _import_implementations()
    try:
        factory = _SYSTEM_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_SYSTEM_FACTORIES))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None
    return factory(machine, **kwargs)
