"""Consistency models.

Workloads are written once against the abstract
:class:`~repro.consistency.base.DsmSystem` API and run unchanged on:

* :class:`~repro.consistency.gwc.GwcSystem` — group write consistency
  with eagersharing (the paper's Sesame model), regular locks;
* :class:`~repro.consistency.gwc.OptimisticGwcSystem` — same substrate
  with the paper's optimistic mutual exclusion for critical sections;
* :class:`~repro.consistency.entry.EntrySystem` — the entry-consistency
  comparator (guarded data ships with lock grants, demand fetch
  elsewhere);
* :class:`~repro.consistency.release.ReleaseSystem` — the weak/release
  consistency comparator (eager updates, release blocks until updates
  reach all nodes, centralized lock manager).

:mod:`repro.consistency.checker` provides the mutual-exclusion /
serializability oracle used by tests.
"""

from repro.consistency.base import DsmSystem, make_system
from repro.consistency.checker import MutualExclusionChecker

__all__ = [
    "DsmSystem",
    "MutualExclusionChecker",
    "make_system",
]
