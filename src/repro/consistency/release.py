"""Weak / release consistency comparator.

Behaviours the paper's comparison depends on (Section 3, Figure 1(c)):

* Data uses **cache-update sharing**: a write is applied locally and the
  new value is multicast directly to every other group member (no root,
  no global sequencing).  Receivers acknowledge.
* A lock **release is blocked until the updates reach all nodes**: the
  releasing processor first fences on all outstanding update acks.
* Locks use a **centralized manager** and "may need three one-way
  messages": request -> manager, forwarded -> current owner, and the
  owner eventually grants directly to the requester.

"Weak and release consistency behave the same" in the paper's scenarios
(each processor locks, accesses, and releases); both names map to this
system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.consistency.base import DsmSystem, register_system
from repro.core.node import NodeHandle
from repro.errors import LockStateError
from repro.net.message import Message
from repro.sim.waiters import Future, Signal


@dataclass(slots=True)
class _RcLockState:
    """Manager-side view of one lock."""

    manager: int
    holder: int | None = None
    #: Waiters queued at the current holder (handed off on release).
    queue: list[int] = field(default_factory=list)


class ReleaseSystem(DsmSystem):
    """Release (and weak) consistency with a centralized lock manager."""

    name = "release"

    def __init__(self, machine: "DSMMachine") -> None:  # noqa: F821
        super().__init__(machine)
        self._locks: dict[str, _RcLockState] = {}
        self._grant_waits: dict[tuple[str, int], Future] = {}
        #: Outstanding unacknowledged updates per writer node.
        self._outstanding: dict[int, int] = {}
        #: Fired whenever a writer's outstanding count drops to zero.
        self._fences: dict[int, Signal] = {}
        machine.register_kind_handler("rc", self._on_message)
        #: Diagnostics.
        self.updates_sent = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _lock_state(self, lock: str) -> _RcLockState:
        state = self._locks.get(lock)
        if state is None:
            group = self.machine.group_of_lock(lock)
            state = _RcLockState(manager=group.root)
            self._locks[lock] = state
        return state

    def _fence_signal(self, node_id: int) -> Signal:
        signal = self._fences.get(node_id)
        if signal is None:
            signal = Signal(name=f"rc.fence.{node_id}")
            self._fences[node_id] = signal
        return signal

    def _send(self, src: int, dst: int, kind: str, payload: Any) -> None:
        self.machine.network.send(
            Message(
                src=src,
                dst=dst,
                kind=kind,
                payload=payload,
                size_bytes=self.machine.params.packet_bytes,
            )
        )

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    def _propagate(self, node: NodeHandle, var: str, value: Any) -> None:
        """Cache-update multicast with acknowledgements."""
        node.store.write(var, value)
        group = node.iface.group_of(var)
        size = group.wire_bytes(var, self.machine.params.packet_bytes)
        for member in group.members:
            if member == node.id:
                continue
            self._outstanding[node.id] = self._outstanding.get(node.id, 0) + 1
            self.updates_sent += 1
            self.machine.network.send(
                Message(
                    src=node.id,
                    dst=member,
                    kind="rc.update",
                    payload=(var, value, node.id),
                    size_bytes=size,
                )
            )

    def read(self, node: NodeHandle, var: str) -> Generator[Any, Any, Any]:
        return node.store.read(var)
        yield  # pragma: no cover - marks this function as a generator

    def write(
        self, node: NodeHandle, var: str, value: Any
    ) -> Generator[Any, Any, None]:
        self._propagate(node, var, value)
        return
        yield  # pragma: no cover - marks this function as a generator

    def wait_value(
        self,
        node: NodeHandle,
        var: str,
        predicate: Callable[[Any], bool],
    ) -> Generator[Any, Any, Any]:
        return (yield from node.store.wait_until(var, predicate))

    def section_write(self, node: NodeHandle, var: str, value: Any) -> None:
        self._propagate(node, var, value)

    # ------------------------------------------------------------------
    # Lock protocol
    # ------------------------------------------------------------------

    def acquire(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        state = self._lock_state(lock)
        node.metrics.count("lock.requests")
        future = Future(name=f"rc.grant.{lock}.{node.id}")
        self._grant_waits[(lock, node.id)] = future
        self._send(node.id, state.manager, "rc.lock_req", payload=(lock, node.id))
        yield future
        node.metrics.count("lock.acquired")

    def release(self, node: NodeHandle, lock: str) -> Generator[Any, Any, None]:
        """Fence on update acks, then hand the lock off."""
        while self._outstanding.get(node.id, 0) > 0:
            yield self._fence_signal(node.id)
        node.metrics.count("lock.released")
        state = self._lock_state(lock)
        if state.holder != node.id:
            raise LockStateError(
                f"node {node.id} released {lock!r} but holder is {state.holder}"
            )
        if state.queue:
            next_holder = state.queue.pop(0)
            state.holder = next_holder
            self._send(node.id, next_holder, "rc.grant", payload=lock)
        else:
            state.holder = None
            self._send(node.id, state.manager, "rc.release", payload=lock)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _on_message(self, node_id: int, msg: Message) -> None:
        if msg.kind == "rc.update":
            var, value, writer = msg.payload
            self.machine.nodes[node_id].store.write(var, value)
            self._send(node_id, writer, "rc.ack", payload=None)
        elif msg.kind == "rc.ack":
            remaining = self._outstanding.get(node_id, 0) - 1
            if remaining < 0:
                raise LockStateError(f"node {node_id} got a stray update ack")
            self._outstanding[node_id] = remaining
            if remaining == 0:
                self._fence_signal(node_id).fire(None)
        elif msg.kind == "rc.lock_req":
            lock, requester = msg.payload
            state = self._lock_state(lock)
            if state.manager != node_id:
                raise LockStateError(f"lock request for {lock!r} at non-manager")
            if state.holder is None:
                state.holder = requester
                self._send(node_id, requester, "rc.grant", payload=lock)
            else:
                self._send(
                    node_id, state.holder, "rc.lock_fwd", payload=(lock, requester)
                )
        elif msg.kind == "rc.lock_fwd":
            lock, requester = msg.payload
            state = self._lock_state(lock)
            if state.holder == node_id:
                state.queue.append(requester)
            else:
                # Holder changed while the forward was in flight; bounce
                # the request back through the manager.
                self._send(node_id, state.manager, "rc.lock_req", payload=(lock, requester))
        elif msg.kind == "rc.grant":
            lock = msg.payload
            waiter = self._grant_waits.pop((lock, node_id), None)
            if waiter is None:
                raise LockStateError(f"grant for {lock!r} at {node_id} had no waiter")
            waiter.resolve(None)
        elif msg.kind == "rc.release":
            lock = msg.payload
            state = self._lock_state(lock)
            # A release racing a forward: the manager re-dispatches any
            # requester the old holder could not serve.
            if state.holder is None and state.queue:
                requester = state.queue.pop(0)
                state.holder = requester
                self._send(node_id, requester, "rc.grant", payload=lock)
        else:
            raise LockStateError(f"unknown release-consistency message {msg.kind!r}")


register_system("release", ReleaseSystem)
register_system("weak", ReleaseSystem)
