"""repro — Optimistic Synchronization in Distributed Shared Memory.

A faithful, simulation-based reproduction of Hermannsson & Wittie,
"Optimistic Synchronization in Distributed Shared Memory" (ICDCS 1994):
group write consistency with eagersharing, queue-based GWC locks, the
optimistic mutual-exclusion protocol with rollback, and the entry- and
weak/release-consistency comparators the paper evaluates against.

Quickstart::

    from repro import DSMMachine, Section, make_system

    machine = DSMMachine(n_nodes=4)
    machine.create_group("g")
    machine.declare_variable("g", "counter", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("counter",))
    system = make_system("gwc_optimistic", machine)

    def increment(ctx):
        value = ctx.read("counter")
        yield from ctx.compute(1e-6)
        if ctx.aborted:
            return
        ctx.write("counter", value + 1)

    section = Section(lock="L", body=increment,
                      shared_reads=("counter",), shared_writes=("counter",))

    def worker(node):
        yield from system.run_section(node, section)

    for node in machine.nodes:
        machine.spawn(worker(node), name=f"worker-{node.id}")
    machine.run()
    assert machine.nodes[0].store.read("counter") == 4
"""

from repro.consistency.base import DsmSystem, make_system, system_names
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext, SectionOutcome
from repro.errors import ReproError
from repro.locks.history import UsageHistory
from repro.memory.varspace import FREE_VALUE, grant_value, request_value
from repro.params import PAPER_PARAMS, MachineParams

__version__ = "1.0.0"

__all__ = [
    "DSMMachine",
    "DsmSystem",
    "FREE_VALUE",
    "MachineParams",
    "MutualExclusionChecker",
    "NodeHandle",
    "PAPER_PARAMS",
    "ReproError",
    "Section",
    "SectionContext",
    "SectionOutcome",
    "UsageHistory",
    "__version__",
    "grant_value",
    "make_system",
    "request_value",
    "system_names",
]
