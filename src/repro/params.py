"""Machine and network cost parameters.

The paper (Section 4.1) evaluates on simulated machines with:

* a peak computation speed of **33 MFLOPS** per processor,
* a local memory bandwidth of **400 MB/s**,
* a **square mesh torus** network where each data-sharing hop takes
  **200 ns**, and
* **1 gigabit/sec** point-to-point fibre links.

:class:`MachineParams` captures those constants and converts abstract work
amounts (floating-point operations, bytes) into simulated seconds.  All
timing in the library flows through this one object so experiments can vary
the cost model in a single place.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ExperimentError

#: Number of bits in a byte, used to convert link bandwidth.
_BITS_PER_BYTE = 8.0

#: Size in bytes of one sharing/control packet header.  The paper's
#: hardware shares individual variable values; we model a word of header
#: (routing, sequencing, group id) to which each variable's declared
#: payload size is added on the wire.
DEFAULT_PACKET_BYTES = 16


@dataclass(frozen=True, slots=True)
class MachineParams:
    """Cost model for processors, memories, and the interconnect.

    Attributes:
        cpu_flops: Peak processor speed in floating-point ops per second.
        memory_bandwidth: Local memory bandwidth in bytes per second.
        hop_latency: Switching/propagation latency per network hop, seconds.
        link_bandwidth_bits: Point-to-point link bandwidth in bits/second.
        packet_bytes: Size of one sharing packet in bytes.
    """

    cpu_flops: float = 33e6
    memory_bandwidth: float = 400e6
    hop_latency: float = 200e-9
    link_bandwidth_bits: float = 1e9
    packet_bytes: int = DEFAULT_PACKET_BYTES
    #: Per-message processing time at a node's sharing interface.  The
    #: default 0 models the paper's infinitely fast interface hardware;
    #: setting it positive serializes each node's inbound traffic, which
    #: is what makes an overloaded global root measurable ("combining
    #: overlapping groups into one global group can prevent scaling in
    #: large networks by overloading the global root").
    interface_service_time: float = 0.0
    #: Write-burst combining at the sharing interface (the Sesame
    #: hardware transmits *groups* of writes atomically — that is what
    #: Group Write Consistency means).  ``1`` (the default) forwards
    #: every eagerly shared write to the group root as its own update
    #: packet, exactly the behaviour all paper figures were calibrated
    #: against.  ``k > 1`` accumulates up to ``k`` consecutive plain
    #: writes per group into one multi-write update flushed at the
    #: burst size or at any synchronization boundary (lock traffic,
    #: atomic exchange, insharing suspension, epoch change, value
    #: waits).  ``0`` means unbounded: flush only at boundaries.
    write_burst: int = 1

    def __post_init__(self) -> None:
        if self.cpu_flops <= 0:
            raise ExperimentError(f"cpu_flops must be positive: {self.cpu_flops}")
        if self.memory_bandwidth <= 0:
            raise ExperimentError(
                f"memory_bandwidth must be positive: {self.memory_bandwidth}"
            )
        if self.hop_latency < 0:
            raise ExperimentError(f"hop_latency must be >= 0: {self.hop_latency}")
        if self.link_bandwidth_bits <= 0:
            raise ExperimentError(
                f"link_bandwidth_bits must be positive: {self.link_bandwidth_bits}"
            )
        if self.packet_bytes <= 0:
            raise ExperimentError(f"packet_bytes must be positive: {self.packet_bytes}")
        if self.interface_service_time < 0:
            raise ExperimentError(
                f"interface_service_time must be >= 0: {self.interface_service_time}"
            )
        if self.write_burst < 0:
            raise ExperimentError(
                f"write_burst must be >= 0 (0 = unbounded): {self.write_burst}"
            )

    @property
    def link_bandwidth(self) -> float:
        """Link bandwidth in bytes per second."""
        return self.link_bandwidth_bits / _BITS_PER_BYTE

    def compute_time(self, flops: float) -> float:
        """Simulated seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ExperimentError(f"flops must be >= 0: {flops}")
        return flops / self.cpu_flops

    def memory_time(self, nbytes: float) -> float:
        """Simulated seconds to move ``nbytes`` through local memory."""
        if nbytes < 0:
            raise ExperimentError(f"nbytes must be >= 0: {nbytes}")
        return nbytes / self.memory_bandwidth

    def wire_time(self, nbytes: float, hops: int) -> float:
        """Simulated seconds for ``nbytes`` to cross ``hops`` network hops.

        The cost is the per-hop switching latency for every hop plus the
        serialization time of the payload on one link (cut-through routing:
        the payload is only serialized once, while header latency is paid
        per hop, which is how the paper's 200 ns/hop figure composes with a
        1 Gb/s link).
        """
        if hops < 0:
            raise ExperimentError(f"hops must be >= 0: {hops}")
        if nbytes < 0:
            raise ExperimentError(f"nbytes must be >= 0: {nbytes}")
        return hops * self.hop_latency + nbytes / self.link_bandwidth

    def packet_time(self, hops: int) -> float:
        """Simulated seconds for one sharing packet to cross ``hops`` hops."""
        return self.wire_time(self.packet_bytes, hops)

    def zero_delay(self) -> "MachineParams":
        """A copy of these parameters with all network delays removed.

        Used to compute the paper's "maximum speedup possible if network
        delays were zero" reference lines (tops of Figures 2 and 8).
        """
        return replace(
            self,
            hop_latency=0.0,
            link_bandwidth_bits=float("inf"),
        )


#: The parameter set used throughout the paper's evaluation.
PAPER_PARAMS = MachineParams()
