"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro reproduce [--full]   # every artefact + pass/fail digest
    python -m repro figure1 [--update-us F] [--delay-us F]
    python -m repro figure2 [--full] [--sizes 3,5,9] [--tasks N] [--chart]
    python -m repro figure8 [--full] [--sizes 2,4,8] [--data N] [--chart]
    python -m repro figure7
    python -m repro ablations
    python -m repro grouping [--sizes 8,16,32]
    python -m repro systems          # list registered consistency systems

Every command prints the same rows/series the paper's figure reports,
followed by the qualitative expectation checklist.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.consistency.base import system_names
from repro.experiments import figure1, figure2, figure8
from repro.experiments.ablation import (
    render_shootout,
    render_threshold,
    run_echo_blocking_ablation,
    run_lock_primitive_shootout,
    run_lock_protocol_shootout,
    run_threshold_sweep,
)
from repro.metrics.report import format_table


def _parse_sizes(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for sweep points (default: $REPRO_JOBS, "
            "else serial); results are identical at any job count"
        ),
    )


def _cmd_figure1(args: argparse.Namespace) -> int:
    rows = figure1.run_figure1(
        update_time=args.update_us * 1e-6, cpu2_delay=args.delay_us * 1e-6
    )
    print(figure1.render(rows))
    print()
    checks = figure1.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    if args.sizes:
        sizes = _parse_sizes(args.sizes)
    elif args.full:
        sizes = (3, 5, 9, 17, 33, 65, 129)
    else:
        sizes = (3, 5, 9, 17)
    tasks = args.tasks or (1024 if args.full else 128)
    rows = figure2.run_figure2(sizes=sizes, total_tasks=tasks, jobs=args.jobs)
    print(figure2.render(rows))
    if args.chart:
        print()
        print(figure2.chart(rows))
    print()
    checks = figure2.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_figure8(args: argparse.Namespace) -> int:
    if args.sizes:
        sizes = _parse_sizes(args.sizes)
    elif args.full:
        sizes = (2, 4, 8, 16, 32, 64, 128)
    else:
        sizes = (2, 4, 8, 16)
    data = args.data or (1024 if args.full else 128)
    rows = figure8.run_figure8(sizes=sizes, data_size=data, jobs=args.jobs)
    print(figure8.render(rows))
    if args.chart:
        print()
        print(figure8.chart(rows))
    print()
    checks = figure8.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_figure7(args: argparse.Namespace) -> int:
    from repro.workloads.scenarios import Figure7Config, run_figure7

    result = run_figure7(Figure7Config())
    extra = result.extra
    print(
        format_table(
            ["event", "value"],
            [
                ["requester rolled back", extra["requester_rolled_back"]],
                ["stale echoes dropped (Fig. 6)", extra["echoes_dropped"]],
                ["speculative root discards", extra["root_discards"]],
                ["all nodes converged", extra["converged"]],
            ],
            title="Figure 7: the most complex rollback interaction",
        )
    )
    return 0 if extra["converged"] and extra["requester_rolled_back"] else 1


def _cmd_ablations(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", None)
    print(
        render_threshold(
            run_threshold_sweep(think_times=(15e-6, 50e-6), jobs=jobs)
        )
    )
    print()
    print(render_shootout(run_lock_protocol_shootout(jobs=jobs)))
    print()
    print(render_shootout(run_lock_primitive_shootout(jobs=jobs)))
    print()
    with_filter, without_filter = run_echo_blocking_ablation()
    print(
        format_table(
            ["echo blocking", "correct", "chain intact"],
            [
                ["on", with_filter.extra["correct"], with_filter.extra["chain_ok"]],
                [
                    "off",
                    without_filter.extra["correct"],
                    without_filter.extra["chain_ok"],
                ],
            ],
            title="Ablation A2: hardware blocking filter",
        )
    )
    return 0


def _cmd_grouping(args: argparse.Namespace) -> int:
    from repro.experiments.grouping import render, run_grouping_sweep

    sizes = _parse_sizes(args.sizes) if args.sizes else (8, 16, 32)
    rows = run_grouping_sweep(sizes=sizes)
    print(render(rows))
    return 0 if all(row.slowdown > 1.0 for row in rows) else 1


def _cmd_systems(args: argparse.Namespace) -> int:
    for name in system_names():
        print(name)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate every paper artefact in one go and print a digest."""
    failures = 0
    banner = "=" * 68

    print(banner)
    print("FIGURE 1 — locking comparison (3 CPUs)")
    print(banner)
    rows1 = figure1.run_figure1()
    print(figure1.render(rows1))
    checks = figure1.expectations(rows1)
    failures += sum(not c.holds for c in checks)
    for check in checks:
        print(check)

    print()
    print(banner)
    print("FIGURE 2 — task-management speedup")
    print(banner)
    sizes2 = (3, 5, 9, 17, 33, 65, 129) if args.full else (3, 5, 9, 17)
    tasks = 1024 if args.full else 128
    rows2 = figure2.run_figure2(sizes=sizes2, total_tasks=tasks, jobs=args.jobs)
    print(figure2.render(rows2))
    print(figure2.chart(rows2))
    checks = figure2.expectations(rows2)
    failures += sum(not c.holds for c in checks)
    for check in checks:
        print(check)

    print()
    print(banner)
    print("FIGURE 8 — mutex methods on the pipeline")
    print(banner)
    sizes8 = (2, 4, 8, 16, 32, 64, 128) if args.full else (2, 4, 8, 16)
    data = 1024 if args.full else 128
    rows8 = figure8.run_figure8(sizes=sizes8, data_size=data, jobs=args.jobs)
    print(figure8.render(rows8))
    print(figure8.chart(rows8))
    checks = figure8.expectations(rows8)
    failures += sum(not c.holds for c in checks)
    for check in checks:
        print(check)

    print()
    print(banner)
    print("FIGURE 7 — rollback interaction")
    print(banner)
    failures += _cmd_figure7(args)

    print()
    print(banner)
    print("ABLATIONS")
    print(banner)
    _cmd_ablations(args)

    print()
    if failures:
        print(f"REPRODUCTION DIGEST: {failures} expectation(s) FAILED")
        return 1
    print("REPRODUCTION DIGEST: every paper expectation held")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Optimistic Synchronization in Distributed Shared "
            "Memory' (Hermannsson & Wittie, ICDCS 1994)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("figure1", help="3-CPU locking comparison")
    p1.add_argument("--update-us", type=float, default=4.0)
    p1.add_argument("--delay-us", type=float, default=10.0)
    p1.set_defaults(fn=_cmd_figure1)

    p2 = sub.add_parser("figure2", help="task-management speedup sweep")
    p2.add_argument("--full", action="store_true", help="paper scale")
    p2.add_argument("--sizes", type=str, default="")
    p2.add_argument("--tasks", type=int, default=0)
    p2.add_argument("--chart", action="store_true", help="draw an ASCII chart")
    _add_jobs(p2)
    p2.set_defaults(fn=_cmd_figure2)

    p8 = sub.add_parser("figure8", help="mutex methods on the pipeline")
    p8.add_argument("--full", action="store_true", help="paper scale")
    p8.add_argument("--sizes", type=str, default="")
    p8.add_argument("--data", type=int, default=0)
    p8.add_argument("--chart", action="store_true", help="draw an ASCII chart")
    _add_jobs(p8)
    p8.set_defaults(fn=_cmd_figure8)

    p7 = sub.add_parser("figure7", help="rollback interaction scenario")
    p7.set_defaults(fn=_cmd_figure7)

    pa = sub.add_parser("ablations", help="threshold / filter / protocol ablations")
    _add_jobs(pa)
    pa.set_defaults(fn=_cmd_ablations)

    pg = sub.add_parser(
        "grouping", help="per-group roots vs one global root (section 1.2)"
    )
    pg.add_argument("--sizes", type=str, default="")
    pg.set_defaults(fn=_cmd_grouping)

    ps = sub.add_parser("systems", help="list consistency systems")
    ps.set_defaults(fn=_cmd_systems)

    pr = sub.add_parser(
        "reproduce", help="regenerate every paper artefact and print a digest"
    )
    pr.add_argument("--full", action="store_true", help="paper scale")
    _add_jobs(pr)
    pr.set_defaults(fn=_cmd_reproduce)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
