"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro reproduce [--full]   # every artefact + pass/fail digest
    python -m repro figure1 [--update-us F] [--delay-us F]
    python -m repro figure2 [--full] [--sizes 3,5,9] [--tasks N] [--chart]
    python -m repro figure8 [--full] [--sizes 2,4,8] [--data N] [--chart]
    python -m repro figure7
    python -m repro ablations
    python -m repro grouping [--sizes 8,16,32]
    python -m repro systems          # list registered consistency systems
    python -m repro burst [--sizes 1,2,4,8,0] [--nodes N] [--csv F]
    python -m repro chaos [--smoke] [--scenario crash_holder|...|mixed]
                          [--systems gwc,...] [--seeds N] [--csv F]
    python -m repro campaign [--smoke] [--trials N] [--seed S]
                          [--profile churn|...|all] [--bundle-dir D] [--csv F]
    python -m repro verify-goldens [--only figure2,chaos] [--dir D]
    python -m repro update-goldens   # needs REPRO_REGEN_GOLDENS=1

Exit codes are uniform across commands: 0 = clean, 1 = a check failed
(expectation miss, chaos stall/invariant, golden drift), 2 = usage
error (unknown scenario/system/surface, missing kill-switch).

Every command prints the same rows/series the paper's figure reports,
followed by the qualitative expectation checklist.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.consistency.base import system_names
from repro.experiments import figure1, figure2, figure8
from repro.experiments.ablation import (
    render_shootout,
    render_threshold,
    run_echo_blocking_ablation,
    run_lock_primitive_shootout,
    run_lock_protocol_shootout,
    run_threshold_sweep,
)
from repro.metrics.report import format_table


def _parse_sizes(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for sweep points (default: $REPRO_JOBS, "
            "else serial); results are identical at any job count"
        ),
    )


def _add_shards(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run GWC-family points under the sharded kernel with N "
            "shards (default: $REPRO_SHARDS, else serial); final state "
            "is bit-identical at any shard count"
        ),
    )
    parser.add_argument(
        "--shard-policy",
        choices=("optimistic", "conservative"),
        default="optimistic",
        help="shard sync policy: Time Warp rollback or lookahead windows",
    )
    parser.add_argument(
        "--shard-backend",
        choices=("inproc", "process"),
        default=None,
        help=(
            "shard execution backend: cooperative in-process loops or one "
            "forked worker per shard (default: $REPRO_SHARD_BACKEND, else "
            "inproc); state hashes are bit-identical either way"
        ),
    )


def _cmd_figure1(args: argparse.Namespace) -> int:
    rows = figure1.run_figure1(
        update_time=args.update_us * 1e-6, cpu2_delay=args.delay_us * 1e-6
    )
    print(figure1.render(rows))
    print()
    checks = figure1.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    if args.sizes:
        sizes = _parse_sizes(args.sizes)
    elif args.full:
        sizes = (3, 5, 9, 17, 33, 65, 129)
    else:
        sizes = (3, 5, 9, 17)
    tasks = args.tasks or (1024 if args.full else 128)
    rows = figure2.run_figure2(
        sizes=sizes,
        total_tasks=tasks,
        jobs=args.jobs,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_backend=args.shard_backend,
    )
    print(figure2.render(rows))
    if args.chart:
        print()
        print(figure2.chart(rows))
    print()
    checks = figure2.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_figure8(args: argparse.Namespace) -> int:
    if args.sizes:
        sizes = _parse_sizes(args.sizes)
    elif args.full:
        sizes = (2, 4, 8, 16, 32, 64, 128)
    else:
        sizes = (2, 4, 8, 16)
    data = args.data or (1024 if args.full else 128)
    rows = figure8.run_figure8(
        sizes=sizes,
        data_size=data,
        jobs=args.jobs,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_backend=args.shard_backend,
    )
    print(figure8.render(rows))
    if args.chart:
        print()
        print(figure8.chart(rows))
    print()
    checks = figure8.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_shard_smoke(args: argparse.Namespace) -> int:
    """Shard-parity smoke: quick figure2/figure8 points, hash vs serial."""
    from repro.workloads.pipeline import PipelineConfig, run_pipeline
    from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

    from repro.experiments.runner import default_shard_backend

    shards = args.shards or 2
    backend = args.shard_backend or default_shard_backend()
    failures = 0
    print(f"shard-parity smoke ({shards} shards, {backend} backend, vs serial):")
    for n_nodes in (3, 5, 9):
        serial = run_task_queue(
            TaskQueueConfig(system="gwc", n_nodes=n_nodes, total_tasks=32)
        )
        for policy in ("optimistic", "conservative"):
            sharded = run_task_queue(
                TaskQueueConfig(
                    system="gwc",
                    n_nodes=n_nodes,
                    total_tasks=32,
                    shards=shards,
                    shard_policy=policy,
                    shard_backend=backend,
                )
            )
            ok = sharded.extra["state_hash"] == serial.extra["state_hash"]
            failures += not ok
            stats = sharded.extra.get("shard_stats", {})
            print(
                f"  figure2 n={n_nodes:<2d} {policy:<12s} "
                f"{'OK  ' if ok else 'FAIL'} "
                f"backend={sharded.extra.get('shard_backend', 'serial')} "
                f"rollbacks={stats.get('rollbacks', 0)} "
                f"routed={stats.get('routed', 0)}"
            )
    serial = run_pipeline(
        PipelineConfig(system="gwc_optimistic", n_nodes=8, data_size=64)
    )
    for policy in ("optimistic", "conservative"):
        sharded = run_pipeline(
            PipelineConfig(
                system="gwc_optimistic",
                n_nodes=8,
                data_size=64,
                shards=shards,
                shard_policy=policy,
                shard_backend=backend,
            )
        )
        ok = sharded.extra["state_hash"] == serial.extra["state_hash"]
        failures += not ok
        stats = sharded.extra.get("shard_stats", {})
        print(
            f"  figure8 n=8  {policy:<12s} "
            f"{'OK  ' if ok else 'FAIL'} "
            f"backend={sharded.extra.get('shard_backend', 'serial')} "
            f"rollbacks={stats.get('rollbacks', 0)} "
            f"routed={stats.get('routed', 0)}"
        )
    print("PARITY OK" if failures == 0 else f"PARITY FAILED ({failures})")
    return 0 if failures == 0 else 1


def _cmd_rootshard(args: argparse.Namespace) -> int:
    """Sharded-root sweep: serial-vs-sharded parity + per-root load."""
    from repro.experiments import rootshard

    if args.sizes:
        sizes = _parse_sizes(args.sizes)
    elif args.full:
        sizes = (16, 64, 256, 1024)
    else:
        sizes = (16, 64, 128)
    fanout = None if args.fanout == 0 else args.fanout
    rows = rootshard.run_rootshard_sweep(
        sizes=sizes,
        roots=args.roots,
        fanout=fanout,
        seed=args.seed,
        rebalance=not args.no_rebalance,
        jobs=args.jobs,
    )
    print(rootshard.render(rows))
    print()
    for row in rows:
        if row.load_after:
            print(
                f"  n={row.n_nodes}: per-root load after re-partition "
                f"{row.load_after} (before fence: {row.load_before})"
            )
    print()
    checks = rootshard.expectations(rows)
    for check in checks:
        print(check)
    return 0 if all(c.holds for c in checks) else 1


def _cmd_sharded_root_smoke(args: argparse.Namespace) -> int:
    """Sharded-root parity smoke: every layout must match serial."""
    from repro.experiments.rootshard import MAX_OVER_MEAN_BAR, point_config
    from repro.params import PAPER_PARAMS
    from repro.workloads.rootshard import run_rootshard

    failures = 0
    print("sharded-root smoke (semantic parity vs single-root serial):")
    for n_nodes, seed, topology in (
        (16, 0, "mesh_torus"),
        (24, 1, "ring"),
    ):
        serial = run_rootshard(
            point_config(
                n_nodes, 1, None, seed, topology, PAPER_PARAMS,
                rebalance=False,
            )
        )
        for roots, fanout, rebalance in (
            (2, None, False),
            (4, None, False),
            (4, 3, False),
            (4, 3, True),
        ):
            result = run_rootshard(
                point_config(
                    n_nodes, roots, fanout, seed, topology, PAPER_PARAMS,
                    rebalance=rebalance,
                )
            )
            ok = (
                result.extra["shared_hash"] == serial.extra["shared_hash"]
                and result.extra["correct"]
            )
            ratio = result.extra["max_over_mean_after"]
            if rebalance and (ratio is None or ratio > MAX_OVER_MEAN_BAR):
                ok = False
            failures += not ok
            detail = (
                f"max/mean={ratio:.2f} "
                f"moves={len(result.extra['migration_moves'] or {})}"
                if rebalance and ratio is not None
                else f"load={result.extra['load_total']}"
            )
            print(
                f"  {topology:<10s} n={n_nodes:<3d} roots={roots} "
                f"fanout={fanout if fanout is not None else '-'} "
                f"rebalance={'y' if rebalance else 'n'} "
                f"{'OK  ' if ok else 'FAIL'} {detail}"
            )
    print("PARITY OK" if failures == 0 else f"PARITY FAILED ({failures})")
    return 0 if failures == 0 else 1


def _cmd_figure7(args: argparse.Namespace) -> int:
    from repro.workloads.scenarios import Figure7Config, run_figure7

    result = run_figure7(Figure7Config())
    extra = result.extra
    print(
        format_table(
            ["event", "value"],
            [
                ["requester rolled back", extra["requester_rolled_back"]],
                ["stale echoes dropped (Fig. 6)", extra["echoes_dropped"]],
                ["speculative root discards", extra["root_discards"]],
                ["all nodes converged", extra["converged"]],
            ],
            title="Figure 7: the most complex rollback interaction",
        )
    )
    return 0 if extra["converged"] and extra["requester_rolled_back"] else 1


def _cmd_ablations(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", None)
    print(
        render_threshold(
            run_threshold_sweep(think_times=(15e-6, 50e-6), jobs=jobs)
        )
    )
    print()
    print(render_shootout(run_lock_protocol_shootout(jobs=jobs)))
    print()
    print(render_shootout(run_lock_primitive_shootout(jobs=jobs)))
    print()
    with_filter, without_filter = run_echo_blocking_ablation()
    print(
        format_table(
            ["echo blocking", "correct", "chain intact"],
            [
                ["on", with_filter.extra["correct"], with_filter.extra["chain_ok"]],
                [
                    "off",
                    without_filter.extra["correct"],
                    without_filter.extra["chain_ok"],
                ],
            ],
            title="Ablation A2: hardware blocking filter",
        )
    )
    return 0


def _cmd_grouping(args: argparse.Namespace) -> int:
    from repro.experiments.grouping import render, run_grouping_sweep

    sizes = _parse_sizes(args.sizes) if args.sizes else (8, 16, 32)
    rows = run_grouping_sweep(sizes=sizes)
    print(render(rows))
    return 0 if all(row.slowdown > 1.0 for row in rows) else 1


def _chaos_combos(args: argparse.Namespace) -> list[tuple[str, str, str]]:
    """Expand the chaos flags into (system, workload, scenario) runs."""
    from repro.faults.chaos import GWC_FAMILY, SCENARIOS, SMOKE_MATRIX

    if args.smoke:
        # The fixed, deterministic mini-matrix covering every scenario,
        # both workloads, and a non-GWC system.  Keep it fast: this runs
        # inside the default `make test` (and feeds the chaos goldens).
        return list(SMOKE_MATRIX)
    systems = [name for name in args.systems.split(",") if name]
    combos: list[tuple[str, str, str]] = []
    if args.scenario == "mixed":
        for system in systems:
            scenarios = SCENARIOS if system in GWC_FAMILY else ("delay",)
            for scenario in scenarios:
                if args.workload == "task_queue" and scenario in (
                    "crash_holder",
                    "crash_root",
                    "churn",
                ):
                    continue
                combos.append((system, args.workload, scenario))
    else:
        combos = [(system, args.workload, args.scenario) for system in systems]
    return combos


def _unknown_name(kind: str, value: str, known: Sequence[str]) -> str | None:
    """Shared name validation for chaos and campaign flags.

    Returns the usage-error line (with the full valid-name list) for an
    unknown ``value``, or None when it is valid — so a typo in either
    command produces the same exit-2 diagnostic shape.
    """
    if value in known:
        return None
    return f"unknown {kind} {value!r}; known: {', '.join(known)}"


def _unknown_names(
    kind: str, requested: Sequence[str], known: Sequence[str]
) -> str | None:
    """Plural variant of :func:`_unknown_name` for comma-separated flags."""
    unknown = [name for name in requested if name not in known]
    if not unknown:
        return None
    return (
        f"unknown {kind}(s) {', '.join(unknown)}; known: "
        f"{', '.join(sorted(known))}"
    )


def _chaos_usage_errors(args: argparse.Namespace) -> list[str]:
    """Validate chaos flags; non-empty means a usage error (exit 2)."""
    from repro.faults.chaos import GWC_FAMILY, SCENARIOS

    errors: list[str] = []
    if not args.smoke:
        for line in (
            _unknown_name("scenario", args.scenario, SCENARIOS + ("mixed",)),
            _unknown_name("workload", args.workload, ("counter", "task_queue")),
            _unknown_names(
                "system",
                [name for name in args.systems.split(",") if name],
                system_names(),
            ),
        ):
            if line is not None:
                errors.append(line)
        requested = [name for name in args.systems.split(",") if name]
        if args.scenario != "mixed" and not errors:
            non_gwc = [s for s in requested if s not in GWC_FAMILY]
            if args.scenario != "delay" and non_gwc:
                errors.append(
                    f"scenario {args.scenario!r} needs the GWC-family "
                    f"recovery stack; {', '.join(non_gwc)} only support "
                    "'delay'"
                )
            if args.workload == "task_queue" and args.scenario in (
                "crash_holder",
                "crash_root",
                "churn",
            ):
                errors.append(
                    "crash scenarios are only meaningful on the counter "
                    "workload"
                )
    return errors


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import ChaosConfig, chaos_csv_row, run_chaos
    from repro.metrics.export import write_csv

    usage = _chaos_usage_errors(args)
    if usage:
        for error in usage:
            print(f"chaos: {error}", file=sys.stderr)
        return 2

    combos = _chaos_combos(args)
    seeds = range(args.seed, args.seed + (1 if args.smoke else args.seeds))
    results = []
    for system, workload, scenario in combos:
        for seed in seeds:
            config = ChaosConfig(
                system=system,
                workload=workload,
                scenario=scenario,
                n_nodes=args.nodes,
                ops_per_node=args.ops,
                seed=seed,
                recovery=not args.no_recovery,
                failover=not args.no_failover,
            )
            results.append(run_chaos(config))

    rows = []
    csv_rows = []
    for result in results:
        cfg = result.config
        if result.stall is not None:
            status = "STALL"
        elif result.invariant_errors:
            status = "FAIL"
        else:
            status = "ok"
        recovery_us = (
            f"{1e6 * sum(result.recovery_times) / len(result.recovery_times):.1f}"
            if result.recovery_times
            else "-"
        )
        summary = result.fault_summary
        rows.append(
            [
                cfg.system,
                cfg.workload,
                cfg.scenario,
                cfg.seed,
                status,
                f"{result.final_counter}/{result.chain_length}",
                result.lock_timeouts,
                result.lock_retries,
                summary["lock_reclaims"],
                summary["failovers"],
                recovery_us,
                result.messages,
                result.dropped,
            ]
        )
        csv_rows.append(chaos_csv_row(result))

    print(
        format_table(
            [
                "system",
                "workload",
                "scenario",
                "seed",
                "status",
                "done/chain",
                "timeouts",
                "retries",
                "reclaims",
                "failovers",
                "recovery us",
                "msgs",
                "dropped",
            ],
            rows,
            title="Chaos soak: seeded faults vs the recovery stack",
        )
    )
    failures = [r for r in results if not r.ok]
    for result in failures:
        cfg = result.config
        label = f"{cfg.system}/{cfg.workload}/{cfg.scenario}/seed{cfg.seed}"
        if result.stall is not None:
            print(f"STALL {label}: {result.stall}")
        for error in result.invariant_errors:
            print(f"FAIL  {label}: {error}")
    if args.csv:
        path = write_csv(args.csv, csv_rows)
        print(f"wrote {path}")
    print(
        f"chaos: {len(results) - len(failures)}/{len(results)} run(s) ok"
    )
    return 0 if not failures else 1


def _campaign_usage_errors(args: argparse.Namespace) -> list[str]:
    """Validate campaign flags; non-empty means a usage error (exit 2).

    Shares :func:`_unknown_name` with the chaos command so a typo'd
    profile/workload/system gets the same exit-2 valid-name diagnostic.
    """
    from repro.faults.campaign import PROFILES
    from repro.faults.chaos import GWC_FAMILY

    errors: list[str] = []
    if args.smoke:
        return errors
    requested = [name for name in args.systems.split(",") if name]
    for line in (
        _unknown_name("profile", args.profile, PROFILES + ("all",)),
        _unknown_name("workload", args.workload, ("counter", "task_queue")),
        _unknown_names("system", requested, system_names()),
    ):
        if line is not None:
            errors.append(line)
    if not errors:
        non_gwc = [name for name in requested if name not in GWC_FAMILY]
        if non_gwc:
            errors.append(
                f"campaign trials need the GWC-family recovery stack; "
                f"{', '.join(non_gwc)} not in: {', '.join(GWC_FAMILY)}"
            )
    if args.trials < 1:
        errors.append(f"--trials must be >= 1 (got {args.trials})")
    if args.nodes < 3:
        errors.append(f"--nodes must be >= 3 (got {args.nodes})")
    return errors


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Run a randomized fault campaign with online oracles.

    Exit codes: 0 = every trial clean, 1 = at least one trial failed
    (each failure minimized + bundled when enabled), 2 = usage error.
    """
    from repro.faults.campaign import (
        CampaignConfig,
        run_campaign,
        smoke_config,
    )
    from repro.metrics.export import write_csv

    usage = _campaign_usage_errors(args)
    if usage:
        for error in usage:
            print(f"campaign: {error}", file=sys.stderr)
        return 2

    if args.smoke:
        config = smoke_config()
    else:
        config = CampaignConfig(
            trials=args.trials,
            seed=args.seed,
            profile=args.profile,
            systems=tuple(name for name in args.systems.split(",") if name),
            workload=args.workload,
            n_nodes=args.nodes,
            ops_per_node=args.ops,
            minimize=not args.no_minimize,
            bundle_dir=args.bundle_dir or None,
        )
    campaign = run_campaign(config, out=print)

    rows = []
    for outcome in campaign.outcomes:
        trial = outcome.trial
        detail = outcome.detail
        rows.append(
            [
                trial.index,
                trial.kind,
                trial.profile,
                trial.system if trial.kind == "chaos" else trial.shard_policy,
                trial.topology,
                "ok" if outcome.ok else "FAIL",
                "/".join(outcome.signature) if outcome.signature else "-",
                (
                    f"{len(trial.config.plan.events)}"
                    + (
                        f"->{len(outcome.minimized.plan.events)}"
                        if outcome.minimized is not None
                        else ""
                    )
                    if trial.config is not None and trial.config.plan is not None
                    else "-"
                ),
                detail[:60] if detail else "-",
            ]
        )
    print(
        format_table(
            [
                "trial",
                "kind",
                "profile",
                "system/policy",
                "topology",
                "status",
                "signature",
                "events",
                "detail",
            ],
            rows,
            title="Chaos campaign: seeded random fault plans vs online oracles",
        )
    )
    failures = campaign.failures()
    for outcome in failures:
        label = (
            f"trial {outcome.trial.index} "
            f"({outcome.trial.profile}/{outcome.trial.system}/"
            f"{outcome.trial.topology})"
        )
        print(f"FAIL {label}: {'/'.join(outcome.signature or ())}")
        if outcome.minimized is not None:
            print(
                f"     minimized {outcome.minimized.original_events} -> "
                f"{len(outcome.minimized.plan.events)} event(s) at "
                f"n_nodes={outcome.minimized.n_nodes} "
                f"({outcome.minimized.probes} probe(s))"
            )
        if outcome.bundle_path is not None:
            print(f"     repro bundle: {outcome.bundle_path}")
    if args.csv:
        path = write_csv(args.csv, campaign.rows())
        print(f"wrote {path}")
    total = len(campaign.outcomes)
    print(f"campaign: {total - len(failures)}/{total} trial(s) ok")
    return 0 if not failures else 1


def _cmd_burst(args: argparse.Namespace) -> int:
    from repro.experiments.burst import DEFAULT_SIZES, render, run_burst_sweep
    from repro.metrics.export import write_csv

    sizes = _parse_sizes(args.sizes) if args.sizes else DEFAULT_SIZES
    rows = run_burst_sweep(
        sizes=sizes,
        n_nodes=args.nodes,
        rounds=args.rounds,
        writes_per_round=args.writes,
    )
    print(render(rows))
    print()
    print(
        "every burst size converged to the identical final shared-memory "
        "image (checked in-sweep)"
    )
    if args.csv:
        path = write_csv(args.csv, rows)
        print(f"wrote {path}")
    # Monotone sanity: growing the burst never adds origin->root traffic.
    ordered = sorted(rows, key=lambda r: float("inf") if r.burst == 0 else r.burst)
    monotone = all(
        earlier.origin_messages >= later.origin_messages
        for earlier, later in zip(ordered, ordered[1:])
    )
    return 0 if monotone else 1


def _cmd_systems(args: argparse.Namespace) -> int:
    for name in system_names():
        print(name)
    return 0


def _goldens_only(args: argparse.Namespace) -> tuple[str, ...] | None:
    return tuple(part for part in args.only.split(",") if part) or None


def _cmd_verify_goldens(args: argparse.Namespace) -> int:
    """Drift gate: regenerate every surface, compare to committed goldens.

    Exit codes: 0 clean, 1 drift (with a per-file / per-field report),
    2 usage (unknown surface).
    """
    from repro.goldens.verify import verify_goldens

    return verify_goldens(
        goldens_dir=args.dir or None, only=_goldens_only(args)
    )


def _cmd_update_goldens(args: argparse.Namespace) -> int:
    """Rewrite the committed goldens (REPRO_REGEN_GOLDENS=1 required)."""
    from repro.goldens.verify import update_goldens

    return update_goldens(
        goldens_dir=args.dir or None, only=_goldens_only(args)
    )


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate every paper artefact in one go and print a digest."""
    failures = 0
    banner = "=" * 68

    print(banner)
    print("FIGURE 1 — locking comparison (3 CPUs)")
    print(banner)
    rows1 = figure1.run_figure1()
    print(figure1.render(rows1))
    checks = figure1.expectations(rows1)
    failures += sum(not c.holds for c in checks)
    for check in checks:
        print(check)

    print()
    print(banner)
    print("FIGURE 2 — task-management speedup")
    print(banner)
    sizes2 = (3, 5, 9, 17, 33, 65, 129) if args.full else (3, 5, 9, 17)
    tasks = 1024 if args.full else 128
    rows2 = figure2.run_figure2(sizes=sizes2, total_tasks=tasks, jobs=args.jobs)
    print(figure2.render(rows2))
    print(figure2.chart(rows2))
    checks = figure2.expectations(rows2)
    failures += sum(not c.holds for c in checks)
    for check in checks:
        print(check)

    print()
    print(banner)
    print("FIGURE 8 — mutex methods on the pipeline")
    print(banner)
    sizes8 = (2, 4, 8, 16, 32, 64, 128) if args.full else (2, 4, 8, 16)
    data = 1024 if args.full else 128
    rows8 = figure8.run_figure8(sizes=sizes8, data_size=data, jobs=args.jobs)
    print(figure8.render(rows8))
    print(figure8.chart(rows8))
    checks = figure8.expectations(rows8)
    failures += sum(not c.holds for c in checks)
    for check in checks:
        print(check)

    print()
    print(banner)
    print("FIGURE 7 — rollback interaction")
    print(banner)
    failures += _cmd_figure7(args)

    print()
    print(banner)
    print("ABLATIONS")
    print(banner)
    _cmd_ablations(args)

    print()
    if failures:
        print(f"REPRODUCTION DIGEST: {failures} expectation(s) FAILED")
        return 1
    print("REPRODUCTION DIGEST: every paper expectation held")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Optimistic Synchronization in Distributed Shared "
            "Memory' (Hermannsson & Wittie, ICDCS 1994)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("figure1", help="3-CPU locking comparison")
    p1.add_argument("--update-us", type=float, default=4.0)
    p1.add_argument("--delay-us", type=float, default=10.0)
    p1.set_defaults(fn=_cmd_figure1)

    p2 = sub.add_parser("figure2", help="task-management speedup sweep")
    p2.add_argument("--full", action="store_true", help="paper scale")
    p2.add_argument("--sizes", type=str, default="")
    p2.add_argument("--tasks", type=int, default=0)
    p2.add_argument("--chart", action="store_true", help="draw an ASCII chart")
    _add_shards(p2)
    _add_jobs(p2)
    p2.set_defaults(fn=_cmd_figure2)

    p8 = sub.add_parser("figure8", help="mutex methods on the pipeline")
    p8.add_argument("--full", action="store_true", help="paper scale")
    p8.add_argument("--sizes", type=str, default="")
    p8.add_argument("--data", type=int, default=0)
    p8.add_argument("--chart", action="store_true", help="draw an ASCII chart")
    _add_shards(p8)
    _add_jobs(p8)
    p8.set_defaults(fn=_cmd_figure8)

    p7 = sub.add_parser("figure7", help="rollback interaction scenario")
    p7.set_defaults(fn=_cmd_figure7)

    psm = sub.add_parser(
        "shard-smoke",
        help="shard-parity smoke: sharded state hashes must equal serial",
    )
    psm.add_argument(
        "--shards", type=int, default=2, metavar="N", help="shard count"
    )
    psm.add_argument(
        "--shard-backend",
        choices=("inproc", "process"),
        default=None,
        help="shard execution backend (default: $REPRO_SHARD_BACKEND)",
    )
    psm.set_defaults(fn=_cmd_shard_smoke)

    prs = sub.add_parser(
        "rootshard",
        help="sharded group roots: serial parity + per-root load sweep",
    )
    prs.add_argument("--full", action="store_true", help="sweep up to 1024 CPUs")
    prs.add_argument("--sizes", type=str, default="")
    prs.add_argument(
        "--roots", type=int, default=4, metavar="K",
        help="root partitions per group (default 4)",
    )
    prs.add_argument(
        "--fanout", type=int, default=8, metavar="F",
        help="relay-tree fanout for hierarchical multicast; 0 = direct",
    )
    prs.add_argument("--seed", type=int, default=0)
    prs.add_argument(
        "--no-rebalance", action="store_true",
        help="skip the online re-partition of the injected hot key",
    )
    _add_jobs(prs)
    prs.set_defaults(fn=_cmd_rootshard)

    prsm = sub.add_parser(
        "sharded-root-smoke",
        help="sharded-root parity smoke: every root layout must match serial",
    )
    prsm.set_defaults(fn=_cmd_sharded_root_smoke)

    pa = sub.add_parser("ablations", help="threshold / filter / protocol ablations")
    _add_jobs(pa)
    pa.set_defaults(fn=_cmd_ablations)

    pg = sub.add_parser(
        "grouping", help="per-group roots vs one global root (section 1.2)"
    )
    pg.add_argument("--sizes", type=str, default="")
    pg.set_defaults(fn=_cmd_grouping)

    ps = sub.add_parser("systems", help="list consistency systems")
    ps.set_defaults(fn=_cmd_systems)

    for name, fn, help_text in (
        (
            "verify-goldens",
            _cmd_verify_goldens,
            "drift gate: regenerate artifacts, diff vs committed goldens "
            "(0 clean, 1 drift, 2 usage)",
        ),
        (
            "update-goldens",
            _cmd_update_goldens,
            "rewrite committed goldens (requires REPRO_REGEN_GOLDENS=1)",
        ),
    ):
        pg2 = sub.add_parser(name, help=help_text)
        pg2.add_argument(
            "--only",
            type=str,
            default="",
            metavar="A,B",
            help="comma-separated surface names (default: all)",
        )
        pg2.add_argument(
            "--dir",
            type=str,
            default="",
            metavar="DIR",
            help="goldens tree (default: <repo>/goldens)",
        )
        pg2.set_defaults(fn=fn)

    pb = sub.add_parser(
        "burst", help="write-burst sensitivity: wire messages vs burst size"
    )
    pb.add_argument(
        "--sizes",
        type=str,
        default="",
        help="comma-separated burst sizes, 0 = unbounded (default 1,2,4,8,0)",
    )
    pb.add_argument("--nodes", type=int, default=8)
    pb.add_argument("--rounds", type=int, default=8, help="sync rounds per node")
    pb.add_argument(
        "--writes", type=int, default=16, help="plain writes per node per round"
    )
    pb.add_argument("--csv", type=str, default="", metavar="FILE")
    pb.set_defaults(fn=_cmd_burst)

    pc = sub.add_parser(
        "chaos", help="seeded fault injection against the recovery stack"
    )
    pc.add_argument(
        "--scenario",
        type=str,
        default="mixed",
        help="crash_holder|crash_root|churn|partition|delay|duplicate|mixed"
        " (default)",
    )
    pc.add_argument(
        "--systems",
        type=str,
        default="gwc,gwc_optimistic",
        metavar="A,B",
        help="comma-separated consistency systems (default: GWC family)",
    )
    pc.add_argument(
        "--workload", type=str, default="counter", help="counter|task_queue"
    )
    pc.add_argument("--nodes", type=int, default=6)
    pc.add_argument("--ops", type=int, default=8, help="operations per node")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument(
        "--seeds", type=int, default=1, metavar="N", help="run N seeds from --seed"
    )
    pc.add_argument(
        "--no-recovery",
        action="store_true",
        help="disarm leases/retries (crash scenarios then end in a STALL)",
    )
    pc.add_argument(
        "--no-failover",
        action="store_true",
        help="disarm root re-election (crash_root then ends in a STALL)",
    )
    pc.add_argument(
        "--smoke",
        action="store_true",
        help="fixed deterministic mini-matrix (used by `make chaos-smoke`)",
    )
    pc.add_argument("--csv", type=str, default="", metavar="FILE")
    pc.set_defaults(fn=_cmd_chaos)

    pca = sub.add_parser(
        "campaign",
        help="randomized fault campaign: generated plans, online oracles, "
        "failing-seed minimization",
    )
    pca.add_argument(
        "--trials", type=int, default=25, help="chaos trials to run"
    )
    pca.add_argument("--seed", type=int, default=7)
    pca.add_argument(
        "--profile",
        type=str,
        default="mixed",
        help="churn|splitbrain|rootstorm|wire|mixed|all (default: mixed)",
    )
    pca.add_argument(
        "--systems",
        type=str,
        default="gwc,gwc_optimistic",
        metavar="A,B",
        help="comma-separated GWC-family systems (campaigns need the "
        "recovery stack)",
    )
    pca.add_argument(
        "--workload", type=str, default="counter", help="counter|task_queue"
    )
    pca.add_argument("--nodes", type=int, default=6)
    pca.add_argument("--ops", type=int, default=6, help="operations per node")
    pca.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip delta-debugging failing plans",
    )
    pca.add_argument(
        "--bundle-dir",
        type=str,
        default="",
        metavar="DIR",
        help="write a repro bundle per failing trial under DIR",
    )
    pca.add_argument(
        "--smoke",
        action="store_true",
        help="fixed bounded campaign (used by `make campaign-smoke` and "
        "the campaign golden surface)",
    )
    pca.add_argument("--csv", type=str, default="", metavar="FILE")
    pca.set_defaults(fn=_cmd_campaign)

    pr = sub.add_parser(
        "reproduce", help="regenerate every paper artefact and print a digest"
    )
    pr.add_argument("--full", action="store_true", help="paper scale")
    _add_jobs(pr)
    pr.set_defaults(fn=_cmd_reproduce)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
