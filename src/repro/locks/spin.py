"""Test-and-set and test-and-test-and-set spin locks.

The hardware-primitive baselines the paper cites ([3], [17]): each
acquisition attempt is a remote atomic test-and-set arbitrated at the
group root.  Plain test-and-set retries the remote atomic on every
failure — "in distributed systems repeatedly testing locks produces too
much network traffic" — while test-and-test-and-set spins *locally* on
the eagerly shared lock copy and only goes remote when the copy shows
free, the distributed analogue of spinning in cache.

The spin-lock variable is an ordinary eagershared word (FREE_VALUE when
free, ``node + 1`` when held), not a managed GWC lock: there is no queue
at the root, so fairness is whatever the retry timing produces.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.errors import LockStateError
from repro.locks.rmw import RemoteAtomics
from repro.memory.varspace import FREE_VALUE, grant_value


class TasSpinLock:
    """Plain test-and-set: every attempt is a remote atomic."""

    #: Pause between failed attempts (pure TAS hammers the root; a tiny
    #: pause keeps the simulation finite while preserving the traffic
    #: explosion the paper warns about).
    retry_delay = 0.5e-6

    def __init__(self, var: str, atomics: RemoteAtomics) -> None:
        self.var = var
        self.atomics = atomics
        #: Remote attempts issued (diagnostics: TAS traffic vs TTAS).
        self.attempts = 0

    def acquire(self, node: NodeHandle) -> Generator[Any, Any, None]:
        mine = grant_value(node.id)
        while True:
            self.attempts += 1
            node.metrics.count("spin.remote_attempts")
            old = yield from self.atomics.test_and_set(
                node, self.var, mine, FREE_VALUE
            )
            if old == FREE_VALUE:
                node.metrics.count("lock.acquired")
                return
            yield self.retry_delay

    def release(self, node: NodeHandle) -> Generator[Any, Any, None]:
        if node.store.read(self.var) != grant_value(node.id):
            # The local copy may lag; check the root's view by writing
            # anyway — release is only legal for the holder.
            pass
        node.iface.share_write(self.var, FREE_VALUE)
        node.metrics.count("lock.released")
        return
        yield  # pragma: no cover - marks this function as a generator


class TtasSpinLock(TasSpinLock):
    """Test-and-test-and-set: spin locally, go remote only on free."""

    def acquire(self, node: NodeHandle) -> Generator[Any, Any, None]:
        mine = grant_value(node.id)
        while True:
            # Local spin costs no network traffic at all: eagersharing
            # delivers the release to the local copy.
            yield from node.store.wait_until(self.var, lambda v: v == FREE_VALUE)
            self.attempts += 1
            node.metrics.count("spin.remote_attempts")
            old = yield from self.atomics.test_and_set(
                node, self.var, mine, FREE_VALUE
            )
            if old == FREE_VALUE:
                node.metrics.count("lock.acquired")
                return
            # Lost the race; back to local spinning.


def validate_spin_release(node: NodeHandle, var: str) -> None:
    """Shared sanity check used by tests."""
    value = node.store.read(var)
    if value != FREE_VALUE and value != grant_value(node.id):
        raise LockStateError(
            f"node {node.id} releasing {var!r} but local copy shows {value}"
        )
