"""The MCS software queue lock (Mellor-Crummey & Scott [14]).

The software queue-lock baseline the paper cites: requesters enqueue
themselves with a remote fetch-and-store on the shared tail pointer and
then spin on a *node-local* flag; the predecessor's release writes that
flag, and eagersharing delivers the write, waking exactly one waiter.
Releasing with an empty queue uses compare-and-swap on the tail.

Shared state per lock (all ordinary eagershared words):

* ``<name>.tail``      — 0 when empty, else ``node + 1`` of the last waiter;
* ``<name>.locked.i``  — node *i* spins on this until its predecessor
  clears it;
* ``<name>.next.i``    — node *i*'s successor (0 = none).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.locks.rmw import RemoteAtomics

#: Tail/next encoding for "no node".
NIL = 0


class McsLock:
    """One MCS lock bound to a machine's sharing group."""

    def __init__(
        self,
        name: str,
        group: str,
        machine: "DSMMachine",  # noqa: F821
        atomics: RemoteAtomics,
    ) -> None:
        self.name = name
        self.machine = machine
        self.atomics = atomics
        self.tail_var = f"{name}.tail"
        machine.declare_variable(group, self.tail_var, NIL)
        grp = machine.groups[group]
        self._locked = {}
        self._next = {}
        for node_id in grp.members:
            self._locked[node_id] = f"{name}.locked.{node_id}"
            self._next[node_id] = f"{name}.next.{node_id}"
            machine.declare_variable(group, self._locked[node_id], False)
            machine.declare_variable(group, self._next[node_id], NIL)

    def acquire(self, node: NodeHandle) -> Generator[Any, Any, None]:
        me = node.id + 1
        node.iface.share_write(self._next[node.id], NIL)
        node.iface.share_write(self._locked[node.id], True)
        predecessor = yield from self.atomics.fetch_and_store(
            node, self.tail_var, me
        )
        if predecessor != NIL:
            # Link behind the predecessor, then spin locally until it
            # hands the lock over (the write arrives via eagersharing).
            node.iface.share_write(self._next[predecessor - 1], me)
            yield from node.store.wait_until(
                self._locked[node.id], lambda held: not held
            )
        node.metrics.count("lock.acquired")

    def release(self, node: NodeHandle) -> Generator[Any, Any, None]:
        me = node.id + 1
        successor = node.store.read(self._next[node.id])
        if successor == NIL:
            old = yield from self.atomics.compare_and_swap(
                node, self.tail_var, expected=me, value=NIL
            )
            if old == me:
                node.metrics.count("lock.released")
                return
            # Someone enqueued concurrently; wait for the link to appear.
            successor = yield from node.store.wait_until(
                self._next[node.id], lambda nxt: nxt != NIL
            )
        node.iface.share_write(self._locked[successor - 1], False)
        node.metrics.count("lock.released")
