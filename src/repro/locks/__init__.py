"""Lock protocols.

* :mod:`repro.locks.gwc_lock` — the queue-based GWC lock of Section 2:
  root-side :class:`~repro.locks.gwc_lock.GwcLockManager` plus the
  regular (blocking) client.
* :mod:`repro.locks.optimistic` — the paper's contribution (Section 4):
  the optimistic mutual-exclusion runner with rollback.
* :mod:`repro.locks.history` — the EWMA usage-frequency history that
  gates optimism.
* :mod:`repro.locks.entry_lock` — entry-consistency comparator lock.
* :mod:`repro.locks.release_lock` — weak/release-consistency comparator.
* :mod:`repro.locks.spin` / :mod:`repro.locks.mcs` — classic baselines
  the paper cites (test-and-set family, software queue locks).
"""

from repro.locks.history import UsageHistory
from repro.locks.gwc_lock import GwcLockClient, GwcLockManager

__all__ = [
    "GwcLockClient",
    "GwcLockManager",
    "UsageHistory",
]
