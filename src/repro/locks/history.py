"""Usage-frequency history for optimistic locking.

Section 4 of the paper: *"The history frequency information can, as an
example, be derived from a simple formula such as
``old = 0.95*old + 0.05*new``, where old and new represent usage and 1.0
means 'lock held by another CPU'"*, and the optimistic path is taken only
when the history is below *"a certain threshold (e.g. 0.30)"*.

The history is updated at two points, matching Figure 4 line (05) and
Figure 5 line (P9):

1. on every lock request, from the value the atomic exchange swapped out
   of the local lock copy, and
2. inside the lock-change interrupt when another processor gets the lock.
"""

from __future__ import annotations

from repro.errors import LockError

#: The paper's example decay factor.
DEFAULT_DECAY = 0.95
#: The paper's example optimism threshold.
DEFAULT_THRESHOLD = 0.30

#: Sample meaning "lock held by another CPU".
SAMPLE_BUSY = 1.0
#: Sample meaning "lock appeared free".
SAMPLE_FREE = 0.0


class UsageHistory:
    """Exponentially weighted moving average of observed lock usage."""

    def __init__(
        self,
        decay: float = DEFAULT_DECAY,
        threshold: float = DEFAULT_THRESHOLD,
        initial: float = 0.0,
    ) -> None:
        if not 0.0 <= decay <= 1.0:
            raise LockError(f"decay must be in [0, 1]: {decay}")
        if not 0.0 <= initial <= 1.0:
            raise LockError(f"initial must be in [0, 1]: {initial}")
        self.decay = decay
        self.threshold = threshold
        self.value = initial
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one usage observation into the history; returns the EWMA."""
        if not 0.0 <= sample <= 1.0:
            raise LockError(f"sample must be in [0, 1]: {sample}")
        self.value = self.decay * self.value + (1.0 - self.decay) * sample
        self.samples += 1
        return self.value

    def observe_busy(self) -> float:
        return self.update(SAMPLE_BUSY)

    def observe_free(self) -> float:
        return self.update(SAMPLE_FREE)

    def indicates_usage(self) -> bool:
        """True when the lock has shown too much recent use to speculate."""
        return self.value > self.threshold

    def __repr__(self) -> str:
        return (
            f"UsageHistory(value={self.value:.4f}, "
            f"threshold={self.threshold}, samples={self.samples})"
        )
