"""Mutual exclusion across multiple sharing groups (end of Section 2).

"Mutual exclusion across multiple groups requires permissions from all
the involved roots.  Routing corresponding locking messages and data
changes on the same paths through the roots guarantees a consistent view
of variable updates."

:class:`MultiGroupMutex` acquires one GWC lock per involved group, in a
single canonical order (sorted lock names) so that two processors
needing overlapping group sets can never deadlock.  Releases go in
reverse order.  Each per-group lock is an ordinary Section 2 queue lock
managed by that group's root, so data changes in each group remain
ordered against that group's lock traffic — the "same paths through the
roots" property.

The paper also notes that combining overlapping groups into one global
group "can prevent scaling in large networks by overloading the global
root"; multi-group locking is the scalable alternative for the rare
cross-group sections.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.errors import LockError
from repro.locks.gwc_lock import GwcLockClient


class MultiGroupMutex:
    """Exclusive access spanning several groups' locks."""

    def __init__(self, machine: "DSMMachine", locks: tuple[str, ...]) -> None:  # noqa: F821
        if not locks:
            raise LockError("multi-group mutex needs at least one lock")
        if len(set(locks)) != len(locks):
            raise LockError(f"duplicate locks in {locks}")
        self.machine = machine
        #: Canonical global acquisition order prevents deadlock.
        self.locks = tuple(sorted(locks))
        self._clients = {
            name: GwcLockClient(machine.lock_decl(name)) for name in self.locks
        }
        # Verify the locks really span distinct groups (the pattern's
        # purpose); same-group pairs would work but are pointless.
        self.groups = tuple(
            machine.group_of_lock(name).name for name in self.locks
        )

    def acquire(self, node: NodeHandle) -> Generator[Any, Any, None]:
        """Acquire every involved root's permission, in canonical order."""
        for name in self.locks:
            yield from self._clients[name].acquire(node)
        node.metrics.count("multigroup.acquired")

    def release(self, node: NodeHandle) -> Generator[Any, Any, None]:
        """Release in reverse order (last root granted, first released)."""
        for name in reversed(self.locks):
            yield from self._clients[name].release(node)
        node.metrics.count("multigroup.released")
