"""The single-writer "ordinary variable as lock" pattern of Section 2.

"Since writes are ordered, the case for one writer is simple; an
ordinary variable can lock a data structure awaited by reader(s).  If
code on the writing processor finishes all data updates before unlocking
the variable, all processors will see the same order of changes.  Each
processor can check its local lock to see whether the data is valid.
Relocking while data is being read can trigger rereading to get
consistent data values."

:class:`SingleWriterPublisher` wraps that pattern: the writer *locks*
(marks the structure invalid), updates any number of shared variables,
then *publishes* with a version stamp.  GWC ordering guarantees that a
reader that sees version ``v`` valid also sees every data write that
preceded the publication of ``v``.  Readers use
:class:`SingleWriterReader.snapshot`, which rereads if the writer
relocked mid-read — "eliminating most synchronization penalties when
there is only one writer".
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.errors import LockStateError

#: Value of the validity variable while the writer is updating.
INVALID = -1


class SingleWriterPublisher:
    """Writer side: invalidate, update, publish a new version."""

    def __init__(self, valid_var: str, writer: NodeHandle) -> None:
        self.valid_var = valid_var
        self.writer = writer
        self._version = 0
        self._updating = False

    def begin_update(self) -> None:
        """Mark the structure invalid (the 'relock')."""
        if self._updating:
            raise LockStateError("begin_update while already updating")
        self._updating = True
        self.writer.iface.share_write(self.valid_var, INVALID)

    def write(self, var: str, value: Any) -> None:
        """Update one guarded variable (ordinary eagershared write)."""
        if not self._updating:
            raise LockStateError("write outside begin_update/publish")
        self.writer.iface.share_write(var, value)

    def publish(self) -> int:
        """Finish all updates, then unlock with a new version stamp.

        GWC write ordering makes this safe: the version write follows
        every data write in the global sequence, so any reader that
        observes the new version also observes the data.
        """
        if not self._updating:
            raise LockStateError("publish without begin_update")
        self._updating = False
        self._version += 1
        self.writer.iface.share_write(self.valid_var, self._version)
        return self._version


class SingleWriterReader:
    """Reader side: consistent snapshots without any lock traffic."""

    def __init__(self, valid_var: str, data_vars: tuple[str, ...]) -> None:
        self.valid_var = valid_var
        self.data_vars = data_vars

    def snapshot(
        self, node: NodeHandle, min_version: int = 1
    ) -> Generator[Any, Any, tuple[int, dict[str, Any]]]:
        """Wait for a valid version >= ``min_version`` and read the data.

        If the writer relocks while we are reading, the version check
        fails and we reread — the paper's "relocking while data is being
        read can trigger rereading".
        """
        while True:
            version = yield from node.store.wait_until(
                self.valid_var,
                lambda v: v != INVALID and v >= min_version,
            )
            values = {var: node.store.read(var) for var in self.data_vars}
            # Revalidate: the writer may have invalidated mid-read.
            if node.store.read(self.valid_var) == version:
                return version, values
            node.metrics.count("single_writer.rereads")
