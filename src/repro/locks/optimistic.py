"""Optimistic mutual exclusion — Section 4, Figures 4 and 5 of the paper.

The runner executes one critical section per call, mirroring the
compiler-generated code of Figure 4 line by line:

* (01)       refuse nested re-acquisition;
* (02)-(04)  atomically exchange the local lock copy with the negated
             node id, which also forwards the request to the group root;
* (05)       fold the swapped-out value into the usage-frequency history;
* (06)       arm the lock-change interrupt, atomically coupled with
             insharing suspension (done inside one simulator event);
* (07)       if the local copy, the old value, or the history indicate
             recent use, take the **regular** path: disarm, wait for the
             grant, run the body, release;
* (14)-(16)  otherwise save rollback state and set ``variables_saved``;
* (17)-(18)  run the body speculatively — its shared writes travel to
             the root, which discards them if this node is not (yet) the
             holder;
* (19)       wait for the lock answer;
* (22)-(26)  on conflict, roll back: restore saved values, resume
             insharing, wait for the grant, re-execute the body;
* (27)       release.

The interrupt handler is Figure 5: a grant to this node or a transient
*free* lets execution continue (the free re-arms the interrupt); a grant
to another node records a busy history sample and triggers rollback if
variables were saved, or just a regular wait if not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.core.section import (
    Section,
    SectionContext,
    SectionOutcome,
    restore_from_rollback,
    snapshot_for_rollback,
)
from repro.errors import LockError, LockNestingError
from repro.locks.history import SAMPLE_BUSY, SAMPLE_FREE, UsageHistory
from repro.memory.varspace import (
    FREE_VALUE,
    grant_value,
    holder_of,
    request_value,
    requester_of,
)
from repro.sim.waiters import Future, Signal

#: Verdicts the interrupt handler can deliver to the waiting runner.
_GRANTED = "granted"
_CONFLICT = "conflict"
_CONFLICT_UNSAVED = "conflict_unsaved"

#: ``force`` values accepted by :class:`OptimisticConfig`.
FORCE_OPTIMISTIC = "optimistic"
FORCE_REGULAR = "regular"


#: Wait modes for the blocking (regular / post-rollback) path.
WAIT_SPIN = "spin"
WAIT_SWAP = "swap"


@dataclass(frozen=True, slots=True)
class OptimisticConfig:
    """Tunables for the optimistic protocol.

    Attributes:
        decay: EWMA decay for the usage history (paper example: 0.95).
        threshold: History value above which the regular path is taken
            (paper example: 0.30).
        force: ``"optimistic"`` or ``"regular"`` to override the history
            test for ablation runs; None for the paper's behaviour.
        wait_mode: What a blocked processor does while waiting for its
            grant — ``"spin"`` (busy wait / sleep) or ``"swap"``
            (context-swap to queued background work), the paper's
            "wait or context swap" choice.
        swap_overhead: Context-switch cost per swap, seconds.
    """

    decay: float = 0.95
    threshold: float = 0.30
    force: str | None = None
    wait_mode: str = WAIT_SPIN
    swap_overhead: float = 1e-6

    def __post_init__(self) -> None:
        if self.force not in (None, FORCE_OPTIMISTIC, FORCE_REGULAR):
            raise LockError(f"unknown force mode {self.force!r}")
        if self.wait_mode not in (WAIT_SPIN, WAIT_SWAP):
            raise LockError(f"unknown wait mode {self.wait_mode!r}")
        if self.swap_overhead < 0:
            raise LockError(f"swap_overhead must be >= 0: {self.swap_overhead}")


class OptimisticMutexRunner:
    """Executes critical sections under optimistic mutual exclusion."""

    def __init__(self, system: "OptimisticGwcSystem", config: OptimisticConfig) -> None:  # noqa: F821
        self.system = system
        self.config = config
        self._histories: dict[tuple[int, str], UsageHistory] = {}

    def history(self, node_id: int, lock: str) -> UsageHistory:
        """The per-(node, lock) usage-frequency history."""
        key = (node_id, lock)
        hist = self._histories.get(key)
        if hist is None:
            hist = UsageHistory(
                decay=self.config.decay, threshold=self.config.threshold
            )
            self._histories[key] = hist
        return hist

    @staticmethod
    def _held_by_other(lock_value: Any, node: NodeHandle) -> bool:
        holder = holder_of(lock_value)
        return holder is not None and holder != node.id

    def run_section(
        self, node: NodeHandle, section: Section
    ) -> Generator[Any, Any, SectionOutcome]:
        lock = section.lock
        store, iface, sim = node.store, node.iface, node.sim
        mine = grant_value(node.id)

        # (01) prevent nested re-acquisition: the local copy naming this
        # CPU — as holder or as pending requester — means the section is
        # already being entered ("Cannot safely nest mutex lock requests").
        current = store.read(lock)
        if holder_of(current) == node.id or requester_of(current) == node.id:
            raise LockNestingError(
                f"node {node.id} cannot safely nest mutex requests for {lock!r}"
            )

        history = self.history(node.id, lock)

        # Epoch fencing: active with a failover manager installed or
        # online re-partitioning armed.  A sequencer epoch change voids
        # this request's speculation — the old owner's answer (and any
        # speculative writes it accepted) is fenced out, and the new
        # owner discards old-epoch traffic — so an epoch change is
        # handled exactly like a conflict: roll back and re-run on the
        # regular path.
        fence_group: str | None = None
        entry_epoch = 0
        if self.system.machine.epoch_fencing:
            fence_group = iface.group_of(lock).name
            entry_epoch = iface._epoch[fence_group]

        # (02)-(04) request the lock; atomic with reading the old value.
        old_val = iface.atomic_exchange(lock, request_value(node.id))
        node.metrics.count("lock.requests")

        # (05) usage-frequency history from the swapped-out value.
        history.update(
            SAMPLE_BUSY if self._held_by_other(old_val, node) else SAMPLE_FREE
        )

        # (06) arm interrupt-and-sharing-suspension (Figure 5).
        state: dict[str, Any] = {"saved": False, "grant_seen": None}
        verdict: Future = Future(name=f"n{node.id}.{lock}.verdict")
        abort = Signal(name=f"n{node.id}.{lock}.abort")

        def handler(value: Any) -> None:
            # Insharing is suspended and the interrupt disarmed on entry.
            if (
                fence_group is not None
                and not verdict.resolved
                and iface._epoch[fence_group] != entry_epoch
            ):
                # First lock write under a new sequencer epoch (often the
                # takeover's rebuilt grant): abort the speculation even
                # if the write names this node — accepting a new-epoch
                # grant would commit writes the old root discarded.
                node.metrics.count("opt.epoch_conflicts")
                if state["saved"]:
                    verdict.resolve(_CONFLICT)
                    abort.fire(_CONFLICT)
                else:
                    iface.resume_insharing()
                    verdict.resolve(_CONFLICT_UNSAVED)
                return
            if value == mine:
                state["grant_seen"] = sim.now
                iface.resume_insharing()
                verdict.resolve(_GRANTED)
            elif value == FREE_VALUE:
                # Transient flicker (typically the echo of this node's own
                # previous release): keep speculating.
                node.metrics.count("opt.flickers")
                iface.arm_lock_interrupt(lock, handler)
                iface.resume_insharing()
            else:
                # Another processor got the lock (Figure 5's else branch).
                history.update(SAMPLE_BUSY)
                node.metrics.count("opt.conflicts")
                if state["saved"]:
                    # Stay suspended; the runner performs the rollback.
                    verdict.resolve(_CONFLICT)
                    abort.fire(_CONFLICT)
                else:
                    iface.resume_insharing()
                    verdict.resolve(_CONFLICT_UNSAVED)

        iface.arm_lock_interrupt(lock, handler)

        # (07) does anything indicate current or recent locking?
        local_now = store.read(lock)
        usage = (
            self._held_by_other(local_now, node)
            or self._held_by_other(old_val, node)
            or history.indicates_usage()
        )
        if self.config.force == FORCE_OPTIMISTIC:
            usage = self._held_by_other(local_now, node) or self._held_by_other(
                old_val, node
            )
        elif self.config.force == FORCE_REGULAR:
            usage = True

        if usage:
            # (08)-(12) the regular path.
            node.metrics.count("opt.regular_path")
            iface.disarm_lock_interrupt(lock)
            yield from self._wait_for_grant(node, lock, mine)
            node.metrics.count("lock.acquired")
            outcome = yield from self.system._run_body_held(node, section)
            yield from self.system.release(node, lock)
            return outcome

        # (13)-(16) optimistic: save rollback state.
        node.metrics.count("opt.attempts")
        saved = snapshot_for_rollback(node, section)
        save_cost = node.params.memory_time(section.save_bytes())
        yield from node.busy(save_cost, kind="overhead")

        if verdict.resolved and verdict.value == _CONFLICT_UNSAVED:
            # Another CPU took the lock while we were saving (Figure 5,
            # variables_saved == NO): nothing to roll back, regular wait.
            return (yield from self._finish_after_conflict(node, section, mine))

        state["saved"] = True

        # (17)-(18) speculative body execution.  Shared writes pass
        # through the group root, which discards them if the lock request
        # has not been granted yet.
        ctx = SectionContext(
            node,
            write_through=lambda var, value: self.system.section_write(
                node, var, value
            ),
            abort=abort,
        )
        result = yield from section.body(ctx)

        # (19) wait until the lock answer arrives.
        if not verdict.resolved:
            yield verdict
        answer = verdict.value
        if (
            answer == _GRANTED
            and fence_group is not None
            and iface._epoch[fence_group] != entry_epoch
        ):
            # Granted under the old epoch, then the root failed over
            # before commit: the speculative writes' fate is ambiguous,
            # so take the conflict path (the rebuilt lock table re-grants
            # from this node's own evidence, so the regular re-run
            # proceeds without a new round trip).
            node.metrics.count("opt.epoch_conflicts")
            answer = _CONFLICT

        if answer == _GRANTED:
            # (21) -> (27): speculation succeeded; all computation was
            # useful and already overlapped the lock round-trip.
            node.metrics.add_time("useful", ctx.elapsed, end=sim.now)
            node.metrics.count("opt.successes")
            node.metrics.count("lock.acquired")
            checker = self.system.machine.checker
            if checker is not None:
                # The committed execution serializes at the grant.
                checker.enter(lock, node.id, state["grant_seen"])
                for counter, read_value, written_value in ctx.rmw_observations:
                    checker.observe_rmw(counter, read_value, written_value)
                checker.exit(lock, node.id, sim.now)
            yield from self.system.release(node, lock)
            return SectionOutcome(
                optimistic=True,
                rolled_back=False,
                useful_time=ctx.elapsed,
                result=result,
            )

        # (22)-(26) conflict: roll back and retry on the regular path.
        node.metrics.add_time("wasted", ctx.elapsed, end=sim.now)
        node.metrics.count("opt.rollbacks")
        # Rollback is a synchronization boundary: flush any buffered
        # speculative writes now, while this node is still a non-holder,
        # so the root discards them exactly like unbatched speculation.
        iface.flush_write_bursts()
        restore_cost = node.params.memory_time(section.save_bytes())
        yield from node.busy(restore_cost, kind="overhead")
        restore_from_rollback(node, section, saved)
        iface.resume_insharing()
        wasted = ctx.elapsed
        outcome = yield from self._finish_after_conflict(node, section, mine)
        outcome.rolled_back = True
        outcome.wasted_time = wasted
        return outcome

    def _wait_for_grant(
        self, node: NodeHandle, lock: str, mine: int
    ) -> Generator[Any, Any, Any]:
        """Block until the grant — spinning or context-swapping.

        When the system carries a lock retry policy, the wait instead
        goes through the timed client path (timeout, withdraw, backoff,
        re-request) so the regular path inherits crash and partition
        tolerance; the spin/swap cost model applies only to the
        block-forever protocol.
        """
        if self.system.lock_retry is not None:
            return (yield from self.system._client(lock).await_grant(node))
        if self.config.wait_mode == WAIT_SWAP:
            return (
                yield from node.wait_until_with_swap(
                    lock, lambda v: v == mine, self.config.swap_overhead
                )
            )
        return (yield from node.store.wait_until(lock, lambda v: v == mine))

    def _finish_after_conflict(
        self, node: NodeHandle, section: Section, mine: int
    ) -> Generator[Any, Any, SectionOutcome]:
        """reg-wait, regular body execution, and release."""
        yield from self._wait_for_grant(node, section.lock, mine)
        node.metrics.count("lock.acquired")
        outcome = yield from self.system._run_body_held(node, section)
        outcome.optimistic = True
        yield from self.system.release(node, section.lock)
        return outcome
