"""A sense-reversing central barrier on the eagersharing substrate.

Barriers are the other synchronization workhorse of DSM programs (the
paper's task-management and pipeline examples sidestep them, but any
iterative shared-memory code needs one).  This implementation uses the
machinery the library already provides, in exactly the way Sesame would:

* arrival is one root-arbitrated ``fetch_and_add`` on a shared counter
  (remote atomics, :mod:`repro.locks.rmw`);
* the last arriver flips an eagerly shared *sense* flag, which the
  root's multicast pushes to every member — so waiters spin **locally**
  on their own copy, costing zero network traffic (the eagersharing
  point: "the test variable is immediately sent to all processors
  whenever it changes");
* sense reversal makes the barrier reusable without resetting races.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.errors import LockError
from repro.locks.rmw import RemoteAtomics


class CentralBarrier:
    """A reusable barrier over one sharing group."""

    def __init__(
        self,
        name: str,
        group: str,
        machine: "DSMMachine",  # noqa: F821
        atomics: RemoteAtomics,
        parties: int | None = None,
    ) -> None:
        grp = machine.groups[group]
        self.name = name
        self.parties = parties if parties is not None else len(grp.members)
        if self.parties < 1:
            raise LockError(f"barrier needs at least one party: {self.parties}")
        self.atomics = atomics
        self.count_var = f"{name}.count"
        self.sense_var = f"{name}.sense"
        machine.declare_variable(group, self.count_var, 0)
        machine.declare_variable(group, self.sense_var, False)
        #: Per-node local sense (which flag value means "released").
        self._local_sense: dict[int, bool] = {}

    def wait(self, node: NodeHandle) -> Generator[Any, Any, int]:
        """Arrive and block until all parties have arrived.

        Returns this node's arrival index within the episode (0-based);
        the last arriver gets ``parties - 1`` and released everyone.
        """
        my_sense = not self._local_sense.get(node.id, False)
        self._local_sense[node.id] = my_sense
        arrived = yield from self.atomics.fetch_and_add(node, self.count_var, 1)
        position = arrived % self.parties
        node.metrics.count("barrier.arrivals")
        if position == self.parties - 1:
            # Last arriver: flip the sense; eagersharing releases all.
            node.iface.share_write(self.sense_var, my_sense)
            node.metrics.count("barrier.releases")
        else:
            yield from node.store.wait_until(
                self.sense_var, lambda sense: sense == my_sense
            )
        return position
