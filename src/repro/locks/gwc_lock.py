"""The queue-based GWC lock of Section 2.

Root side — :class:`GwcLockManager`: "The root checks if the lock is
free.  If not free, the processor ID number is queued.  If free, the root
writes the positive processor ID into the lock variable to grant
permission. ... As each processor frees the lock [...] the root checks
whether any nodes are queued awaiting exclusive access.  If so, the next
queued number is written as the new lock value.  If not, the free value
is propagated to all group memories."

The grant multicast is *sequenced after* any data writes the previous
holder sent before its release (FIFO channel into the root, root
sequencing out), which is exactly why "a processor always receives
exclusive access within one or one half round-trip time of the lock being
freed" with "no network traffic except three one-way messages".

Client side — :class:`GwcLockClient`: the regular (non-optimistic)
request path: atomically exchange the local lock copy with the negated
processor id (which also forwards the request to the root) and wait until
the local copy shows this node's positive id.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import LockStateError
from repro.memory.varspace import (
    FREE_VALUE,
    LockDecl,
    grant_value,
    holder_of,
    request_value,
    requester_of,
)


class GwcLockManager:
    """Root-side lock state machine for one lock variable."""

    def __init__(self, decl: LockDecl) -> None:
        self.decl = decl
        self.holder: int | None = None
        self.queue: list[int] = []
        #: Diagnostics.
        self.grants = 0
        self.releases = 0
        self.max_queue = 0

    @property
    def name(self) -> str:
        return self.decl.name

    def holds(self, node: int) -> bool:
        """Does ``node`` currently hold the lock (root's authoritative view)?"""
        return self.holder == node

    def on_write(self, origin: int, value: Any) -> list[int]:
        """Process a lock-variable write arriving at the root.

        Returns the list of lock values the root must now sequence and
        multicast (grants / free propagation), in order.  The caller (the
        group root engine) performs the actual multicasts so they get
        group-global sequence numbers.
        """
        requester = requester_of(value)
        if requester is not None:
            return self._on_request(origin, requester)
        if value == FREE_VALUE:
            return self._on_release(origin)
        granted = holder_of(value)
        raise LockStateError(
            f"lock {self.name!r}: unexpected write {value!r} from node "
            f"{origin} (grant values are root-only, granted={granted})"
        )

    def _on_request(self, origin: int, requester: int) -> list[int]:
        if requester != origin:
            raise LockStateError(
                f"lock {self.name!r}: node {origin} forged a request "
                f"for node {requester}"
            )
        if self.holder is None:
            self.holder = requester
            self.grants += 1
            return [grant_value(requester)]
        if requester == self.holder or requester in self.queue:
            raise LockStateError(
                f"lock {self.name!r}: node {requester} requested twice"
            )
        self.queue.append(requester)
        self.max_queue = max(self.max_queue, len(self.queue))
        return []

    def _on_release(self, origin: int) -> list[int]:
        if self.holder != origin:
            raise LockStateError(
                f"lock {self.name!r}: node {origin} released but holder "
                f"is {self.holder}"
            )
        self.releases += 1
        if self.queue:
            self.holder = self.queue.pop(0)
            self.grants += 1
            return [grant_value(self.holder)]
        self.holder = None
        return [FREE_VALUE]


class GwcLockClient:
    """Regular (blocking, non-optimistic) GWC lock operations for one node.

    Stateless aside from the declaration: all state lives in the node's
    local store (the lock variable copy) and at the root (the manager).
    """

    def __init__(self, decl: LockDecl) -> None:
        self.decl = decl

    def acquire(self, node: "NodeHandle") -> Generator[Any, Any, None]:  # noqa: F821
        """Request the lock and wait for the local copy to show our grant."""
        name = self.decl.name
        mine = grant_value(node.id)
        current = node.store.read(name)
        if holder_of(current) == node.id or requester_of(current) == node.id:
            from repro.errors import LockNestingError

            raise LockNestingError(
                f"node {node.id} cannot safely nest requests for {name!r}"
            )
        node.iface.atomic_exchange(name, request_value(node.id))
        node.metrics.count("lock.requests")
        yield from node.store.wait_until(name, lambda v: v == mine)
        node.metrics.count("lock.acquired")

    def release(self, node: "NodeHandle") -> Generator[Any, Any, None]:  # noqa: F821
        """Free the lock locally; the root forwards it to the next waiter."""
        name = self.decl.name
        if holder_of(node.store.read(name)) != node.id:
            raise LockStateError(
                f"node {node.id} released {name!r} without holding it"
            )
        node.iface.share_write(name, FREE_VALUE)
        node.metrics.count("lock.released")
        return
        yield  # pragma: no cover - marks this function as a generator
