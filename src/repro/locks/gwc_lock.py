"""The queue-based GWC lock of Section 2, plus crash recovery.

Root side — :class:`GwcLockManager`: "The root checks if the lock is
free.  If not free, the processor ID number is queued.  If free, the root
writes the positive processor ID into the lock variable to grant
permission. ... As each processor frees the lock [...] the root checks
whether any nodes are queued awaiting exclusive access.  If so, the next
queued number is written as the new lock value.  If not, the free value
is propagated to all group memories."

The grant multicast is *sequenced after* any data writes the previous
holder sent before its release (FIFO channel into the root, root
sequencing out), which is exactly why "a processor always receives
exclusive access within one or one half round-trip time of the lock being
freed" with "no network traffic except three one-way messages".

Client side — :class:`GwcLockClient`: the regular (non-optimistic)
request path: atomically exchange the local lock copy with the negated
processor id (which also forwards the request to the root) and wait until
the local copy shows this node's positive id.

Recovery extensions (off by default; the strict paper protocol is the
default behaviour):

* **Leases** (:meth:`GwcLockManager.enable_lease`) let the root reclaim
  a lock whose holder crashed mid-critical-section and grant it onward,
  so one dead node does not wedge every waiter.
* **Recovery mode** (:meth:`GwcLockManager.enable_recovery`) relaxes the
  strict state machine for the messages crash recovery makes legal:
  duplicate requests (a timed-out client retrying) are idempotent, and a
  release from a non-holder either cancels that node's queued request or
  is dropped as stale.
* **Timed acquisition** (:class:`LockRetryPolicy` on the client) bounds
  each request with a timeout, retries with seeded exponential backoff
  plus jitter, and raises :class:`~repro.errors.LockTimeoutError` when
  the budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from random import Random
from typing import Any, Callable, Generator

from repro.errors import FaultError, LockStateError, LockTimeoutError
from repro.memory.varspace import (
    FREE_VALUE,
    LockDecl,
    grant_value,
    holder_of,
    request_value,
    requester_of,
)
from repro.sim.waiters import Future


@dataclass(frozen=True)
class LockRetryPolicy:
    """Timeout/backoff parameters for timed lock acquisition.

    Attributes:
        timeout: Seconds one request attempt may wait for its grant.
        max_retries: Retries after the first attempt; the client makes
            ``max_retries + 1`` attempts before raising
            :class:`~repro.errors.LockTimeoutError`.
        backoff_base: First backoff delay; defaults to ``timeout / 2``.
        backoff_factor: Multiplier applied per retry (exponential).
        max_backoff: Backoff cap; defaults to ``timeout * 8``.
        jitter: Fraction of uniform random extension added to each
            backoff (``0.5`` means delays stretch up to 1.5x), drawn
            from the per-node seeded stream so runs stay deterministic.
    """

    timeout: float
    max_retries: int = 8
    backoff_base: float | None = None
    backoff_factor: float = 2.0
    max_backoff: float | None = None
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise FaultError(f"lock retry timeout must be > 0: {self.timeout}")
        if self.max_retries < 0:
            raise FaultError(
                f"lock retry budget must be >= 0: {self.max_retries}"
            )
        if self.backoff_factor < 1.0:
            raise FaultError(
                f"backoff factor must be >= 1: {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter:
            raise FaultError(f"jitter must be >= 0: {self.jitter}")

    def backoff_delay(self, attempt: int, rng: Random) -> float:
        """Backoff before retry ``attempt`` (0-based), with jitter."""
        base = self.backoff_base if self.backoff_base is not None else self.timeout * 0.5
        cap = self.max_backoff if self.max_backoff is not None else self.timeout * 8.0
        delay = min(base * self.backoff_factor**attempt, cap)
        return delay * (1.0 + self.jitter * rng.random())


class GwcLockManager:
    """Root-side lock state machine for one lock variable."""

    def __init__(self, decl: LockDecl, recovery: bool = False) -> None:
        self.decl = decl
        self.holder: int | None = None
        self.queue: list[int] = []
        #: Diagnostics.
        self.grants = 0
        self.releases = 0
        self.max_queue = 0
        #: Recovery mode: tolerate the duplicate/stale messages that
        #: timeouts and crash recovery make legal (see module docstring).
        self.recovery = recovery
        self.regrants = 0
        self.cancelled_requests = 0
        self.stale_releases = 0
        #: Lease machinery (see :meth:`enable_lease`).
        self.lease_reclaims = 0
        self.lease_extensions = 0
        #: ``on_reclaim(lock_name, old_holder, new_holder, now)`` hook,
        #: used by the fault injector to measure recovery time.
        self.on_reclaim: Callable[[str, int, int | None, float], None] | None = None
        self._sim: "Simulator | None" = None  # noqa: F821
        self._emit: Callable[[list[Any]], None] | None = None
        self._lease_duration: float | None = None
        self._is_crashed: Callable[[int], bool] | None = None
        self._lease_max_extensions: int | None = None
        #: Consecutive live-holder extensions for the current grant.
        self._lease_extension_run = 0
        self._lease_event: "Event | None" = None  # noqa: F821
        #: Bumped on every grant and release; a pending lease check whose
        #: epoch is stale belongs to a previous occupancy and is ignored.
        self._grant_epoch = 0

    @property
    def name(self) -> str:
        return self.decl.name

    def holds(self, node: int) -> bool:
        """Does ``node`` currently hold the lock (root's authoritative view)?"""
        return self.holder == node

    def enable_recovery(self) -> None:
        """Switch on tolerant handling of retry/crash-era messages."""
        self.recovery = True

    def enable_lease(
        self,
        sim: "Simulator",  # noqa: F821
        emit: Callable[[list[Any]], None],
        duration: float,
        is_crashed: Callable[[int], bool] | None = None,
        max_extensions: int | None = None,
    ) -> None:
        """Arm holder leases so a dead holder's lock is reclaimed.

        Args:
            sim: The simulator to schedule lease expiry checks on.
            emit: Callable that sequences-and-multicasts a list of lock
                values exactly like a client write would (the group root
                engine supplies this so reclaim grants get group-global
                sequence numbers).
            duration: Lease length in simulated seconds.  Size it well
                above the longest legitimate critical section plus one
                round trip, or healthy holders will be reclaimed.
            is_crashed: Optional liveness oracle.  When provided, a
                lease expiring under a *live* holder is extended rather
                than reclaimed, making reclaim precise instead of purely
                time-based.
            max_extensions: Cap on consecutive live-holder extensions of
                one grant.  A live holder whose *release was lost* (e.g.
                dropped by a partition) would otherwise be extended
                forever, wedging the lock; after the cap the lock is
                reclaimed anyway, and the grant-epoch fence makes the
                holder's stale late release harmless.  ``None`` (default)
                keeps the unbounded behaviour.
        """
        if duration <= 0:
            raise FaultError(f"lease duration must be > 0: {duration}")
        if max_extensions is not None and max_extensions < 1:
            raise FaultError(
                f"lease max_extensions must be >= 1: {max_extensions}"
            )
        self.recovery = True
        self._sim = sim
        self._emit = emit
        self._lease_duration = duration
        self._is_crashed = is_crashed
        self._lease_max_extensions = max_extensions
        if self.holder is not None:
            self._arm_lease()

    def on_write(self, origin: int, value: Any) -> list[int]:
        """Process a lock-variable write arriving at the root.

        Returns the list of lock values the root must now sequence and
        multicast (grants / free propagation), in order.  The caller (the
        group root engine) performs the actual multicasts so they get
        group-global sequence numbers.
        """
        requester = requester_of(value)
        if requester is not None:
            return self._on_request(origin, requester)
        if value == FREE_VALUE:
            return self._on_release(origin)
        granted = holder_of(value)
        raise LockStateError(
            f"lock {self.name!r}: unexpected write {value!r} from node "
            f"{origin} (grant values are root-only, granted={granted})"
        )

    def _on_request(self, origin: int, requester: int) -> list[int]:
        if requester != origin:
            raise LockStateError(
                f"lock {self.name!r}: node {origin} forged a request "
                f"for node {requester}"
            )
        if self.holder is None:
            self._grant_to(requester)
            return [grant_value(requester)]
        if requester == self.holder or requester in self.queue:
            if self.recovery:
                # A timed-out client retrying: if it already holds the
                # lock the grant was lost in flight — re-emit it; if it
                # is already queued the duplicate is a no-op.
                if requester == self.holder:
                    self.regrants += 1
                    return [grant_value(requester)]
                return []
            raise LockStateError(
                f"lock {self.name!r}: node {requester} requested twice"
            )
        self.queue.append(requester)
        self.max_queue = max(self.max_queue, len(self.queue))
        return []

    def _on_release(self, origin: int) -> list[int]:
        if self.holder != origin:
            if self.recovery:
                if origin in self.queue:
                    # A timed-out requester cancelling its queued request.
                    self.queue.remove(origin)
                    self.cancelled_requests += 1
                else:
                    # A release from a reclaimed (or never-granted)
                    # occupancy arriving late: drop it.
                    self.stale_releases += 1
                return []
            raise LockStateError(
                f"lock {self.name!r}: node {origin} released but holder "
                f"is {self.holder}"
            )
        self.releases += 1
        self._grant_epoch += 1
        if self.queue:
            self._grant_to(self.queue.pop(0))
            return [grant_value(self.holder)]
        self.holder = None
        self._cancel_lease()
        return [FREE_VALUE]

    # ------------------------------------------------------------------
    # Live ownership handoff (online re-partitioning)
    # ------------------------------------------------------------------

    def export_state(self) -> "dict[str, Any]":
        """Snapshot the manager for a live root-to-root handoff.

        Unlike crash failover (which reconstructs lock state from member
        evidence), online re-partitioning has the old owner alive: its
        exact holder/queue/counter state transfers wholesale.  The old
        manager's lease timer is cancelled — the adopting manager re-arms
        its own if leases are configured there.
        """
        self._cancel_lease()
        return {
            "holder": self.holder,
            "queue": list(self.queue),
            "grants": self.grants,
            "releases": self.releases,
            "max_queue": self.max_queue,
            "regrants": self.regrants,
            "cancelled_requests": self.cancelled_requests,
            "stale_releases": self.stale_releases,
            "lease_reclaims": self.lease_reclaims,
            "lease_extensions": self.lease_extensions,
            "grant_epoch": self._grant_epoch,
            "on_reclaim": self.on_reclaim,
        }

    def adopt_state(self, state: "dict[str, Any]") -> None:
        """Install a snapshot from :meth:`export_state` on this manager."""
        self.holder = state["holder"]
        self.queue = list(state["queue"])
        self.grants = state["grants"]
        self.releases = state["releases"]
        self.max_queue = state["max_queue"]
        self.regrants = state["regrants"]
        self.cancelled_requests = state["cancelled_requests"]
        self.stale_releases = state["stale_releases"]
        self.lease_reclaims = state["lease_reclaims"]
        self.lease_extensions = state["lease_extensions"]
        self._grant_epoch = state["grant_epoch"]
        if state.get("on_reclaim") is not None:
            self.on_reclaim = state["on_reclaim"]
        self._lease_extension_run = 0
        if self.holder is not None and self._lease_duration is not None:
            self._arm_lease()

    # ------------------------------------------------------------------
    # Lease internals
    # ------------------------------------------------------------------

    def _grant_to(self, node: int) -> None:
        self.holder = node
        self.grants += 1
        self._grant_epoch += 1
        self._lease_extension_run = 0
        if self._lease_duration is not None:
            self._arm_lease()

    def _cancel_lease(self) -> None:
        if self._lease_event is not None:
            self._lease_event.cancel()
            self._lease_event = None

    def _arm_lease(self) -> None:
        self._cancel_lease()
        self._lease_event = self._sim.schedule(
            self._lease_duration,
            partial(self._lease_check, self._grant_epoch),
        )

    def _lease_check(self, epoch: int) -> None:
        if epoch != self._grant_epoch or self.holder is None:
            return  # Occupancy already changed; this check is stale.
        if (
            self._is_crashed is not None
            and not self._is_crashed(self.holder)
            and (
                self._lease_max_extensions is None
                or self._lease_extension_run < self._lease_max_extensions
            )
        ):
            # Liveness oracle says the holder is alive: a long critical
            # section, not a crash.  Extend rather than reclaim — but
            # only up to max_extensions times per grant, so a live
            # holder whose release was lost in transit cannot wedge the
            # lock forever.
            self.lease_extensions += 1
            self._lease_extension_run += 1
            self._arm_lease()
            return
        old_holder = self.holder
        self.lease_reclaims += 1
        self._grant_epoch += 1
        if self.queue:
            self._grant_to(self.queue.pop(0))
            values: list[int] = [grant_value(self.holder)]
        else:
            self.holder = None
            self._cancel_lease()
            values = [FREE_VALUE]
        if self.on_reclaim is not None:
            self.on_reclaim(self.name, old_holder, self.holder, self._sim.now)
        self._emit(values)


class GwcLockClient:
    """Regular (blocking, non-optimistic) GWC lock operations for one node.

    Stateless aside from the declaration and retry policy: all protocol
    state lives in the node's local store (the lock variable copy) and at
    the root (the manager).  With ``retry=None`` (the default) acquire
    blocks forever, exactly the paper's protocol; with a
    :class:`LockRetryPolicy` each attempt is bounded and exhausting the
    budget raises :class:`~repro.errors.LockTimeoutError`.
    """

    def __init__(self, decl: LockDecl, retry: LockRetryPolicy | None = None) -> None:
        self.decl = decl
        self.retry = retry

    def acquire(self, node: "NodeHandle") -> Generator[Any, Any, None]:  # noqa: F821
        """Request the lock and wait for the local copy to show our grant."""
        name = self.decl.name
        mine = grant_value(node.id)
        current = node.store.read(name)
        if holder_of(current) == node.id or requester_of(current) == node.id:
            from repro.errors import LockNestingError

            raise LockNestingError(
                f"node {node.id} cannot safely nest requests for {name!r}"
            )
        node.iface.atomic_exchange(name, request_value(node.id))
        node.metrics.count("lock.requests")
        yield from self.await_grant(node)
        node.metrics.count("lock.acquired")

    def await_grant(self, node: "NodeHandle") -> Generator[Any, Any, None]:  # noqa: F821
        """Wait out an already-issued request (the caller sent it).

        With no retry policy this blocks forever like the paper's
        protocol.  With one, each attempt is bounded: on timeout the
        request is withdrawn (a FREE write, which in recovery mode
        dequeues us at the root — or releases the lock if the grant
        raced the timeout), we back off with seeded jitter, re-issue,
        and eventually raise :class:`~repro.errors.LockTimeoutError`.
        The optimistic runner reuses this for its regular-path waits so
        speculation keeps crash/partition tolerance.
        """
        name = self.decl.name
        mine = grant_value(node.id)
        policy = self.retry
        if policy is None:
            yield from node.store.wait_until(name, lambda v: v == mine)
            return
        rng = node.sim.rng.stream(f"lock.backoff.{node.id}")
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                node.iface.atomic_exchange(name, request_value(node.id))
                node.metrics.count("lock.requests")
            granted = yield from self._wait_for_grant(
                node, name, mine, policy.timeout
            )
            if granted:
                return
            node.metrics.count("lock.timeouts")
            # Withdraw the request so the next attempt starts from a
            # clean slate (see docstring).
            node.iface.share_write(name, FREE_VALUE)
            if attempt < policy.max_retries:
                node.metrics.count("lock.retries")
                yield policy.backoff_delay(attempt, rng)
        raise LockTimeoutError(
            f"node {node.id}: lock {name!r} not granted after "
            f"{policy.max_retries + 1} attempt(s) of {policy.timeout:.9g}s "
            f"(t={node.sim.now:.9g})"
        )

    def release(self, node: "NodeHandle") -> Generator[Any, Any, None]:  # noqa: F821
        """Free the lock locally; the root forwards it to the next waiter."""
        name = self.decl.name
        if holder_of(node.store.read(name)) != node.id:
            raise LockStateError(
                f"node {node.id} released {name!r} without holding it"
            )
        node.iface.share_write(name, FREE_VALUE)
        node.metrics.count("lock.released")
        return
        yield  # pragma: no cover - marks this function as a generator

    def _wait_for_grant(
        self,
        node: "NodeHandle",  # noqa: F821
        name: str,
        mine: int,
        timeout: float,
    ) -> Generator[Any, Any, bool]:
        """Wait until the local copy shows our grant, or the timeout.

        Returns True on grant, False on timeout.  Unlike
        :meth:`LocalStore.wait_until` this must stop waiting at the
        deadline, so it races a one-shot future between the variable's
        change signal (re-registered each fire, checking the store's
        latest committed value) and a cancellable timer event.
        """
        store = node.store
        if store.read(name) == mine:
            return True
        signal = store.signal_for(name)
        outcome = Future(name=f"n{node.id}.{name}.grant")

        def on_change(_payload: Any) -> None:
            if outcome.resolved:
                return
            if store.read(name) == mine:
                outcome.resolve(True)
            else:
                signal.add_callback(on_change)

        def on_timeout() -> None:
            if not outcome.resolved:
                outcome.resolve(False)

        signal.add_callback(on_change)
        timer = node.sim.schedule(timeout, on_timeout)
        granted = yield outcome
        if granted:
            timer.cancel()
        else:
            signal.remove_callback(on_change)
        return granted
