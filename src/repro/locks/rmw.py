"""Root-arbitrated remote atomic operations.

The classic lock baselines the paper cites — test-and-set [3],
test-and-test-and-set [17], and software queue locks like MCS [14] —
need atomic read-modify-write on shared words.  On an eagersharing
group the natural serialization point is the group root, which already
sequences every write: an atomic travels to the root, mutates the
root's authoritative copy, is multicast like any other sequenced write,
and the old value returns to the requester.

This mirrors how a memory controller or NAK-free directory serializes
RMWs in hardware DSMs; the cost is one request/reply round trip per
atomic, which is exactly why the paper prefers its queue-based GWC lock
(one-way traffic) for contended locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.core.node import NodeHandle
from repro.errors import LockError
from repro.net.message import Message
from repro.sim.waiters import Future

#: Supported operations.
OP_TEST_AND_SET = "test_and_set"
OP_FETCH_AND_STORE = "fetch_and_store"
OP_COMPARE_AND_SWAP = "compare_and_swap"
OP_FETCH_AND_ADD = "fetch_and_add"


@dataclass(frozen=True, slots=True)
class AtomicRequest:
    """One remote atomic: op, target variable, operands, reply routing."""

    op: str
    var: str
    operand: Any
    operand2: Any
    origin: int
    request_id: int


class RemoteAtomics:
    """Client + root-side dispatcher for remote atomics on a machine."""

    def __init__(self, machine: "DSMMachine") -> None:  # noqa: F821
        self.machine = machine
        self._waits: dict[int, Future] = {}
        self._ids = 0
        machine.register_kind_handler("rmw", self._on_message)
        #: Count of atomics served (diagnostics).
        self.served = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def _execute(
        self, node: NodeHandle, op: str, var: str, operand: Any, operand2: Any = None
    ) -> Generator[Any, Any, Any]:
        """Issue one atomic and wait for the old value."""
        group = node.iface.group_of(var)
        self._ids += 1
        request = AtomicRequest(
            op=op,
            var=var,
            operand=operand,
            operand2=operand2,
            origin=node.id,
            request_id=self._ids,
        )
        future = Future(name=f"rmw.{self._ids}")
        self._waits[request.request_id] = future
        self.machine.network.send(
            Message(
                src=node.id,
                dst=group.root,
                kind="rmw.request",
                payload=request,
                size_bytes=self.machine.params.packet_bytes,
            )
        )
        old = yield future
        return old

    def test_and_set(
        self, node: NodeHandle, var: str, set_to: Any, free: Any
    ) -> Generator[Any, Any, Any]:
        """Set ``var`` to ``set_to`` iff it equals ``free``; returns old."""
        return (
            yield from self._execute(node, OP_TEST_AND_SET, var, set_to, free)
        )

    def fetch_and_store(
        self, node: NodeHandle, var: str, value: Any
    ) -> Generator[Any, Any, Any]:
        return (yield from self._execute(node, OP_FETCH_AND_STORE, var, value))

    def compare_and_swap(
        self, node: NodeHandle, var: str, expected: Any, value: Any
    ) -> Generator[Any, Any, Any]:
        """Returns the old value; the swap happened iff old == expected."""
        return (
            yield from self._execute(node, OP_COMPARE_AND_SWAP, var, value, expected)
        )

    def fetch_and_add(
        self, node: NodeHandle, var: str, amount: Any
    ) -> Generator[Any, Any, Any]:
        return (yield from self._execute(node, OP_FETCH_AND_ADD, var, amount))

    # ------------------------------------------------------------------
    # Root side
    # ------------------------------------------------------------------

    def _on_message(self, node_id: int, msg: Message) -> None:
        if msg.kind == "rmw.request":
            self._serve(node_id, msg.payload)
        elif msg.kind == "rmw.reply":
            request_id, old = msg.payload
            self._waits.pop(request_id).resolve(old)
        else:
            raise LockError(f"unknown atomic message {msg.kind!r}")

    def _serve(self, root_id: int, request: AtomicRequest) -> None:
        """Apply the atomic at the root and multicast the new value."""
        node = self.machine.nodes[root_id]
        group = node.iface.group_of(request.var)
        engine = node.iface.root_engines.get(group.name)
        if engine is None:
            raise LockError(
                f"atomic for {request.var!r} arrived at node {root_id}, "
                f"which does not root group {group.name!r}"
            )
        old = engine.authoritative_read(request.var)
        new = old
        if request.op == OP_TEST_AND_SET:
            if old == request.operand2:  # free
                new = request.operand
        elif request.op == OP_FETCH_AND_STORE:
            new = request.operand
        elif request.op == OP_COMPARE_AND_SWAP:
            if old == request.operand2:  # expected
                new = request.operand
        elif request.op == OP_FETCH_AND_ADD:
            new = old + request.operand
        else:
            raise LockError(f"unknown atomic op {request.op!r}")
        self.served += 1
        if new != old:
            engine.sequence_plain_write(request.var, new, origin=root_id)
        self.machine.network.send(
            Message(
                src=root_id,
                dst=request.origin,
                kind="rmw.reply",
                payload=(request.request_id, old),
                size_bytes=self.machine.params.packet_bytes,
            )
        )
