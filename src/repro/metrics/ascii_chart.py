"""ASCII line charts for experiment output.

The figure harness prints tables; for a quick visual read of the curve
shapes (the thing the paper's figures actually show), this module draws
multi-series scatter/line charts on a character grid — no plotting
dependencies.

Each series gets a marker character; points landing on the same cell
show the *later* series' marker.  Axes are annotated with min/max and
the x positions of the data columns.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ExperimentError

#: Markers assigned to series, in declaration order.
MARKERS = "o*+x#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, round(fraction * (cells - 1))))


def render_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    logx: bool = False,
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Args:
        series: Mapping of series name to points; all series share axes.
        width: Plot-area width in characters.
        height: Plot-area height in rows.
        title: Optional heading line.
        logx: Plot x on a log scale (network-size sweeps double x).
    """
    if not series:
        raise ExperimentError("chart needs at least one series")
    if len(series) > len(MARKERS):
        raise ExperimentError(f"too many series (max {len(MARKERS)})")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ExperimentError("chart needs at least one point")

    import math

    def tx(x: float) -> float:
        if not logx:
            return x
        if x <= 0:
            raise ExperimentError("log-x chart needs positive x values")
        return math.log2(x)

    xs = [tx(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(MARKERS, series.items()):
        for x, y in pts:
            col = _scale(tx(x), x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.3g}"
    y_lo_label = f"{y_lo:.3g}"
    label_width = max(len(y_hi_label), len(y_lo_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(label_width)
        elif i == height - 1:
            label = y_lo_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_lo_raw = min(x for x, _ in points)
    x_hi_raw = max(x for x, _ in points)
    x_line = f"{x_lo_raw:.3g}".ljust(width - 6) + f"{x_hi_raw:.3g}".rjust(6)
    lines.append(" " * label_width + "  " + x_line)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
