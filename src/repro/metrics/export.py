"""CSV export for experiment rows.

The benchmark harness archives human-readable tables; this module
additionally emits machine-readable CSV so the series can be re-plotted
with external tooling.  Rows may be dataclasses, mappings, or plain
sequences.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import pathlib
from typing import Any, Iterable, Sequence

from repro.errors import ExperimentError


def _row_to_dict(row: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    raise ExperimentError(
        f"cannot export row of type {type(row).__name__}; pass dataclasses "
        "or dicts (or use to_csv_columns for plain sequences)"
    )


def to_csv(rows: Iterable[Any]) -> str:
    """Render dataclass/dict rows as CSV text (header from field names)."""
    dict_rows = [_row_to_dict(row) for row in rows]
    if not dict_rows:
        raise ExperimentError("no rows to export")
    fieldnames = list(dict_rows[0])
    for row in dict_rows:
        if list(row) != fieldnames:
            raise ExperimentError("rows have inconsistent fields")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(dict_rows)
    return buffer.getvalue()


def to_csv_columns(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render header + positional rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    count = 0
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        writer.writerow(list(row))
        count += 1
    if count == 0:
        raise ExperimentError("no rows to export")
    return buffer.getvalue()


def write_csv(path: str | pathlib.Path, rows: Iterable[Any]) -> pathlib.Path:
    """Write dataclass/dict rows to a CSV file; returns the path.

    The write is atomic (temp + fsync + rename via the goldens writer):
    an interrupted export leaves the previous file intact rather than a
    truncated one, so a CSV on disk is always a complete run's rows.
    """
    from repro.goldens.writer import atomic_write_text

    return atomic_write_text(path, to_csv(rows))


#: The one chaos/campaign run schema, in column order.  Shared by
#: ``repro chaos --csv``, the ``chaos``/``failover`` golden surfaces,
#: and every ``repro campaign`` summary row (campaign rows prepend
#: trial-context columns via ``prefix``), so all fault-run exports
#: carry identical columns and a row from any of them can be compared
#: against any other.
CHAOS_RUN_FIELDS: tuple[str, ...] = (
    "system",
    "workload",
    "scenario",
    "seed",
    "ok",
    "final_counter",
    "chain_length",
    "converged",
    "lock_requests",
    "lock_timeouts",
    "lock_retries",
    "lock_reclaims",
    "failovers",
    "stale_epoch_discards",
    "rerouted_requests",
    "window_discards",
    "recovery_time_mean_s",
    "messages",
    "dropped",
    "fault_dropped",
    "fault_delayed",
    "fault_duplicated",
    "root_count",
    "root_load_max",
    "root_load_mean",
    "stall",
)


def chaos_run_row(
    values: dict[str, Any], prefix: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Project ``values`` onto the shared chaos-run schema.

    Returns a dict whose keys are exactly ``prefix`` columns (in their
    given order) followed by :data:`CHAOS_RUN_FIELDS`; a missing or
    extra field is a hard error so the chaos and campaign emitters can
    never silently diverge.
    """
    extra = set(values) - set(CHAOS_RUN_FIELDS)
    missing = set(CHAOS_RUN_FIELDS) - set(values)
    if extra or missing:
        raise ExperimentError(
            "chaos-run row does not match the shared schema: "
            f"missing {sorted(missing)}, unexpected {sorted(extra)}"
        )
    row: dict[str, Any] = dict(prefix) if prefix else {}
    for name in CHAOS_RUN_FIELDS:
        if name in row:
            raise ExperimentError(
                f"chaos-run prefix column {name!r} collides with the schema"
            )
        row[name] = values[name]
    return row


def channel_stats_summary(stats: "ChannelStats") -> dict[str, int]:  # noqa: F821
    """Whole-network traffic and fault counters as one flat mapping.

    Includes the loss-model vs fault-injector drop split so chaos runs
    can report both causes separately (``dropped`` is their sum plus any
    legacy accounting).
    """
    return {
        "messages": stats.messages,
        "bytes": stats.bytes,
        "dropped": stats.dropped,
        "loss_dropped": stats.loss_dropped,
        "fault_dropped": stats.fault_dropped,
        "fault_delayed": stats.fault_delayed,
        "fault_duplicated": stats.fault_duplicated,
        "stale_epoch_discards": stats.stale_epoch_discards,
        "rerouted_requests": stats.rerouted_requests,
        "failovers": stats.failovers,
    }


def channel_stats_rows(stats: "ChannelStats") -> list[dict[str, int]]:  # noqa: F821
    """Per-node traffic rows (ready for :func:`to_csv` / :func:`write_csv`).

    One row per node that ever sent or received, with its inbound,
    outbound, and dropped-inbound message counts.
    """
    nodes = sorted(
        set(stats.inbound) | set(stats.outbound) | set(stats.dropped_inbound)
    )
    return [
        {
            "node": node,
            "inbound": stats.inbound.get(node, 0),
            "outbound": stats.outbound.get(node, 0),
            "dropped_inbound": stats.dropped_inbound.get(node, 0),
        }
        for node in nodes
    ]
