"""Measurement: per-node time accounting and derived speedup metrics."""

from repro.metrics.ascii_chart import render_chart
from repro.metrics.collector import MachineMetrics, NodeMetrics
from repro.metrics.report import format_table
from repro.metrics.speedup import efficiency, network_power, speedup

__all__ = [
    "MachineMetrics",
    "NodeMetrics",
    "efficiency",
    "format_table",
    "network_power",
    "render_chart",
    "speedup",
]
