"""Figure-1-style ASCII timelines.

The paper's Figure 1 is a timing diagram: one lane per CPU showing when
it computes, when it idles waiting for a lock, and when it holds the
critical section.  :func:`render_timeline` regenerates that form from a
machine's recorded spans and the checker's lock-occupancy records.

Lane characters:

* ``#`` — useful computation
* ``o`` — protocol overhead (rollback saves, context-switch costs)
* ``x`` — wasted (rolled-back) speculation
* ``.`` — idle (waiting for a lock, data, or a task)
* a ``=`` overlay row under each lane marks when that node held a lock.
"""

from __future__ import annotations

from repro.consistency.checker import MutualExclusionChecker
from repro.errors import ExperimentError

_KIND_CHARS = {"useful": "#", "overhead": "o", "wasted": "x"}


def _paint(
    lane: list[str], start: float, end: float, t_end: float, width: int, char: str
) -> None:
    if t_end <= 0 or end <= start:
        return
    first = int(start / t_end * width)
    last = max(first, int(end / t_end * width) - 1)
    for col in range(first, min(last, width - 1) + 1):
        # Wasted overrides overhead overrides useful (worst wins).
        current = lane[col]
        if char == "x" or current == "." or (char == "o" and current == "#"):
            lane[col] = char


def render_timeline(
    machine: "DSMMachine",  # noqa: F821
    width: int = 72,
    title: str | None = None,
    lock: str | None = None,
) -> str:
    """Render each node's activity over the run as one lane.

    Requires that span recording was enabled before the run
    (``machine.enable_span_recording()``); lock-hold overlays need the
    machine's checker.
    """
    t_end = machine.metrics.elapsed
    if t_end <= 0:
        raise ExperimentError("run the machine before rendering its timeline")
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"0 us {'-' * max(0, width - 16)} {t_end * 1e6:.2f} us"
    )
    checker: MutualExclusionChecker | None = machine.checker
    for node in machine.nodes:
        spans = node.metrics.spans
        if spans is None:
            raise ExperimentError(
                "span recording was not enabled; call "
                "machine.enable_span_recording() before running"
            )
        lane = ["."] * width
        for start, end, kind in spans:
            _paint(lane, start, end, t_end, width, _KIND_CHARS.get(kind, "?"))
        lines.append(f"cpu{node.id:<2d} |{''.join(lane)}|")
        if checker is not None:
            hold = [" "] * width
            for span in checker.spans:
                if span.node != node.id:
                    continue
                if lock is not None and span.lock != lock:
                    continue
                _paint(hold, span.enter, span.exit, t_end, width, "=")
                # _paint respects the worst-wins rule for lane chars;
                # for the hold row just force the overlay.
                first = int(span.enter / t_end * width)
                last = max(first, int(span.exit / t_end * width) - 1)
                for col in range(first, min(last, width - 1) + 1):
                    hold[col] = "="
            if any(ch == "=" for ch in hold):
                lines.append(f"      |{''.join(hold)}| lock held")
    lines.append("legend: # useful   o overhead   x wasted   . idle   = in section")
    return "\n".join(lines)
