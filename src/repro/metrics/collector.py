"""Per-node and machine-wide time accounting.

Each simulated processor's wall-clock is split into four buckets:

* **useful** — application work (the only time that counts as "peak
  processor speed" in the paper's efficiency metric);
* **overhead** — protocol work (rollback saves/restores, data shipping);
* **wasted** — speculative computation that was rolled back;
* **idle** — everything else: waiting for locks, data, or tasks.

Counters record protocol events (acquires, rollbacks, discards, ...).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(slots=True)
class NodeMetrics:
    """Time buckets and event counters for one simulated processor."""

    node: int
    useful: float = 0.0
    overhead: float = 0.0
    wasted: float = 0.0
    counters: Counter = field(default_factory=Counter)
    #: When enabled (see :meth:`record_spans`), every accounted busy
    #: interval as ``(start, end, kind)`` — the raw material for
    #: Figure-1-style timeline rendering.
    spans: "list[tuple[float, float, str]] | None" = None

    def record_spans(self) -> None:
        """Start keeping per-interval records (off by default: memory)."""
        if self.spans is None:
            self.spans = []

    def add_time(self, kind: str, seconds: float, end: float | None = None) -> None:
        if seconds < 0:
            raise ValueError(f"negative time: {seconds}")
        if kind == "useful":
            self.useful += seconds
        elif kind == "overhead":
            self.overhead += seconds
        elif kind == "wasted":
            self.wasted += seconds
        else:
            raise ValueError(f"unknown time bucket {kind!r}")
        if self.spans is not None and end is not None and seconds > 0:
            self.spans.append((end - seconds, end, kind))

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def idle(self, elapsed: float) -> float:
        """Idle time implied by the run's elapsed wall-clock."""
        return max(0.0, elapsed - self.useful - self.overhead - self.wasted)

    def efficiency(self, elapsed: float) -> float:
        """Fraction of elapsed time spent on useful work."""
        if elapsed <= 0:
            return 0.0
        return self.useful / elapsed


class MachineMetrics:
    """Aggregates :class:`NodeMetrics` across a machine."""

    def __init__(self, n_nodes: int) -> None:
        self.nodes = [NodeMetrics(node=i) for i in range(n_nodes)]
        #: Set by the workload runner when the simulation completes.
        self.elapsed: float = 0.0

    def __getitem__(self, node: int) -> NodeMetrics:
        return self.nodes[node]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def total_useful(self) -> float:
        return sum(n.useful for n in self.nodes)

    def total_wasted(self) -> float:
        return sum(n.wasted for n in self.nodes)

    def total_counter(self, name: str) -> int:
        return sum(n.counters.get(name, 0) for n in self.nodes)

    def average_efficiency(self) -> float:
        if not self.nodes or self.elapsed <= 0:
            return 0.0
        return sum(n.efficiency(self.elapsed) for n in self.nodes) / len(self.nodes)

    def speedup(self) -> float:
        """The paper's speedup: average processor efficiency times size.

        Equivalently total useful work divided by elapsed time.
        """
        if self.elapsed <= 0:
            return 0.0
        return self.total_useful() / self.elapsed

    def summary(self) -> dict[str, float]:
        return {
            "elapsed": self.elapsed,
            "useful": self.total_useful(),
            "wasted": self.total_wasted(),
            "speedup": self.speedup(),
            "efficiency": self.average_efficiency(),
        }
