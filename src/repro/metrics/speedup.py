"""Derived performance metrics used by the paper's figures.

The paper uses two equivalent phrasings:

* *Speedup* (Figure 2): "average processor efficiency times network size".
* *Network power* (Figure 8): "the product of average sustained efficiency
  on each processor times the number of processors".

Both equal total useful work divided by elapsed time.
"""

from __future__ import annotations


def efficiency(useful: float, elapsed: float) -> float:
    """Fraction of elapsed wall-clock one processor spent on useful work."""
    if elapsed <= 0:
        return 0.0
    if useful < 0:
        raise ValueError(f"useful time must be >= 0: {useful}")
    return useful / elapsed


def speedup(total_useful: float, elapsed: float) -> float:
    """Total useful work across all processors divided by elapsed time."""
    if elapsed <= 0:
        return 0.0
    if total_useful < 0:
        raise ValueError(f"useful time must be >= 0: {total_useful}")
    return total_useful / elapsed


def network_power(total_useful: float, elapsed: float) -> float:
    """The paper's Figure-8 metric; identical to :func:`speedup`."""
    return speedup(total_useful, elapsed)


def relative_gain(a: float, b: float) -> float:
    """How many times faster ``a`` is than ``b`` (paper's "N.N times")."""
    if b <= 0:
        raise ValueError(f"baseline must be positive: {b}")
    return a / b
