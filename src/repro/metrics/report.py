"""Plain-text tables for experiment output.

The benchmark harness prints the same rows/series the paper's figures
report; this module renders them readably without external dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(widths[i]) for i, v in enumerate(values))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)
