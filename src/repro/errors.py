"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A failure inside the discrete-event simulation kernel."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (bad yield value, double resume...)."""


class ShardingError(SimulationError):
    """The sharded kernel was misused or detected an internal inconsistency.

    Raised for unshardable configurations (non-message-pure consistency
    systems, random loss models, zero cross-shard lookahead) and for
    invariant violations such as a straggler under the conservative
    policy, which the lookahead bound proves impossible.
    """


class StallError(SimulationError):
    """The progress watchdog detected a silent hang.

    Raised by :class:`repro.sim.watchdog.Watchdog` when the simulation
    exceeds its simulated-time budget, when no runnable event remains
    while processes are still blocked, or when no process advances for
    several consecutive checks.  The message names every blocked process
    and what it is waiting on.
    """


class TopologyError(ReproError):
    """An invalid network topology or routing request."""


class NetworkError(ReproError):
    """A failure in the simulated network layer."""


class MemoryError_(ReproError):
    """A failure in the DSM memory substrate.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`.
    """


class UnknownVariableError(MemoryError_):
    """A variable name was used before being declared in a sharing group."""


class GroupMembershipError(MemoryError_):
    """A node accessed a sharing group it is not a member of."""


class ConsistencyError(ReproError):
    """A consistency-model invariant was violated."""


class SequencingError(ConsistencyError):
    """Group-write-consistency sequencing was violated (gap or reorder)."""


class InvariantViolationError(ConsistencyError):
    """An online safety oracle caught a violated invariant mid-run.

    Raised by :class:`repro.consistency.oracles.InvariantMonitor` (and
    :class:`~repro.consistency.oracles.GvtMonitor` under sharding) the
    instant an armed invariant fails: lock mutual exclusion, sequencer
    epoch/cursor monotonicity, apply-stream gap absence, single-writer
    token integrity, or GVT monotonicity.  ``oracle`` names the failed
    check and ``evidence`` carries the monitor's recent observation
    trail ending in the violating observation, so a campaign repro
    bundle can show *how* the run reached the bad state, not just that
    it did.
    """

    def __init__(
        self,
        message: str,
        oracle: str = "",
        evidence: "tuple[str, ...] | list[str]" = (),
    ) -> None:
        super().__init__(message)
        self.oracle = oracle
        self.evidence = tuple(evidence)


class LockError(ReproError):
    """A failure in a lock protocol."""


class LockNestingError(LockError):
    """A processor attempted to re-acquire a lock it already holds.

    Mirrors line (28) of the paper's Figure 4: ``ERROR(Cannot safely nest
    mutex lock requests)``.
    """


class LockStateError(LockError):
    """A lock operation was attempted in an invalid state (e.g. releasing
    a lock the caller does not hold)."""


class LockTimeoutError(LockError):
    """A lock request exhausted its retry budget without being granted.

    Raised by :class:`repro.locks.gwc_lock.GwcLockClient` when a
    :class:`~repro.locks.gwc_lock.LockRetryPolicy` is configured and
    every timed request attempt (with exponential backoff between
    retries) expired before the grant arrived — typically because the
    lock holder or the group root crashed, or a partition swallowed the
    request.
    """


class RollbackError(ReproError):
    """A failure while saving or restoring optimistic rollback state."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment sweep was configured with invalid parameters."""


class FaultError(ReproError):
    """An invalid fault plan or fault-injection request.

    Raised when a :class:`repro.faults.plan.FaultPlan` is malformed
    (crash of an unknown node, heal of a partition that was never cut,
    overlapping injector installs) or when a chaos scenario is
    incompatible with the requested consistency system.
    """


class RootFailoverError(FaultError):
    """Group-root failover could not complete.

    Raised by :class:`repro.faults.failover.RootFailoverManager` when a
    crashed group root has no live member left to elect as successor,
    or when the reconstruction quorum cannot be assembled (every
    surviving member unreachable).  Also raised by ``restart()`` of a
    member whose group has no live root to re-inshare from.
    """
