"""The registry of artifact-producing surfaces covered by goldens.

A *surface* is one reproducible artifact set: a figure sweep, an
ablation, a chaos matrix, the shard-parity smoke, the benchmark
snapshot's semantic projection.  Each surface's ``generate`` function
writes its artifacts through a crash-safe :class:`RunWriter` using
**explicit quick-scale parameters** — never environment-dependent
defaults (``REPRO_FULL``, ``REPRO_SHARDS``) — so two runs on any two
hosts produce byte-identical files.

Everything recorded here is simulated-time deterministic.  The one
wall-clock-contaminated artifact, ``BENCH_kernel.json``, participates
through its scrubbed semantic projection: the host fingerprint and
timings stay in the real snapshot but never reach a golden.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExperimentError
from repro.goldens.scrub import BENCH_VOLATILE, scrub_payload
from repro.goldens.writer import RunWriter

#: Repository root (src layout: src/repro/goldens/surfaces.py -> root).
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def _rows_payload(rows: list[Any]) -> list[dict[str, Any]]:
    return [dataclasses.asdict(row) for row in rows]


def _expectations_payload(checks: list[Any]) -> dict[str, bool]:
    return {check.claim: check.holds for check in checks}


def _generate_figure1(run: RunWriter) -> None:
    from repro.experiments import figure1

    rows = figure1.run_figure1()
    run.write_json(
        "figure1.json",
        {
            "rows": _rows_payload(rows),
            "expectations": _expectations_payload(figure1.expectations(rows)),
        },
    )


def _generate_figure2(run: RunWriter) -> None:
    from repro.experiments import figure2

    rows = figure2.run_figure2(
        sizes=(3, 5, 9, 17), total_tasks=128, shards=1
    )
    run.write_csv("figure2.csv", rows)
    run.write_json(
        "expectations.json", _expectations_payload(figure2.expectations(rows))
    )


def _generate_figure8(run: RunWriter) -> None:
    from repro.experiments import figure8

    rows = figure8.run_figure8(
        sizes=(2, 4, 8, 16), data_size=128, shards=1
    )
    run.write_csv("figure8.csv", rows)
    run.write_json(
        "expectations.json", _expectations_payload(figure8.expectations(rows))
    )


def _generate_ablation(run: RunWriter) -> None:
    from repro.experiments.ablation import (
        run_echo_blocking_ablation,
        run_lock_primitive_shootout,
        run_lock_protocol_shootout,
        run_threshold_sweep,
    )

    run.write_csv(
        "threshold.csv", run_threshold_sweep(think_times=(15e-6, 50e-6))
    )
    run.write_csv("lock_protocols.csv", run_lock_protocol_shootout())
    run.write_csv("lock_primitives.csv", run_lock_primitive_shootout())
    with_filter, without_filter = run_echo_blocking_ablation()
    run.write_json(
        "echo_blocking.json",
        {
            "with_filter": {
                "correct": with_filter.extra["correct"],
                "chain_ok": with_filter.extra["chain_ok"],
            },
            "without_filter": {
                "correct": without_filter.extra["correct"],
                "chain_ok": without_filter.extra["chain_ok"],
            },
        },
    )


def _generate_sensitivity(run: RunWriter) -> None:
    from repro.experiments.sensitivity import (
        run_bandwidth_sweep,
        run_hop_latency_sweep,
    )

    run.write_csv("hop_latency.csv", run_hop_latency_sweep())
    run.write_csv("bandwidth.csv", run_bandwidth_sweep())


def _generate_grouping(run: RunWriter) -> None:
    from repro.experiments.grouping import run_grouping_sweep

    rows = run_grouping_sweep(sizes=(8, 16, 32))
    run.write_csv(
        "grouping.csv",
        [
            {
                "n_nodes": row.n_nodes,
                "split_elapsed": row.split_elapsed,
                "merged_elapsed": row.merged_elapsed,
                "slowdown": row.slowdown,
            }
            for row in rows
        ],
    )


def _generate_replication(run: RunWriter) -> None:
    """Multi-seed replication: per-seed values plus the determinism check.

    Replicating one seed five times must collapse the confidence
    interval to a point (std == 0); that property is recorded as data,
    and it keeps this artifact independent of whether scipy's Student-t
    table is installed on the host.
    """
    from repro.experiments.replication import replicate
    from repro.workloads.counter import CounterConfig, run_counter

    def one(seed: int) -> float:
        result = run_counter(
            CounterConfig(system="gwc", n_nodes=6, increments_per_node=8, seed=seed)
        )
        return result.elapsed

    per_seed = {str(seed): one(seed) for seed in range(5)}
    collapsed = replicate(lambda _seed: one(0), seeds=range(5), name="elapsed")
    run.write_json(
        "replication.json",
        {
            "per_seed_elapsed": per_seed,
            "same_seed": {
                "n": collapsed.n,
                "mean": collapsed.mean,
                "std": collapsed.std,
                "ci_collapses_to_point": collapsed.ci_low == collapsed.ci_high,
            },
        },
    )


def _generate_burst(run: RunWriter) -> None:
    from repro.experiments.burst import DEFAULT_SIZES, run_burst_sweep

    rows = run_burst_sweep(
        sizes=DEFAULT_SIZES, n_nodes=8, rounds=4, writes_per_round=8
    )
    run.write_csv("burst.csv", rows)


def _generate_chaos(run: RunWriter) -> None:
    """The ``repro chaos --smoke`` matrix (incl. ``crash_root``), seed 0."""
    from repro.faults.chaos import SMOKE_MATRIX, ChaosConfig, chaos_csv_row, run_chaos

    rows = []
    for system, workload, scenario in SMOKE_MATRIX:
        result = run_chaos(
            ChaosConfig(
                system=system, workload=workload, scenario=scenario, seed=0
            )
        )
        rows.append(chaos_csv_row(result))
    run.write_csv("chaos.csv", rows)


def _generate_campaign(run: RunWriter) -> None:
    """The ``repro campaign --smoke`` summary: generated plans + oracles.

    Uses the exact :func:`repro.faults.campaign.smoke_config` the CLI
    smoke path runs, so a drift here means either the plan generator,
    a trial's protocol behaviour, or the shared chaos-run CSV schema
    changed.  Every smoke trial must pass — a red trial is a bug, not
    a golden.
    """
    from repro.faults.campaign import run_campaign, smoke_config

    campaign = run_campaign(smoke_config())
    failed = [o.trial.index for o in campaign.failures()]
    if failed:
        raise ExperimentError(
            f"campaign smoke trial(s) {failed} failed; fix the run before "
            "regenerating goldens"
        )
    run.write_csv("campaign.csv", campaign.rows())


def _generate_failover(run: RunWriter) -> None:
    """The root-kill matrix behind ``make failover-smoke``: 2 systems x 3 seeds."""
    from repro.faults.chaos import ChaosConfig, chaos_csv_row, run_chaos

    rows = []
    for system in ("gwc", "gwc_optimistic"):
        for seed in range(3):
            result = run_chaos(
                ChaosConfig(
                    system=system,
                    workload="counter",
                    scenario="crash_root",
                    seed=seed,
                )
            )
            rows.append(chaos_csv_row(result))
    run.write_csv("failover.csv", rows)


def _generate_shard_smoke(run: RunWriter) -> None:
    """Shard-parity fileset: serial vs sharded canonical state hashes.

    Pinned to the in-process backend: the golden must not depend on the
    ``REPRO_SHARD_BACKEND`` environment or on whether the host can fork
    (the hashes would match anyway — that is the parity guarantee — but
    the golden's rollback/routed counters are backend-shaped).
    """
    from repro.workloads.pipeline import PipelineConfig, run_pipeline
    from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

    records: list[dict[str, Any]] = []
    for n_nodes in (3, 5, 9):
        serial = run_task_queue(
            TaskQueueConfig(system="gwc", n_nodes=n_nodes, total_tasks=32)
        )
        for shards in (2, 4):
            for policy in ("optimistic", "conservative"):
                sharded = run_task_queue(
                    TaskQueueConfig(
                        system="gwc",
                        n_nodes=n_nodes,
                        total_tasks=32,
                        shards=shards,
                        shard_policy=policy,
                        shard_backend="inproc",
                    )
                )
                stats = sharded.extra.get("shard_stats", {})
                records.append(
                    {
                        "workload": "task_queue",
                        "n_nodes": n_nodes,
                        "shards": shards,
                        "policy": policy,
                        "serial_hash": serial.extra["state_hash"],
                        "sharded_hash": sharded.extra["state_hash"],
                        "parity": sharded.extra["state_hash"]
                        == serial.extra["state_hash"],
                        "rollbacks": stats.get("rollbacks", 0),
                        "routed": stats.get("routed", 0),
                    }
                )
    serial = run_pipeline(
        PipelineConfig(system="gwc_optimistic", n_nodes=8, data_size=64)
    )
    for policy in ("optimistic", "conservative"):
        sharded = run_pipeline(
            PipelineConfig(
                system="gwc_optimistic",
                n_nodes=8,
                data_size=64,
                shards=2,
                shard_policy=policy,
                shard_backend="inproc",
            )
        )
        stats = sharded.extra.get("shard_stats", {})
        records.append(
            {
                "workload": "pipeline",
                "n_nodes": 8,
                "shards": 2,
                "policy": policy,
                "serial_hash": serial.extra["state_hash"],
                "sharded_hash": sharded.extra["state_hash"],
                "parity": sharded.extra["state_hash"]
                == serial.extra["state_hash"],
                "rollbacks": stats.get("rollbacks", 0),
                "routed": stats.get("routed", 0),
            }
        )
    if not all(record["parity"] for record in records):
        raise ExperimentError(
            "shard-parity violated while generating goldens; refusing to "
            "snapshot a broken kernel"
        )
    run.write_json("shard_smoke.json", {"records": records})


def _generate_sharded_root(run: RunWriter) -> None:
    """Sharded-root fileset: serial-parity hashes plus handoff counters.

    One pinned (seed, topology, partition) triple per record: the
    sharded family, with and without relay trees and with an online
    re-partition mid-run, must converge to the byte-identical
    serial-baseline state.  The handoff counters (moves, transferred
    locks, epoch restarts) are deterministic per seed, so drift in the
    fence or migration order shows up here before any sweep does.
    """
    from repro.workloads.rootshard import RootShardConfig, run_rootshard

    def config(
        roots: int, fanout: int | None, rebalance: bool, partition_seed: int
    ):
        return RootShardConfig(
            n_nodes=16,
            roots=roots,
            fanout=fanout,
            hot_rounds=48,
            cold_units=4,
            cold_rounds=8,
            n_locks=2,
            n_lockers=6,
            increments=4,
            rebalance=rebalance,
            rebalance_frac=0.35,
            seed=0,
            partition_seed=partition_seed,
            topology="mesh_torus",
        )

    serial = run_rootshard(config(1, None, False, 0))
    records: list[dict[str, Any]] = []
    # The last point's partition seed deliberately lands the hot key on
    # a crowded root so the mid-run rebalance provably migrates units
    # (including a lock handoff between two live roots).
    for roots, fanout, rebalance, partition_seed in (
        (2, None, False, 0),
        (4, None, False, 0),
        (4, 3, False, 0),
        (4, 3, True, 1),
    ):
        sharded = run_rootshard(
            config(roots, fanout, rebalance, partition_seed)
        )
        moves = sharded.extra["migration_moves"]
        records.append(
            {
                "seed": 0,
                "partition_seed": partition_seed,
                "topology": "mesh_torus",
                "n_nodes": 16,
                "roots": roots,
                "fanout": fanout,
                "rebalance": rebalance,
                "serial_hash": serial.extra["shared_hash"],
                "sharded_hash": sharded.extra["shared_hash"],
                "parity": sharded.extra["shared_hash"]
                == serial.extra["shared_hash"],
                "correct": sharded.extra["correct"],
                "load_total": list(sharded.extra["load_total"]),
                "migration_moves": len(moves) if moves else 0,
                "locks_transferred": sharded.extra["locks_transferred"],
                "relayed_applies": sharded.extra["relayed_applies"],
                "epoch_restarts": sharded.extra["epoch_restarts"],
            }
        )
    if not all(r["parity"] and r["correct"] for r in records):
        raise ExperimentError(
            "sharded-root parity violated while generating goldens; "
            "refusing to snapshot broken root sharding"
        )
    if not any(
        r["rebalance"] and r["migration_moves"] > 0 and r["locks_transferred"]
        for r in records
    ):
        raise ExperimentError(
            "sharded-root rebalance point migrated nothing; refusing to "
            "snapshot a vacuous handoff golden"
        )
    run.write_json("sharded_root.json", {"records": records})


def _generate_shard_backend(run: RunWriter) -> None:
    """Serial-vs-process state-hash parity manifest (fixed seed/topology).

    The 14th surface pins the cross-*process* path specifically: each
    record runs one workload serial and once under the process backend
    (forked workers, real IPC) and snapshots both canonical state
    hashes.  The hashes are backend-independent by construction — on a
    host that cannot fork, the request falls back to the in-process
    loops and produces the *same* hashes, so the golden stays
    byte-portable; what it guards is the hash pair itself drifting.
    """
    from repro.workloads.pipeline import PipelineConfig, run_pipeline
    from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

    records: list[dict[str, Any]] = []
    cases = (
        ("task_queue", "mesh_torus", 0),
        ("task_queue", "ring", 1),
        ("pipeline", "mesh_torus", 0),
    )
    for workload, topology, seed in cases:
        if workload == "task_queue":
            base = dict(
                system="gwc",
                n_nodes=5,
                total_tasks=32,
                topology=topology,
                seed=seed,
            )
            serial = run_task_queue(TaskQueueConfig(**base))
            sharded = run_task_queue(
                TaskQueueConfig(
                    **base,
                    shards=2,
                    shard_policy="optimistic",
                    shard_backend="process",
                )
            )
        else:
            base = dict(
                system="gwc_optimistic",
                n_nodes=8,
                data_size=64,
                topology=topology,
                seed=seed,
            )
            serial = run_pipeline(PipelineConfig(**base))
            sharded = run_pipeline(
                PipelineConfig(
                    **base,
                    shards=2,
                    shard_policy="optimistic",
                    shard_backend="process",
                )
            )
        records.append(
            {
                "workload": workload,
                "topology": topology,
                "seed": seed,
                "shards": 2,
                "policy": "optimistic",
                "serial_hash": serial.extra["state_hash"],
                "process_hash": sharded.extra["state_hash"],
                "parity": sharded.extra["state_hash"]
                == serial.extra["state_hash"],
            }
        )
    if not all(record["parity"] for record in records):
        raise ExperimentError(
            "serial-vs-process parity violated while generating goldens; "
            "refusing to snapshot a broken backend"
        )
    run.write_json("shard_backend.json", {"records": records})


def _generate_bench_kernel(run: RunWriter) -> None:
    """Semantic projection of ``BENCH_kernel.json``.

    The live snapshot keeps its host fingerprint and wall-clock numbers;
    the golden records only the host-portable fields (schema, burst
    ablation counts, sharded rollback/parity behaviour) obtained by
    applying :data:`BENCH_VOLATILE` — the exact scrub the manifest hash
    uses, so drift here means a semantic benchmark change, never a
    slower machine.
    """
    bench_path = REPO_ROOT / "BENCH_kernel.json"
    if not bench_path.is_file():
        raise ExperimentError(
            f"{bench_path} missing; run `make bench-json` first"
        )
    payload = json.loads(bench_path.read_text())
    run.write_json(
        "bench_semantic.json", scrub_payload(payload, BENCH_VOLATILE)
    )


@dataclass(frozen=True, slots=True)
class Surface:
    """One golden-covered artifact surface."""

    name: str
    generate: Callable[[RunWriter], None]
    description: str


#: Every artifact-producing surface, in verification order (fast first).
SURFACES: tuple[Surface, ...] = (
    Surface("figure1", _generate_figure1, "3-CPU locking comparison"),
    Surface("bench_kernel", _generate_bench_kernel,
            "BENCH_kernel.json semantic projection (host fields scrubbed)"),
    Surface("replication", _generate_replication,
            "multi-seed replication + same-seed determinism collapse"),
    Surface("figure2", _generate_figure2, "task-management speedup sweep"),
    Surface("figure8", _generate_figure8, "mutex methods on the pipeline"),
    Surface("grouping", _generate_grouping,
            "per-group roots vs one global root"),
    Surface("burst", _generate_burst, "write-burst wire-traffic sweep"),
    Surface("sensitivity", _generate_sensitivity,
            "network-cost sensitivity sweeps"),
    Surface("ablation", _generate_ablation,
            "threshold / shootout / echo-blocking ablations"),
    Surface("shard_smoke", _generate_shard_smoke,
            "sharded-kernel parity hashes vs serial"),
    Surface("shard_backend", _generate_shard_backend,
            "serial-vs-process backend state-hash parity manifest"),
    Surface("sharded_root", _generate_sharded_root,
            "sharded-root serial-parity hashes + handoff counters"),
    Surface("failover", _generate_failover,
            "crash_root failover matrix (2 systems x 3 seeds)"),
    Surface("campaign", _generate_campaign,
            "randomized fault-campaign smoke (generated plans + oracles)"),
    Surface("chaos", _generate_chaos,
            "chaos smoke matrix incl. crash_root"),
)

SURFACES_BY_NAME: dict[str, Surface] = {s.name: s for s in SURFACES}


def surface_names() -> tuple[str, ...]:
    return tuple(s.name for s in SURFACES)


def get_surfaces(only: tuple[str, ...] | None = None) -> tuple[Surface, ...]:
    """Resolve a ``--only`` selection, raising on unknown names."""
    if only is None:
        return SURFACES
    unknown = [name for name in only if name not in SURFACES_BY_NAME]
    if unknown:
        raise ExperimentError(
            f"unknown golden surface(s) {unknown}; known: {list(surface_names())}"
        )
    return tuple(SURFACES_BY_NAME[name] for name in only)
