"""The run-level manifest model and its integrity checks.

A manifest (``MANIFEST.json``) is the *last* file a run writes: its
presence asserts "every artifact listed here was fully written and
fsynced before I existed".  A directory holding artifacts but no valid
manifest is, by construction, an interrupted run — never a silently
partial artifact set, because nothing downstream will accept it.

Each file entry records two hashes:

* ``sha256`` — the canonical, volatile-scrubbed hash used by the drift
  gate (portable across hosts);
* ``raw_sha256`` + ``bytes`` — the exact on-disk bytes, which catch
  truncation and single-byte tampering of a committed golden.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.goldens.scrub import canonical_file_hash, raw_file_hash

#: File name of the run-level manifest, written last in every run.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest format version.
MANIFEST_SCHEMA = 1


@dataclass(frozen=True, slots=True)
class FileEntry:
    """One artifact's record in a manifest."""

    sha256: str
    raw_sha256: str
    bytes: int
    volatile: tuple[str, ...] = ()

    def to_payload(self) -> dict[str, Any]:
        return {
            "sha256": self.sha256,
            "raw_sha256": self.raw_sha256,
            "bytes": self.bytes,
            "volatile": list(self.volatile),
        }


@dataclass(frozen=True, slots=True)
class Manifest:
    """A completed run's artifact inventory."""

    surface: str
    files: dict[str, FileEntry] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "surface": self.surface,
            "files": {
                name: self.files[name].to_payload()
                for name in sorted(self.files)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"


def parse_manifest(text: str) -> Manifest:
    """Parse manifest JSON, raising :class:`ExperimentError` if malformed."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"manifest is not valid JSON: {exc}") from None
    try:
        files = {
            name: FileEntry(
                sha256=entry["sha256"],
                raw_sha256=entry["raw_sha256"],
                bytes=int(entry["bytes"]),
                volatile=tuple(entry.get("volatile", ())),
            )
            for name, entry in payload["files"].items()
        }
        return Manifest(
            surface=payload["surface"],
            files=files,
            schema=int(payload["schema"]),
        )
    except (KeyError, TypeError) as exc:
        raise ExperimentError(f"manifest is missing field: {exc}") from None


def load_manifest(directory: str | pathlib.Path) -> Manifest:
    """Load ``MANIFEST.json`` from a run directory.

    Raises :class:`ExperimentError` when there is no manifest — the
    signature of an interrupted (and therefore invalid) run.
    """
    path = pathlib.Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise ExperimentError(
            f"{directory}: no {MANIFEST_NAME} — not a completed run "
            "(interrupted runs never write a manifest)"
        )
    return parse_manifest(path.read_text())


def manifest_errors(directory: str | pathlib.Path) -> list[str]:
    """Integrity-check a run directory against its manifest.

    Returns a list of human-readable problems (empty = valid): missing
    manifest, files listed but absent, byte counts or raw hashes that no
    longer match (truncation / tampering), and stray artifact files the
    manifest never recorded.
    """
    directory = pathlib.Path(directory)
    try:
        manifest = load_manifest(directory)
    except ExperimentError as exc:
        return [str(exc)]
    problems: list[str] = []
    for name, entry in manifest.files.items():
        path = directory / name
        if not path.is_file():
            problems.append(f"{name}: listed in manifest but missing on disk")
            continue
        size = path.stat().st_size
        if size != entry.bytes:
            problems.append(
                f"{name}: {size} bytes on disk, manifest recorded "
                f"{entry.bytes} (truncated or rewritten)"
            )
        raw = raw_file_hash(path)
        if raw != entry.raw_sha256:
            problems.append(
                f"{name}: raw sha256 {raw[:12]}... does not match manifest "
                f"{entry.raw_sha256[:12]}... (content changed)"
            )
            continue
        canonical = canonical_file_hash(path, entry.volatile)
        if canonical != entry.sha256:
            problems.append(
                f"{name}: canonical sha256 drifted from manifest "
                f"({canonical[:12]}... != {entry.sha256[:12]}...)"
            )
    recorded = set(manifest.files)
    for path in sorted(directory.iterdir()):
        if path.name == MANIFEST_NAME or not path.is_file():
            continue
        if path.name not in recorded:
            problems.append(f"{path.name}: on disk but not in the manifest")
    return problems
