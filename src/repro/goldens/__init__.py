"""Continuous-verify guardrail for run artifacts.

Every figure, chaos, failover, burst, shard, and benchmark run in this
repository produces a small set of machine-readable artifacts.  The
paper's claims live entirely in those artifacts, so refactoring the
simulator aggressively is only safe if every one of them is
tamper-evident and every run is crash-safe.  This package is that fence:

* :mod:`repro.goldens.scrub` — canonical per-file SHA-256 hashing with a
  volatile-field scrubber, so host fingerprints and wall-clock timings
  never leak into a hash that is supposed to be portable;
* :mod:`repro.goldens.writer` — a crash-safe artifact writer (atomic
  temp + fsync + rename per file, run-level ``MANIFEST.json`` written
  last, stale-partial detection and cleanup on the next run);
* :mod:`repro.goldens.manifest` — the manifest model and integrity
  checks;
* :mod:`repro.goldens.diff` — per-file and per-field drift reports;
* :mod:`repro.goldens.surfaces` — the registry of artifact-producing
  surfaces (figures, ablations, sensitivity, grouping, replication,
  bursts, chaos, failover, shard smoke, BENCH_kernel.json);
* :mod:`repro.goldens.verify` — the ``repro verify-goldens`` /
  ``repro update-goldens`` flows and the CI drift gate's exit codes.

Drift-gate contract: timing-transparent changes must keep every golden
bit-identical (hard fail otherwise); semantic changes regenerate the
goldens via the explicit ``REPRO_REGEN_GOLDENS=1`` kill-switch and the
printed diff summary is reviewed with the PR.
"""

from __future__ import annotations

from repro.goldens.manifest import (
    MANIFEST_NAME,
    Manifest,
    load_manifest,
    manifest_errors,
)
from repro.goldens.scrub import (
    BENCH_VOLATILE,
    canonical_file_hash,
    raw_file_hash,
    scrub_payload,
)
from repro.goldens.verify import (
    EXIT_CLEAN,
    EXIT_DRIFT,
    EXIT_USAGE,
    REGEN_ENV,
    update_goldens,
    verify_goldens,
)
from repro.goldens.writer import RunWriter, atomic_write_json, atomic_write_text

__all__ = [
    "BENCH_VOLATILE",
    "EXIT_CLEAN",
    "EXIT_DRIFT",
    "EXIT_USAGE",
    "MANIFEST_NAME",
    "Manifest",
    "REGEN_ENV",
    "RunWriter",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_file_hash",
    "load_manifest",
    "manifest_errors",
    "raw_file_hash",
    "scrub_payload",
    "update_goldens",
    "verify_goldens",
]
