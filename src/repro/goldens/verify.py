"""``repro verify-goldens`` / ``repro update-goldens`` and the drift gate.

Exit-code contract (asserted by the test suite and relied on by CI):

* ``0`` — clean: every golden surface regenerated bit-identical;
* ``1`` — drift: at least one artifact changed, a golden is missing, or
  a committed golden fails its own manifest integrity check;
* ``2`` — usage: unknown surface name, or an update attempted without
  the :data:`REGEN_ENV` kill-switch.

The kill-switch is the gate's "absolute off": goldens can only be
rewritten when ``REPRO_REGEN_GOLDENS=1`` is set explicitly, and every
update prints the per-file, per-field diff summary so a semantic PR can
paste what changed.  Timing-transparent PRs never set it — for them the
gate hard-fails on any drift.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Callable

from repro.errors import ReproError
from repro.goldens.diff import diff_artifacts
from repro.goldens.manifest import (
    MANIFEST_NAME,
    Manifest,
    load_manifest,
    manifest_errors,
)
from repro.goldens.scrub import canonical_file_hash
from repro.goldens.surfaces import REPO_ROOT, Surface, get_surfaces
from repro.goldens.writer import RunWriter

EXIT_CLEAN = 0
EXIT_DRIFT = 1
EXIT_USAGE = 2

#: The explicit kill-switch without which goldens are read-only.
REGEN_ENV = "REPRO_REGEN_GOLDENS"

#: Default committed goldens tree.
DEFAULT_GOLDENS_DIR = REPO_ROOT / "goldens"

Out = Callable[[str], None]


def regen_enabled(environ: dict[str, str] | None = None) -> bool:
    """True iff the regeneration kill-switch is explicitly armed."""
    env = os.environ if environ is None else environ
    return env.get(REGEN_ENV, "") not in ("", "0")


def _generate_into(surface: Surface, directory: pathlib.Path, out: Out) -> Manifest:
    """Run one surface's generator crash-safely into ``directory``."""
    run = RunWriter(directory, surface.name, out=out)
    surface.generate(run)
    return run.finalize()


def _compare_surface(
    surface: Surface,
    golden_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    fresh: Manifest,
    out: Out,
) -> list[str]:
    """Diff a fresh run against the committed goldens for one surface.

    Returns drift lines (empty = bit-identical).  Integrity problems in
    the committed goldens themselves (truncation, single-byte edits) are
    reported alongside the per-field diff: the comparison hashes the
    golden files **as they are on disk**, not as the manifest remembers
    them, so a tampered golden can never hide behind a stale manifest
    entry that happens to match the fresh run.
    """
    lines = [
        f"golden integrity: {problem}"
        for problem in manifest_errors(golden_dir)
    ]
    try:
        golden = load_manifest(golden_dir)
    except ReproError:
        return lines  # no manifest: integrity lines already say so
    for name in sorted(set(golden.files) | set(fresh.files)):
        if name not in fresh.files:
            lines.append(f"{name}: in goldens but no longer generated")
            continue
        if name not in golden.files:
            lines.append(f"{name}: newly generated, not in goldens")
            continue
        entry = golden.files[name]
        golden_path = golden_dir / name
        if not golden_path.is_file():
            continue  # integrity lines already flagged the absence
        try:
            disk_hash = canonical_file_hash(golden_path, entry.volatile)
        except ReproError as exc:
            lines.append(f"{name}: unreadable golden ({exc})")
            continue
        if disk_hash == fresh.files[name].sha256:
            continue
        lines.append(f"{name}: canonical sha256 drifted")
        for field_line in diff_artifacts(
            golden_path, fresh_dir / name, entry.volatile
        ):
            lines.append(f"  {field_line}")
    return lines


def verify_goldens(
    goldens_dir: str | pathlib.Path | None = None,
    only: tuple[str, ...] | None = None,
    out: Out = print,
) -> int:
    """Regenerate every surface and compare against committed goldens.

    Prints one status line per surface and a per-file / per-field diff
    report for anything that drifted.  Returns an exit code per the
    module contract.
    """
    root = pathlib.Path(goldens_dir) if goldens_dir else DEFAULT_GOLDENS_DIR
    try:
        surfaces = get_surfaces(only)
    except ReproError as exc:
        out(f"verify-goldens: {exc}")
        return EXIT_USAGE
    drifted: list[str] = []
    for surface in surfaces:
        golden_dir = root / surface.name
        if not golden_dir.is_dir():
            out(f"[goldens] {surface.name:<12s} MISSING (no committed goldens)")
            drifted.append(surface.name)
            continue
        with tempfile.TemporaryDirectory(prefix="goldens-") as tmp:
            fresh_dir = pathlib.Path(tmp) / surface.name
            try:
                fresh = _generate_into(surface, fresh_dir, out)
            except ReproError as exc:
                out(f"[goldens] {surface.name:<12s} ERROR {exc}")
                drifted.append(surface.name)
                continue
            lines = _compare_surface(surface, golden_dir, fresh_dir, fresh, out)
        if lines:
            out(f"[goldens] {surface.name:<12s} DRIFT")
            for line in lines:
                out(f"    {line}")
            drifted.append(surface.name)
        else:
            out(
                f"[goldens] {surface.name:<12s} OK "
                f"({len(fresh.files)} file(s) bit-identical)"
            )
    clean = len(surfaces) - len(drifted)
    out(f"verify-goldens: {clean}/{len(surfaces)} surface(s) clean")
    if drifted:
        out(
            "drift detected in: "
            + ", ".join(drifted)
            + "\ntiming-transparent changes must keep goldens bit-identical;"
            + "\nfor a semantic change run: "
            + f"{REGEN_ENV}=1 make goldens   (and commit the printed diff)"
        )
        return EXIT_DRIFT
    return EXIT_CLEAN


def update_goldens(
    goldens_dir: str | pathlib.Path | None = None,
    only: tuple[str, ...] | None = None,
    out: Out = print,
    environ: dict[str, str] | None = None,
) -> int:
    """Regenerate the committed goldens (kill-switch protected).

    Refuses (exit 2) unless ``REPRO_REGEN_GOLDENS=1`` is set.  For each
    surface, generates a fresh run, prints the per-file / per-field diff
    against the previous goldens, then atomically replaces them (the
    surface's manifest is deleted first and rewritten last, so an
    interrupt mid-update leaves an invalid — never a half-new — golden).
    """
    if not regen_enabled(environ):
        out(
            f"update-goldens: refusing to rewrite goldens without the "
            f"{REGEN_ENV}=1 kill-switch\n"
            "(this is the CI drift gate's 'absolute off'; set it only for "
            "reviewed semantic changes)"
        )
        return EXIT_USAGE
    root = pathlib.Path(goldens_dir) if goldens_dir else DEFAULT_GOLDENS_DIR
    try:
        surfaces = get_surfaces(only)
    except ReproError as exc:
        out(f"update-goldens: {exc}")
        return EXIT_USAGE
    changed = 0
    for surface in surfaces:
        golden_dir = root / surface.name
        with tempfile.TemporaryDirectory(prefix="goldens-") as tmp:
            fresh_dir = pathlib.Path(tmp) / surface.name
            fresh = _generate_into(surface, fresh_dir, out)
            had_goldens = (golden_dir / MANIFEST_NAME).is_file()
            lines: list[str] = []
            if had_goldens:
                lines = _compare_surface(
                    surface, golden_dir, fresh_dir, fresh, out
                )
            if had_goldens and not lines:
                out(f"[goldens] {surface.name:<12s} unchanged")
                continue
            changed += 1
            if lines:
                out(f"[goldens] {surface.name:<12s} UPDATED")
                for line in lines:
                    out(f"    {line}")
            else:
                out(
                    f"[goldens] {surface.name:<12s} RECORDED "
                    f"({len(fresh.files)} file(s))"
                )
            # Install: claim the directory (deletes the old manifest
            # first), copy artifacts atomically, manifest last.
            install = RunWriter(golden_dir, surface.name, out=out)
            for name in sorted(fresh.files):
                entry = fresh.files[name]
                if name.endswith(".json"):
                    install.write_json(
                        name,
                        json.loads((fresh_dir / name).read_text()),
                        volatile=entry.volatile,
                    )
                else:
                    install.write_text(name, (fresh_dir / name).read_text())
            install.finalize()
    out(
        f"update-goldens: {changed}/{len(surfaces)} surface(s) rewritten "
        f"under {root}"
    )
    return EXIT_CLEAN


__all__ = [
    "EXIT_CLEAN",
    "EXIT_DRIFT",
    "EXIT_USAGE",
    "REGEN_ENV",
    "DEFAULT_GOLDENS_DIR",
    "regen_enabled",
    "update_goldens",
    "verify_goldens",
]
