"""Canonical artifact hashing with a volatile-field scrubber.

Golden artifacts must hash identically on every host, every run.  Two
things threaten that:

* **volatile fields** — host fingerprints, Python versions, wall-clock
  seconds, and throughput figures derived from them.  They belong *in*
  the artifact (a benchmark snapshot without its host is useless) but
  must never reach the hash, or the goldens stop being portable;
* **representation noise** — dict insertion order, trailing newlines,
  CRLF conversions.  The hash must see structure, not spelling.

JSON artifacts are therefore parsed, scrubbed of their declared volatile
paths, and hashed through the same type-tagged canonical encoder the
sharded kernel uses for state parity (:mod:`repro.sim.statehash`).
CSV and plain-text artifacts are hashed over newline-normalized UTF-8.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Sequence

from repro.errors import ExperimentError
from repro.sim.statehash import hash_payload

#: Volatile paths for ``BENCH_kernel.json`` (schema 4): everything
#: measured in wall-clock seconds (or derived from such a measurement)
#: plus the host fingerprint.  Per-backend sharded rows scrub their
#: timings *and* their rollback counters: the process backend's round
#: boundaries come from a conservative GVT estimate, so its rollback
#: totals are backend-shaped, and ``effective`` depends on whether the
#: host can fork at all.  What stays in the hash — the workload line,
#: the requested backend names, and each row's parity bit — is the
#: snapshot's portable semantic content.
BENCH_VOLATILE: tuple[str, ...] = (
    "python",
    "cpu_count",
    "host",
    "kernel",
    "sweeps",
    "baseline",
    "sharded.serial_wall_s",
    "sharded.events_per_sec_serial",
    "sharded.backends.effective",
    "sharded.backends.wall_s",
    "sharded.backends.events_per_sec",
    "sharded.backends.rollbacks",
    "sharded.backends.rollback_ratio",
    "sharded.backends.speedup_vs_serial",
    "sharded.backends.overhead_vs_serial",
)


def _match_prefix(path: tuple[str, ...], pattern: tuple[str, ...]) -> bool:
    """True if ``pattern`` (with ``*`` wildcard segments) equals ``path``."""
    if len(pattern) != len(path):
        return False
    return all(p in ("*", seg) for p, seg in zip(pattern, path))


def scrub_payload(payload: Any, volatile: Sequence[str] = ()) -> Any:
    """Drop every volatile dotted-path subtree from a parsed payload.

    ``volatile`` entries are dotted key paths (``host``, ``sweeps``,
    ``sharded.serial_wall_s``); a ``*`` segment matches any key.  List
    elements are transparent: ``burst_ablation.reduction`` scrubs the
    ``reduction`` key of every row in a ``burst_ablation`` list.  The
    input is never mutated.
    """
    patterns = [tuple(entry.split(".")) for entry in volatile]

    def walk(obj: Any, path: tuple[str, ...]) -> Any:
        if isinstance(obj, dict):
            out = {}
            for key, value in obj.items():
                key_path = path + (str(key),)
                if any(_match_prefix(key_path, pat) for pat in patterns):
                    continue
                out[key] = walk(value, key_path)
            return out
        if isinstance(obj, list):
            return [walk(item, path) for item in obj]
        return obj

    return walk(payload, ())


def normalize_text(text: str) -> str:
    """Newline-normalize text so checkouts never change a hash."""
    return text.replace("\r\n", "\n").replace("\r", "\n")


def raw_file_hash(path: str | pathlib.Path) -> str:
    """SHA-256 hex digest of the file's exact bytes (truncation guard)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def canonical_payload(
    path: str | pathlib.Path, volatile: Sequence[str] = ()
) -> Any:
    """The drift-comparable content of an artifact file.

    JSON files parse to their scrubbed payload; everything else (CSV,
    plain text) to its newline-normalized text.
    """
    target = pathlib.Path(path)
    if target.suffix == ".json":
        try:
            payload = json.loads(target.read_text())
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"{target}: not valid JSON (truncated artifact?): {exc}"
            ) from None
        return scrub_payload(payload, volatile)
    return normalize_text(target.read_text())


def canonical_file_hash(
    path: str | pathlib.Path, volatile: Sequence[str] = ()
) -> str:
    """Canonical SHA-256 of an artifact, volatile fields scrubbed.

    This is the hash recorded in manifests and compared by the drift
    gate: equal iff the artifacts' non-volatile content is structurally
    identical, regardless of host, key order, or newline convention.
    """
    content = canonical_payload(path, volatile)
    if isinstance(content, str):
        return hashlib.sha256(content.encode("utf-8")).hexdigest()
    return hash_payload(content)
