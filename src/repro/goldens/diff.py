"""Per-file and per-field drift reports.

When the drift gate fails, the report must say *what* moved, not just
that a hash changed: which file, which JSON field or CSV cell, golden
value vs current value.  That is what makes the gate reviewable — a
semantic PR pastes this report next to the regenerated goldens.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Sequence

from repro.goldens.scrub import normalize_text, scrub_payload

#: Cap per-file reports so a wholesale rewrite stays readable.
MAX_DIFFS_PER_FILE = 20


def _fmt(value: Any) -> str:
    text = json.dumps(value, sort_keys=True) if not isinstance(value, str) else value
    return text if len(text) <= 60 else text[:57] + "..."


def _diff_payload(
    path: str, golden: Any, current: Any, out: list[str]
) -> None:
    """Recursively diff two scrubbed JSON payloads, field by field."""
    if len(out) > MAX_DIFFS_PER_FILE:
        return
    if isinstance(golden, dict) and isinstance(current, dict):
        for key in sorted(set(golden) | set(current)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in golden:
                out.append(f"{sub}: only in current ({_fmt(current[key])})")
            elif key not in current:
                out.append(f"{sub}: only in golden ({_fmt(golden[key])})")
            else:
                _diff_payload(sub, golden[key], current[key], out)
        return
    if isinstance(golden, list) and isinstance(current, list):
        if len(golden) != len(current):
            out.append(
                f"{path}: {len(golden)} golden item(s) vs "
                f"{len(current)} current"
            )
        for index, (g, c) in enumerate(zip(golden, current)):
            _diff_payload(f"{path}[{index}]", g, c, out)
        return
    if golden != current or type(golden) is not type(current):
        out.append(f"{path}: golden {_fmt(golden)} != current {_fmt(current)}")


def _diff_csv(golden_text: str, current_text: str, out: list[str]) -> None:
    """Diff two CSV artifacts cell by cell, naming row and column."""
    golden_rows = list(csv.reader(io.StringIO(golden_text)))
    current_rows = list(csv.reader(io.StringIO(current_text)))
    if not golden_rows or not current_rows:
        out.append("csv: empty golden or current file")
        return
    header_g, header_c = golden_rows[0], current_rows[0]
    if header_g != header_c:
        out.append(f"header: golden {header_g} != current {header_c}")
    if len(golden_rows) != len(current_rows):
        out.append(
            f"row count: {len(golden_rows) - 1} golden data row(s) vs "
            f"{len(current_rows) - 1} current"
        )
    columns = header_g if header_g == header_c else None
    for row_index, (row_g, row_c) in enumerate(
        zip(golden_rows[1:], current_rows[1:]), start=1
    ):
        if len(out) > MAX_DIFFS_PER_FILE:
            return
        width = max(len(row_g), len(row_c))
        for col in range(width):
            cell_g = row_g[col] if col < len(row_g) else "<missing>"
            cell_c = row_c[col] if col < len(row_c) else "<missing>"
            if cell_g != cell_c:
                label = (
                    columns[col]
                    if columns is not None and col < len(columns)
                    else f"col {col}"
                )
                out.append(
                    f"row {row_index} [{label}]: golden {cell_g!r} "
                    f"!= current {cell_c!r}"
                )


def _diff_text(golden_text: str, current_text: str, out: list[str]) -> None:
    golden_lines = golden_text.splitlines()
    current_lines = current_text.splitlines()
    if len(golden_lines) != len(current_lines):
        out.append(
            f"line count: {len(golden_lines)} golden vs {len(current_lines)}"
        )
    for number, (line_g, line_c) in enumerate(
        zip(golden_lines, current_lines), start=1
    ):
        if len(out) > MAX_DIFFS_PER_FILE:
            return
        if line_g != line_c:
            out.append(f"line {number}: golden {line_g!r} != current {line_c!r}")


def diff_artifacts(
    golden_path: str | pathlib.Path,
    current_path: str | pathlib.Path,
    volatile: Sequence[str] = (),
) -> list[str]:
    """Per-field differences between a golden artifact and a fresh one.

    JSON files are compared as scrubbed payloads (volatile fields never
    produce diffs); CSV files cell by cell with header-named columns;
    anything else line by line.  Returns human-readable lines, capped at
    :data:`MAX_DIFFS_PER_FILE` (with a trailing elision marker).
    """
    golden_path = pathlib.Path(golden_path)
    current_path = pathlib.Path(current_path)
    out: list[str] = []
    if golden_path.suffix == ".json":
        try:
            golden = scrub_payload(
                json.loads(golden_path.read_text()), volatile
            )
            current = scrub_payload(
                json.loads(current_path.read_text()), volatile
            )
        except json.JSONDecodeError as exc:
            return [f"unparseable JSON (truncated artifact?): {exc}"]
        _diff_payload("", golden, current, out)
    else:
        golden_text = normalize_text(golden_path.read_text())
        current_text = normalize_text(current_path.read_text())
        if golden_path.suffix == ".csv":
            _diff_csv(golden_text, current_text, out)
        else:
            _diff_text(golden_text, current_text, out)
    if len(out) > MAX_DIFFS_PER_FILE:
        extra = len(out) - MAX_DIFFS_PER_FILE
        out = out[:MAX_DIFFS_PER_FILE] + [f"... ({extra} more difference(s))"]
    return out
