"""Crash-safe artifact writing: atomic files, manifest written last.

The invariant every run must keep, even under ``SIGKILL`` at the worst
possible instant:

    a run directory either contains a complete artifact set crowned by
    ``MANIFEST.json``, or it is detectably invalid — never a truncated
    or partial file that a reader could mistake for a result.

Three mechanisms enforce it:

* every file is written to a ``.tmp-*`` sibling, flushed, ``fsync``'d,
  and atomically ``os.replace``'d into place (readers see the old bytes
  or the new bytes, nothing in between);
* the run-level ``MANIFEST.json`` is written *after* every artifact it
  lists (and via the same atomic dance), so its existence proves the
  set is complete;
* on the next run, :class:`RunWriter` detects a directory with
  artifacts but no manifest — the fingerprint of an interrupted run —
  and cleans the stale partials before writing anything.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExperimentError
from repro.goldens.manifest import MANIFEST_NAME, FileEntry, Manifest
from repro.goldens.scrub import canonical_file_hash, raw_file_hash

#: Prefix of in-flight temporary files (cleaned up by the next run).
TMP_PREFIX = ".tmp-"


def _fsync_dir(directory: pathlib.Path) -> None:
    """Flush the directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: str | pathlib.Path, text: str, encoding: str = "utf-8"
) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename).

    The target is never truncated in place: a crash mid-write leaves
    either the previous content or the new content, plus at worst an
    orphaned ``.tmp-*`` file that the next :class:`RunWriter` removes.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=TMP_PREFIX + target.name + "-", dir=target.parent
    )
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(target.parent)
    return target


def atomic_write_json(
    path: str | pathlib.Path, payload: Any, sort_keys: bool = True
) -> pathlib.Path:
    """Atomically write ``payload`` as stable, human-diffable JSON."""
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=sort_keys) + "\n"
    )


class RunWriter:
    """Crash-safe writer for one run's artifact directory.

    Usage::

        run = RunWriter(out_dir, surface="figure2")
        run.write_csv("figure2.csv", rows)
        run.write_json("expectations.json", checks)
        manifest = run.finalize()      # writes MANIFEST.json, last

    Construction claims the directory: orphaned temp files and stale
    partial artifacts from an interrupted previous run are removed (and
    reported via ``self.cleaned_stale``), as is any previous completed
    run — a run directory always reflects exactly one run.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        surface: str,
        out: Callable[[str], None] | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.surface = surface
        self.entries: dict[str, FileEntry] = {}
        self.cleaned_stale: list[str] = []
        self.finalized = False
        self.directory.mkdir(parents=True, exist_ok=True)
        self._clean(out)

    def _clean(self, out: Callable[[str], None] | None) -> None:
        """Reset the directory, reporting stale partials from a crash."""
        manifest_path = self.directory / MANIFEST_NAME
        had_manifest = manifest_path.is_file()
        # Remove the manifest FIRST: from this instant the directory is
        # invalid, so a crash anywhere in the rewrite cannot leave an
        # old manifest blessing a mix of old and new artifacts.
        if had_manifest:
            manifest_path.unlink()
            _fsync_dir(self.directory)
        for path in sorted(self.directory.iterdir()):
            if not path.is_file():
                continue
            if not had_manifest and not path.name.startswith(TMP_PREFIX):
                # Artifacts without a manifest: an interrupted run.
                self.cleaned_stale.append(path.name)
                if out is not None:
                    out(
                        f"[goldens] {self.surface}: removing stale partial "
                        f"{path.name!r} from an interrupted run"
                    )
            path.unlink()

    def _record(self, name: str, volatile: Sequence[str]) -> pathlib.Path:
        path = self.directory / name
        self.entries[name] = FileEntry(
            sha256=canonical_file_hash(path, volatile),
            raw_sha256=raw_file_hash(path),
            bytes=path.stat().st_size,
            volatile=tuple(volatile),
        )
        return path

    def _check_name(self, name: str) -> None:
        if self.finalized:
            raise ExperimentError(
                f"run {self.surface!r} already finalized; cannot add {name!r}"
            )
        if "/" in name or name == MANIFEST_NAME or name.startswith(TMP_PREFIX):
            raise ExperimentError(f"invalid artifact name {name!r}")
        if name in self.entries:
            raise ExperimentError(f"artifact {name!r} written twice")

    def write_text(self, name: str, text: str) -> pathlib.Path:
        """Atomically write a plain-text artifact."""
        self._check_name(name)
        atomic_write_text(self.directory / name, text)
        return self._record(name, ())

    def write_json(
        self, name: str, payload: Any, volatile: Sequence[str] = ()
    ) -> pathlib.Path:
        """Atomically write a JSON artifact.

        ``volatile`` names dotted field paths excluded from the
        manifest's canonical hash (but kept in the file itself).
        """
        self._check_name(name)
        atomic_write_json(self.directory / name, payload)
        return self._record(name, volatile)

    def write_csv(self, name: str, rows: Iterable[Any]) -> pathlib.Path:
        """Atomically write dataclass/dict rows as a CSV artifact."""
        from repro.metrics.export import to_csv

        self._check_name(name)
        atomic_write_text(self.directory / name, to_csv(rows))
        return self._record(name, ())

    def finalize(self) -> Manifest:
        """Write ``MANIFEST.json`` — the run is only now valid."""
        if self.finalized:
            raise ExperimentError(f"run {self.surface!r} finalized twice")
        manifest = Manifest(surface=self.surface, files=dict(self.entries))
        atomic_write_text(self.directory / MANIFEST_NAME, manifest.to_json())
        self.finalized = True
        return manifest
