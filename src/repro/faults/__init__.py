"""Fault injection and chaos testing for the simulated DSM.

* :mod:`repro.faults.plan` — declarative, seeded fault schedules
  (:class:`~repro.faults.plan.FaultPlan` built from
  :func:`~repro.faults.plan.crash` / :func:`~repro.faults.plan.restart` /
  :func:`~repro.faults.plan.partition` / :func:`~repro.faults.plan.heal` /
  :func:`~repro.faults.plan.delay` / :func:`~repro.faults.plan.duplicate`
  events).
* :mod:`repro.faults.injector` — :class:`~repro.faults.injector.FaultInjector`
  executes a plan against a live :class:`~repro.core.machine.DSMMachine`,
  hooking the network send/delivery paths and the process scheduler.
* :mod:`repro.faults.failover` — epoch-fenced group-root failover:
  :class:`~repro.faults.failover.RootFailoverManager` re-elects a
  sequencer after a root crash and rebuilds its sequence space and lock
  table from member-side evidence.
* :mod:`repro.faults.chaos` — the seeded chaos harness behind the
  ``repro chaos`` CLI: workloads under fault schedules with
  mutual-exclusion and RMW-chain invariants checked throughout.
* :mod:`repro.faults.campaign` — the randomized campaign engine behind
  the ``repro campaign`` CLI: :func:`~repro.faults.campaign.generate_plan`
  draws seeded fault plans from weighted profiles,
  :func:`~repro.faults.campaign.run_campaign` sweeps them across
  workloads/topologies/shard policies under the online invariant
  oracles, and :func:`~repro.faults.campaign.minimize_failure` ddmin-
  shrinks any failing plan to a 1-minimal reproducer bundle.

See ``docs/FAULTS.md`` for the fault model and recovery parameters.
"""

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    crash,
    delay,
    duplicate,
    heal,
    partition,
    restart,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    generate_plan,
    minimize_failure,
    run_campaign,
)
from repro.faults.failover import RootFailoverManager
from repro.faults.injector import FaultInjector

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RootFailoverManager",
    "generate_plan",
    "minimize_failure",
    "run_campaign",
    "crash",
    "delay",
    "duplicate",
    "heal",
    "partition",
    "restart",
]
