"""Group-root failover: re-election, reconstruction, epoch fencing.

The group root is the single sequencing arbiter and lock manager of its
sharing group (Section 4), which makes it the protocol's one stateful
single point of failure.  This module restores the paper's liveness
story when a root crashes:

1. **Detection** — the fault injector notifies the
   :class:`RootFailoverManager` of every crash; after a short detection
   delay (modelling missed heartbeats against the liveness oracle) an
   election starts for each group the dead node rooted.
2. **Election** — deterministic: the successor is the lowest-numbered
   live member.  No votes are needed because the liveness oracle is
   shared; the delay models the time to notice, not to agree.
3. **Reconstruction** — the successor queries every live member for its
   *sequenced* state: the highest applied sequence number, the last
   applied value of every variable (the interface's ``_applied`` image,
   which unlike the store never contains speculative local writes), and
   its local lock copies.  The new sequencer adopts the quorum maximum
   ``next_seq`` and the matching image; any member behind that point
   catches up through the ordinary NACK path against the refresh
   writes.
4. **Epoch fencing** — the successor's engine runs under
   ``old epoch + 1``.  Every packet and heartbeat is stamped, members
   discard stale-epoch traffic, and the new root discards update
   requests stamped with the old epoch — writes issued into the
   failover window die exactly like a non-holder's speculative writes.
5. **Lock rebuild** — a member whose own lock copy reads
   ``grant(self)`` claims the lock (ties broken by the sequence number
   of the last applied lock write, then lowest id); members whose copy
   reads ``request(-self)`` repopulate the wait queue in id order.
   Rebuilt grants are stamped ``rebuilt`` so an unwilling holder (its
   release died with the old root) declines by re-sharing FREE.
   Requesters whose evidence was overwritten by a later grant re-issue
   through the existing :class:`~repro.locks.gwc_lock.LockRetryPolicy`.

Everything here is driven by simulator events and the seeded oracle, so
failover runs are as deterministic as any other chaos run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

from repro.errors import FaultError, RootFailoverError
from repro.memory.varspace import (
    FREE_VALUE,
    grant_value,
    holder_of,
    requester_of,
)
from repro.net.message import Message

#: Fallback detection delay / query timeout multipliers (x nack_timeout).
_DETECTION_MULT = 3.0
_QUERY_TIMEOUT_MULT = 2.0


@dataclass(frozen=True, slots=True)
class FailoverQuery:
    """Successor -> member: send me your sequenced state for ``group``."""

    group: str
    epoch: int
    successor: int
    #: True on resent queries (exempt from the loss model, like all
    #: recovery retransmissions).
    retransmit: bool = False


@dataclass(frozen=True, slots=True)
class FailoverReply:
    """Member -> successor: sequenced-state evidence for reconstruction."""

    group: str
    member: int
    epoch: int
    #: The member's apply cursor: everything below is applied in order.
    next_seq: int
    #: var -> last *sequenced* value applied here (never speculative).
    image: dict
    #: lock -> the member's local lock copy (claim / request evidence).
    lock_state: dict
    #: lock -> sequence number of the last applied lock write (claim
    #: tie-breaking across epochs of grant history).
    lock_seq: dict
    retransmit: bool = False


class _Election:
    """Mutable state of one in-flight re-election."""

    __slots__ = ("group", "old_root", "successor", "epoch", "replies", "rounds")

    def __init__(self, group: str, old_root: int, successor: int, epoch: int):
        self.group = group
        self.old_root = old_root
        self.successor = successor
        self.epoch = epoch
        self.replies: dict[int, FailoverReply] = {}
        self.rounds = 0


class RootFailoverManager:
    """Elects and installs a successor sequencer for crashed group roots."""

    def __init__(
        self,
        machine: "DSMMachine",  # noqa: F821
        injector: "FaultInjector",  # noqa: F821
        detection_delay: float | None = None,
        query_timeout: float | None = None,
        max_query_rounds: int = 25,
    ) -> None:
        if machine.nack_timeout is None:
            raise FaultError(
                "root failover needs reliability enabled (reliable=True or "
                "loss_rate > 0): member evidence rides the NACK/heartbeat "
                "machinery"
            )
        self.machine = machine
        self.injector = injector
        self.sim = machine.sim
        self.detection_delay = (
            detection_delay
            if detection_delay is not None
            else _DETECTION_MULT * machine.nack_timeout
        )
        self.query_timeout = (
            query_timeout
            if query_timeout is not None
            else _QUERY_TIMEOUT_MULT * machine.nack_timeout
        )
        self.max_query_rounds = max_query_rounds
        self._pending: dict[str, _Election] = {}
        #: Diagnostics.
        self.elections = 0
        self.takeovers = 0
        self.query_rounds = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Hook into the machine's dispatch and the injector's crashes."""
        if self.machine.failover_manager is not None:
            raise FaultError("a root failover manager is already installed")
        self.machine.register_kind_handler("failover", self._on_message)
        self.machine.failover_manager = self
        self.injector.add_crash_listener(self._on_crash)
        self.injector.failover_manager = self

    def _on_message(self, node_id: int, msg: Message) -> None:
        if msg.kind == "failover.query":
            self._on_query(node_id, msg.payload)
        elif msg.kind == "failover.reply":
            self._on_reply(node_id, msg.payload)
        else:
            raise FaultError(f"unknown failover message kind {msg.kind!r}")

    # ------------------------------------------------------------------
    # Detection and election
    # ------------------------------------------------------------------

    def _on_crash(self, node: int) -> None:
        for group in self.machine.groups.values():
            if group.root == node and group.name not in self._pending:
                self.sim.schedule(
                    self.detection_delay,
                    partial(self._start_election, group.name, node),
                )

    def _start_election(self, group_name: str, crashed_root: int) -> None:
        group = self.machine.groups[group_name]
        if group.root != crashed_root or group_name in self._pending:
            return  # Already failed over (or a newer election runs).
        if not self.injector.is_crashed(crashed_root):
            return  # The root restarted within the detection window.
        old_engine = self.machine.nodes[crashed_root].iface.root_engines.get(
            group_name
        )
        if old_engine is not None:
            old_engine.depose()
        live = [m for m in group.members if not self.injector.is_crashed(m)]
        if not live:
            raise RootFailoverError(
                f"group {group_name!r}: root {crashed_root} crashed and no "
                "member is live to succeed it"
            )
        successor = min(live)
        epoch = (old_engine.epoch if old_engine is not None else 0) + 1
        election = _Election(group_name, crashed_root, successor, epoch)
        self._pending[group_name] = election
        self.elections += 1
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now,
                "failover.election",
                group=group_name,
                old_root=crashed_root,
                successor=successor,
                epoch=epoch,
            )
        self._send_queries(election, retransmit=False)

    def _send_queries(self, election: _Election, retransmit: bool) -> None:
        self.query_rounds += 1
        group = self.machine.groups[election.group]
        query = FailoverQuery(
            group=election.group,
            epoch=election.epoch,
            successor=election.successor,
            retransmit=retransmit,
        )
        packet_bytes = self.machine.params.packet_bytes
        for member in group.members:
            if member in election.replies or self.injector.is_crashed(member):
                continue
            self.machine.network.send(
                Message(
                    src=election.successor,
                    dst=member,
                    kind="failover.query",
                    payload=query,
                    size_bytes=packet_bytes,
                )
            )
        self.sim.schedule(
            self.query_timeout, partial(self._query_check, election)
        )

    def _query_check(self, election: _Election) -> None:
        if self._pending.get(election.group) is not election:
            return  # Takeover already happened.
        if self.injector.is_crashed(election.successor):
            # The successor died mid-election: re-elect from scratch.
            del self._pending[election.group]
            self._start_election(election.group, election.old_root)
            return
        election.rounds += 1
        if election.rounds >= self.max_query_rounds:
            raise RootFailoverError(
                f"group {election.group!r}: reconstruction quorum never "
                f"assembled after {election.rounds} query rounds "
                f"(replies from {sorted(election.replies)})"
            )
        if not self._maybe_takeover(election):
            self._send_queries(election, retransmit=True)

    # ------------------------------------------------------------------
    # Member evidence
    # ------------------------------------------------------------------

    def _on_query(self, member: int, query: FailoverQuery) -> None:
        if self.injector.is_crashed(member):
            return
        group = self.machine.groups[query.group]
        node = self.machine.nodes[member]
        iface = node.iface
        applied = iface._applied
        image = {
            var: applied.get(var, decl.initial)
            for var, decl in group.variables.items()
        }
        lock_state = {name: node.store.read(name) for name in group.locks}
        lock_seq = {
            name: iface._applied_lock_seq.get(name, -1) for name in group.locks
        }
        reply = FailoverReply(
            group=query.group,
            member=member,
            epoch=query.epoch,
            next_seq=iface._next_seq[query.group],
            image=image,
            lock_state=lock_state,
            lock_seq=lock_seq,
            retransmit=query.retransmit,
        )
        size = (
            self.machine.params.packet_bytes
            + sum(decl.size_bytes for decl in group.variables.values())
            + 16 * len(group.locks)
        )
        self.machine.network.send(
            Message(
                src=member,
                dst=query.successor,
                kind="failover.reply",
                payload=reply,
                size_bytes=size,
            )
        )

    def _on_reply(self, node_id: int, reply: FailoverReply) -> None:
        election = self._pending.get(reply.group)
        if (
            election is None
            or reply.epoch != election.epoch
            or node_id != election.successor
        ):
            return  # Stale reply from a superseded election.
        election.replies[reply.member] = reply
        self._maybe_takeover(election)

    def _maybe_takeover(self, election: _Election) -> bool:
        group = self.machine.groups[election.group]
        waiting = [
            m
            for m in group.members
            if m not in election.replies and not self.injector.is_crashed(m)
        ]
        if waiting or not election.replies:
            return False
        self._takeover(election)
        return True

    # ------------------------------------------------------------------
    # Takeover: sequencer adoption, refresh, lock rebuild
    # ------------------------------------------------------------------

    def _takeover(self, election: _Election) -> None:
        from repro.consistency.gwc import GroupRootEngine

        machine = self.machine
        group = machine.groups[election.group]
        # The member with the longest applied prefix carries the
        # authoritative image; its cursor becomes the epoch start.
        best = min(
            election.replies.values(), key=lambda r: (-r.next_seq, r.member)
        )
        next_seq = best.next_seq
        successor = election.successor

        engine = GroupRootEngine(machine.sim, group, machine.params.packet_bytes)
        engine.adopt_state(election.epoch, next_seq, dict(best.image))
        engine.enable_reliability(heartbeat_interval=machine.nack_timeout)
        for decl in group.locks.values():
            engine.add_lock(decl)
        old_engine = machine.nodes[election.old_root].iface.root_engines.get(
            election.group
        )
        if old_engine is not None and old_engine._lock_recovery:
            engine.configure_lock_recovery(
                old_engine._lease_duration,
                old_engine._lease_is_crashed,
                old_engine._lease_max_extensions,
            )
        for manager in engine.lock_managers.values():
            manager.on_reclaim = self.injector._note_reclaim

        group.retarget_root(successor, start_seq=next_seq)
        iface = machine.nodes[successor].iface
        iface.root_engines[election.group] = engine
        iface._adopt_epoch(election.group, election.epoch, next_seq)

        # Refresh every data variable under the new epoch.  The writes
        # are attributed to the *old* root: the successor's own echo
        # filter would drop a refresh of mutex data it originated, and
        # the old root is crashed so nothing else claims that origin.
        for var in sorted(group.variables):
            engine.sequence_plain_write(
                var, engine.authoritative_read(var), election.old_root
            )

        # Rebuild each lock from first-person member evidence.
        for name in sorted(group.locks):
            holder, pending = self._reconstruct_lock(election, name)
            manager = engine.lock_managers[name]
            if holder is None and pending:
                holder, pending = pending[0], pending[1:]
            manager.queue.extend(pending)
            if holder is not None:
                manager._grant_to(holder)
                engine.sequence_rebuilt_lock(name, grant_value(holder))
            else:
                engine.sequence_rebuilt_lock(name, FREE_VALUE)

        del self._pending[election.group]
        self.takeovers += 1
        machine.network.stats.failovers += 1
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now,
                "failover.takeover",
                group=election.group,
                old_root=election.old_root,
                root=successor,
                epoch=election.epoch,
                next_seq=next_seq,
                quorum=sorted(election.replies),
            )

    def _reconstruct_lock(
        self, election: _Election, name: str
    ) -> tuple[int | None, list[int]]:
        """(holder, pending queue) from the quorum's lock evidence.

        Only *first-person* evidence counts: a member claims the lock
        when its own copy reads ``grant(self)`` and joins the queue when
        its copy reads ``request(-self)``.  Third-party copies (everyone
        sees ``grant(holder)``) are ignored — they would re-grant to a
        crashed ex-holder.  Requesters whose ``-id`` evidence was
        overwritten by a later sequenced grant re-issue through the
        retry policy instead.
        """
        claims: list[tuple[int, int]] = []
        pending: list[int] = []
        for reply in election.replies.values():
            value = reply.lock_state.get(name, FREE_VALUE)
            if holder_of(value) == reply.member:
                claims.append((reply.lock_seq.get(name, -1), reply.member))
            elif requester_of(value) == reply.member:
                pending.append(reply.member)
        holder: int | None = None
        if claims:
            claims.sort(key=lambda claim: (-claim[0], claim[1]))
            holder = claims[0][1]
        pending.sort()
        return holder, [m for m in pending if m != holder]
