"""Declarative fault schedules.

A :class:`FaultPlan` is an immutable, time-sorted list of
:class:`FaultEvent` records plus a seed for the injector's random
decisions (probabilistic delays/duplicates and backoff jitter feed from
seeded streams).  The same plan and seed always produce the same fault
sequence — chaos runs are reproducible bug reports, not flaky ones.

Build plans with the factory helpers::

    plan = FaultPlan(
        [
            crash(50e-6, holder_of="counter_lock"),
            restart(120e-6, node=2),       # only if the crash named node 2
            partition(40e-6, nodes=(3, 4), until=90e-6),
            delay(10e-6, extra=5e-6, until=200e-6, kinds=("gwc.apply",)),
            duplicate(10e-6, until=200e-6, probability=0.25),
        ],
        seed=7,
    )

Validation is two-stage: each event's shape is checked at construction,
and :meth:`FaultPlan.validate` checks node ids against a machine size.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import FaultError

#: Event kinds.
CRASH = "crash"
RESTART = "restart"
PARTITION = "partition"
HEAL = "heal"
DELAY = "delay"
DUPLICATE = "duplicate"

_KINDS = (CRASH, RESTART, PARTITION, HEAL, DELAY, DUPLICATE)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.  Use the module factory helpers to build."""

    time: float
    kind: str
    #: crash/restart: the target node.  A crash may instead name a lock
    #: via ``holder_of`` to hit whichever node holds it at fire time, or
    #: a sharing group via ``root_of`` to hit the group's *current* root
    #: (the sequencer/lock-manager node) — the canonical trigger for the
    #: root-failover protocol.
    node: int | None = None
    holder_of: str | None = None
    root_of: str | None = None
    #: partition/heal: one side of the cut (messages crossing the
    #: boundary are dropped in both directions).
    nodes: tuple[int, ...] = ()
    #: delay/duplicate: restrict to these message kinds (empty = all).
    message_kinds: tuple[str, ...] = ()
    #: partition/delay/duplicate: automatic end time.
    until: float | None = None
    #: delay: extra delivery latency in seconds, stretched by up to
    #: ``jitter`` fraction (seeded).
    extra_delay: float = 0.0
    jitter: float = 0.0
    #: delay/duplicate: per-message apply probability.
    probability: float = 1.0
    #: delay: False lets a delayed message overtake later traffic on the
    #: same channel (a reorder fault); True keeps channels FIFO.
    preserve_fifo: bool = True
    #: duplicate: total delivered copies of an affected message.
    copies: int = 2

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultError(f"fault time must be >= 0: {self.time}")
        if self.kind not in _KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; known: {_KINDS}")
        if self.until is not None and self.until <= self.time:
            raise FaultError(
                f"{self.kind} fault: until={self.until} must be after "
                f"time={self.time}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultError(
                f"{self.kind} fault: probability must be in (0, 1]: "
                f"{self.probability}"
            )
        if self.kind == CRASH:
            targets = sum(
                t is not None for t in (self.node, self.holder_of, self.root_of)
            )
            if targets != 1:
                raise FaultError(
                    "crash fault needs exactly one of node=, holder_of=, "
                    "or root_of="
                )
        elif self.kind == RESTART:
            if self.node is None:
                raise FaultError("restart fault needs node=")
        elif self.kind in (PARTITION, HEAL):
            if not self.nodes:
                raise FaultError(f"{self.kind} fault needs a non-empty nodes=")
            if len(set(self.nodes)) != len(self.nodes):
                raise FaultError(f"{self.kind} fault: duplicate nodes {self.nodes}")
        elif self.kind == DELAY:
            if self.extra_delay <= 0.0:
                raise FaultError(
                    f"delay fault: extra_delay must be > 0: {self.extra_delay}"
                )
            if self.jitter < 0.0:
                raise FaultError(f"delay fault: jitter must be >= 0: {self.jitter}")
        elif self.kind == DUPLICATE:
            if self.copies < 2:
                raise FaultError(
                    f"duplicate fault: copies must be >= 2: {self.copies}"
                )


@dataclass(frozen=True, init=False)
class FaultPlan:
    """A seeded, time-ordered fault schedule."""

    events: tuple[FaultEvent, ...]
    seed: int

    def __init__(self, events: "Iterable[FaultEvent]" = (), seed: int = 0) -> None:  # noqa: F821
        ordered = tuple(sorted(events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)
        object.__setattr__(self, "seed", int(seed))

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_nodes: int,
        horizon: float,
        profile: str = "mixed",
        **kwargs: Any,
    ) -> "FaultPlan":
        """Generate a seeded random plan from a named campaign profile.

        Deterministic per ``(seed, n_nodes, horizon, profile)`` and
        always valid for ``n_nodes`` — see
        :func:`repro.faults.campaign.generate_plan` (this is a
        convenience re-export; the campaign module owns the profiles).
        """
        from repro.faults.campaign import generate_plan

        return generate_plan(seed, n_nodes, horizon, profile, **kwargs)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (repro bundles; round-trips exactly)."""
        return {
            "seed": self.seed,
            "events": [dataclasses.asdict(event) for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan written by :meth:`to_payload` (tuples restored)."""
        try:
            events = []
            for raw in payload["events"]:
                fields = dict(raw)
                fields["nodes"] = tuple(fields.get("nodes", ()))
                fields["message_kinds"] = tuple(fields.get("message_kinds", ()))
                events.append(FaultEvent(**fields))
            return cls(events, seed=payload["seed"])
        except (KeyError, TypeError) as exc:
            raise FaultError(f"malformed fault-plan payload: {exc}") from exc

    def validate(self, n_nodes: int) -> None:
        """Check every event against a machine of ``n_nodes`` nodes."""
        all_nodes = set(range(n_nodes))
        for event in self.events:
            if event.node is not None and event.node not in all_nodes:
                raise FaultError(
                    f"{event.kind} fault targets node {event.node}, but the "
                    f"machine has nodes 0..{n_nodes - 1}"
                )
            if event.nodes:
                bad = set(event.nodes) - all_nodes
                if bad:
                    raise FaultError(
                        f"{event.kind} fault names unknown node(s) {sorted(bad)}"
                    )
                if set(event.nodes) >= all_nodes:
                    raise FaultError(
                        f"{event.kind} fault isolates every node; one side "
                        "of a partition must be a proper subset"
                    )


# ----------------------------------------------------------------------
# Factory helpers
# ----------------------------------------------------------------------


def crash(
    time: float,
    node: int | None = None,
    holder_of: str | None = None,
    root_of: str | None = None,
) -> FaultEvent:
    """Crash a node: kill its processes, drop its traffic both ways.

    Name a fixed ``node``, or ``holder_of=<lock>`` to crash whichever
    node holds that lock when the fault fires (retrying briefly if the
    lock is momentarily free) — the canonical mid-critical-section kill.
    ``root_of=<group>`` instead crashes the group's current root while
    one of the group's locks is held by a live non-root member, which is
    the trigger for sequencer re-election and lock-state reconstruction
    (see :mod:`repro.faults.failover`).
    """
    return FaultEvent(
        time=time, kind=CRASH, node=node, holder_of=holder_of, root_of=root_of
    )


def restart(time: float, node: int) -> FaultEvent:
    """Restart a crashed node: re-inshare group state, resume traffic."""
    return FaultEvent(time=time, kind=RESTART, node=node)


def partition(
    time: float, nodes: "Iterable[int]", until: float | None = None  # noqa: F821
) -> FaultEvent:
    """Cut the links between ``nodes`` and everyone else (both ways)."""
    return FaultEvent(time=time, kind=PARTITION, nodes=tuple(nodes), until=until)


def heal(time: float, nodes: "Iterable[int]") -> FaultEvent:  # noqa: F821
    """Heal a partition previously cut with the same ``nodes`` set."""
    return FaultEvent(time=time, kind=HEAL, nodes=tuple(nodes))


def delay(
    time: float,
    extra: float,
    until: float | None = None,
    kinds: "Iterable[str]" = (),  # noqa: F821
    nodes: "Iterable[int]" = (),  # noqa: F821
    jitter: float = 0.0,
    probability: float = 1.0,
    preserve_fifo: bool = True,
) -> FaultEvent:
    """Add ``extra`` seconds of latency to matching messages.

    ``nodes`` restricts the fault to messages touching those nodes as
    source or destination; ``preserve_fifo=False`` turns the delay into
    a reorder fault (only safe for protocols that tolerate reordering,
    i.e. GWC with reliability enabled).
    """
    return FaultEvent(
        time=time,
        kind=DELAY,
        until=until,
        extra_delay=extra,
        message_kinds=tuple(kinds),
        nodes=tuple(nodes),
        jitter=jitter,
        probability=probability,
        preserve_fifo=preserve_fifo,
    )


def duplicate(
    time: float,
    until: float | None = None,
    kinds: "Iterable[str]" = ("gwc.apply",),  # noqa: F821
    probability: float = 1.0,
    copies: int = 2,
) -> FaultEvent:
    """Deliver matching messages ``copies`` times.

    Defaults to ``gwc.apply`` packets only: the sequenced apply stream
    is duplicate-tolerant once reliability is enabled, while duplicating
    request/release traffic of the non-GWC lock protocols would forge
    protocol actions no real network stack produces.
    """
    return FaultEvent(
        time=time,
        kind=DUPLICATE,
        until=until,
        message_kinds=tuple(kinds),
        probability=probability,
        copies=copies,
    )
