"""The randomized chaos-campaign engine behind ``repro campaign``.

Where ``repro chaos`` replays a fixed hand-written scenario matrix,
a *campaign* generates seeded random fault plans from weighted
profiles, runs N trials across systems x topologies (plus sharded
task-queue trials under both shard-sync policies), holds every trial to
the online oracles of :mod:`repro.consistency.oracles`, and — when a
trial fails — delta-debugs the fault plan down to a 1-minimal failing
schedule and writes a reproducible repro bundle through the atomic
:class:`~repro.goldens.writer.RunWriter` protocol.

Three layers:

1. :func:`generate_plan` — the seeded plan generator (also exposed as
   :meth:`FaultPlan.generate <repro.faults.plan.FaultPlan.generate>`).
   Profiles: ``churn`` (sequential crash/restart pairs), ``splitbrain``
   (bounded partition windows + wire noise), ``rootstorm`` (kill the
   sequencer and a lock holder mid-section), ``wire`` (deterministic
   FIFO-preserving delay windows — the only profile legal under the
   sharded kernel's parity requirement), and ``mixed`` (a weighted
   blend).  Generated plans always pass
   :meth:`~repro.faults.plan.FaultPlan.validate` for their ``n_nodes``
   and are *survivable by design* under the full recovery stack: plain
   crashes never hit node 0, at most one node is down at a time,
   partitions exclude the root and always carry a bounded ``until``
   window, and holder/root kills fire early enough to land mid-run.
2. :func:`run_campaign` — the trial runner.  Every chaos trial runs
   with ``oracles=True``; every sharded trial checks GVT monotonicity
   (:class:`~repro.consistency.oracles.GvtMonitor`), the cross-shard
   exclusion verifier, and serial/sharded state-hash parity.
3. :func:`minimize_failure` — classic ddmin over the plan's events,
   then node-count and fault-window shrinking, re-probing after each
   step so the final plan still reproduces the *same* failure signature
   and is locally minimal (removing any single event loses the
   failure).  :func:`write_bundle` / :func:`replay_bundle` round-trip
   the minimized repro through JSON.

Everything is deterministic per ``(config, seed)``: two identical
campaigns emit byte-identical summary CSVs, which the ``campaign``
golden surface pins.
"""

from __future__ import annotations

import dataclasses
import pathlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import ExperimentError, FaultError, ReproError
from repro.faults.chaos import GWC_FAMILY, ChaosConfig, ChaosResult, chaos_csv_row, run_chaos
from repro.faults.plan import (
    CRASH,
    DELAY,
    FaultEvent,
    FaultPlan,
    crash,
    delay,
    duplicate,
    partition,
    restart,
)
from repro.goldens.writer import RunWriter
from repro.net.topology import make_topology
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads import counter as counter_wl
from repro.workloads import task_queue as tq_wl

#: Fault-plan profiles (see module docstring).
PROFILES = ("churn", "splitbrain", "rootstorm", "wire", "mixed")

#: Profiles whose plans are free of crash events (legal on task_queue).
CRASH_FREE_PROFILES = ("splitbrain", "wire")

#: Probe budget for one minimization (each probe is a full chaos run).
DEFAULT_PROBE_BUDGET = 400

#: Repro bundles are written under this surface label.
BUNDLE_SURFACE = "campaign-repro"


def recovery_unit(
    n_nodes: int,
    topology: str = "mesh_torus",
    params: MachineParams = PAPER_PARAMS,
) -> float:
    """The machine's recovery unit (NACK timeout) without building one.

    Mirrors the :class:`~repro.core.machine.DSMMachine` formula: one
    safely padded diameter crossing.  Campaign plans are scaled in this
    unit so the same profile stresses any topology equally.
    """
    topo = make_topology(topology, n_nodes)
    return max(
        4.0 * topo.diameter() * params.hop_latency
        + 16.0 * params.packet_bytes / params.link_bandwidth,
        2e-6,
    )


# ----------------------------------------------------------------------
# The seeded plan generator
# ----------------------------------------------------------------------


def _wire_noise(
    rng: random.Random, unit: float, deterministic: bool
) -> list[FaultEvent]:
    """One bounded delay window; deterministic variant is parity-safe."""
    start = rng.uniform(2.0, 40.0) * unit
    width = rng.uniform(30.0, 120.0) * unit
    return [
        delay(
            start,
            extra=rng.uniform(1.0, 3.0) * unit,
            until=start + width,
            jitter=0.0 if deterministic else rng.uniform(0.0, 0.5),
            probability=1.0 if deterministic else rng.uniform(0.4, 1.0),
            preserve_fifo=True,
        )
    ]


def _churn_events(
    rng: random.Random, n_nodes: int, unit: float
) -> list[FaultEvent]:
    """Sequential crash/restart pairs: at most one node down at a time."""
    events: list[FaultEvent] = []
    t = rng.uniform(8.0, 30.0) * unit
    for _ in range(rng.randint(2, 3)):
        victim = rng.randrange(1, n_nodes)
        down = rng.uniform(20.0, 45.0) * unit
        events.append(crash(t, node=victim))
        events.append(restart(t + down, node=victim))
        t += down + rng.uniform(15.0, 40.0) * unit
    if rng.random() < 0.5:
        events.extend(_wire_noise(rng, unit, deterministic=False))
    return events


def _splitbrain_events(
    rng: random.Random, n_nodes: int, unit: float
) -> list[FaultEvent]:
    """Bounded partition windows (root stays connected) + wire noise."""
    events: list[FaultEvent] = []
    t = rng.uniform(8.0, 30.0) * unit
    island_cap = max(1, (n_nodes - 1) // 2)
    for _ in range(rng.randint(1, 2)):
        size = rng.randint(1, island_cap)
        island = tuple(sorted(rng.sample(range(1, n_nodes), size)))
        width = rng.uniform(25.0, 55.0) * unit
        events.append(partition(t, nodes=island, until=t + width))
        t += width + rng.uniform(10.0, 30.0) * unit
    events.extend(_wire_noise(rng, unit, deterministic=False))
    if rng.random() < 0.5:
        start = rng.uniform(2.0, 30.0) * unit
        events.append(
            duplicate(
                start,
                until=start + rng.uniform(40.0, 120.0) * unit,
                probability=rng.uniform(0.2, 0.6),
            )
        )
    return events


def _rootstorm_events(
    rng: random.Random, unit: float, lock: str, group: str
) -> list[FaultEvent]:
    """Kill the sequencer (and maybe a holder) mid-critical-section.

    Both kills fire early (< 40 units): the injector retries these
    until the lock/root shape holds, so they must land while the
    workload is still generating lock traffic.  When both fire, the
    holder dies *first* — a holder kill scheduled after the root kill
    can land inside the failover window, when the lock may never again
    have a live holder before the (shortened) run drains.
    """
    events: list[FaultEvent] = []
    if rng.random() < 0.6:
        events.append(crash(rng.uniform(8.0, 18.0) * unit, holder_of=lock))
        events.append(crash(rng.uniform(22.0, 40.0) * unit, root_of=group))
    else:
        events.append(crash(rng.uniform(8.0, 25.0) * unit, root_of=group))
    if rng.random() < 0.5:
        events.extend(_wire_noise(rng, unit, deterministic=False))
    return events


def _mixed_events(
    rng: random.Random, n_nodes: int, unit: float, lock: str, group: str
) -> list[FaultEvent]:
    """A weighted blend: one structural fault + optional wire faults."""
    events: list[FaultEvent] = []
    roll = rng.random()
    if roll < 0.35:
        victim = rng.randrange(1, n_nodes)
        t = rng.uniform(8.0, 30.0) * unit
        events.append(crash(t, node=victim))
        events.append(restart(t + rng.uniform(20.0, 45.0) * unit, node=victim))
    elif roll < 0.6:
        events.append(crash(rng.uniform(8.0, 30.0) * unit, holder_of=lock))
    elif roll < 0.8:
        events.append(crash(rng.uniform(8.0, 25.0) * unit, root_of=group))
    else:
        size = rng.randint(1, max(1, (n_nodes - 1) // 2))
        island = tuple(sorted(rng.sample(range(1, n_nodes), size)))
        t = rng.uniform(8.0, 30.0) * unit
        events.append(partition(t, nodes=island, until=t + rng.uniform(25.0, 50.0) * unit))
    if rng.random() < 0.6:
        events.extend(_wire_noise(rng, unit, deterministic=False))
    if rng.random() < 0.3:
        start = rng.uniform(2.0, 30.0) * unit
        events.append(
            duplicate(
                start,
                until=start + rng.uniform(40.0, 100.0) * unit,
                probability=rng.uniform(0.2, 0.5),
            )
        )
    return events


def generate_plan(
    seed: int,
    n_nodes: int,
    horizon: float,
    profile: str = "mixed",
    lock: str = counter_wl.LOCK,
    group: str = counter_wl.GROUP,
) -> FaultPlan:
    """Generate a seeded random fault plan from a named profile.

    Deterministic per ``(seed, n_nodes, horizon, profile)``; the result
    always passes :meth:`FaultPlan.validate` for ``n_nodes``.
    ``horizon`` is the expected active span of the run in seconds; all
    fault times are scaled to ``horizon / 400`` so plans transfer
    across parameter sets.  ``lock`` / ``group`` name the targets of
    holder/root kills (defaults: the counter workload's).
    """
    if profile not in PROFILES:
        raise FaultError(
            f"unknown campaign profile {profile!r}; known: "
            f"{', '.join(PROFILES)}"
        )
    if n_nodes < 3:
        raise FaultError(
            f"campaign plans need >= 3 nodes for survivable faults "
            f"(got {n_nodes})"
        )
    if horizon <= 0:
        raise FaultError(f"plan horizon must be > 0: {horizon}")
    rng = random.Random(f"campaign/{profile}/{seed}/{n_nodes}")
    unit = horizon / 400.0
    if profile == "churn":
        events = _churn_events(rng, n_nodes, unit)
    elif profile == "splitbrain":
        events = _splitbrain_events(rng, n_nodes, unit)
    elif profile == "rootstorm":
        events = _rootstorm_events(rng, unit, lock, group)
    elif profile == "wire":
        events = []
        for _ in range(rng.randint(2, 4)):
            events.extend(_wire_noise(rng, unit, deterministic=True))
    else:  # mixed
        events = _mixed_events(rng, n_nodes, unit, lock, group)
    plan = FaultPlan(events, seed=seed)
    plan.validate(n_nodes)
    return plan


# ----------------------------------------------------------------------
# Campaign configuration and trial enumeration
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """One randomized campaign: N seeded trials + sharded trials."""

    trials: int = 25
    seed: int = 7
    #: A profile name or "all" (round-robin over every profile).
    profile: str = "mixed"
    systems: tuple[str, ...] = GWC_FAMILY
    workload: str = "counter"
    n_nodes: int = 6
    ops_per_node: int = 6
    topologies: tuple[str, ...] = ("mesh_torus", "ring")
    #: Expected active run span, in recovery units (scales fault times).
    horizon_units: float = 400.0
    #: Sharded task-queue trials appended after the chaos trials.
    shard_trials: int = 2
    shard_policies: tuple[str, ...] = ("optimistic", "conservative")
    minimize: bool = True
    probe_budget: int = DEFAULT_PROBE_BUDGET
    #: Where failing trials' repro bundles land (None = don't write).
    bundle_dir: str | None = None
    recovery: bool = True
    failover: bool = True
    #: Arm the known-bad lease configuration on every chaos trial (the
    #: acceptance scenario: oracles must catch it).
    broken_lease: bool = False
    #: Lease duration in recovery units (None = run_chaos default).
    lease_units: float | None = None
    #: Critical-section service time in seconds (None = run_chaos
    #: default).  Stretching sections past the lease is how the
    #: broken-lease acceptance forces overlapping holders.
    section_time_s: float | None = None
    params: MachineParams = PAPER_PARAMS


@dataclass(frozen=True, slots=True)
class CampaignTrial:
    """One enumerated trial (chaos or sharded)."""

    index: int
    kind: str  # "chaos" | "shard"
    profile: str
    system: str
    workload: str
    topology: str
    seed: int
    config: ChaosConfig | None = None
    shards: int = 0
    shard_policy: str = ""


def _campaign_profiles(config: CampaignConfig) -> tuple[str, ...]:
    if config.profile == "all":
        profiles: tuple[str, ...] = PROFILES
    elif config.profile in PROFILES:
        profiles = (config.profile,)
    else:
        raise FaultError(
            f"unknown campaign profile {config.profile!r}; known: "
            f"{', '.join(PROFILES + ('all',))}"
        )
    if config.workload == "task_queue":
        profiles = tuple(p for p in profiles if p in CRASH_FREE_PROFILES)
        if not profiles:
            raise FaultError(
                "task_queue campaigns need a crash-free profile "
                f"({', '.join(CRASH_FREE_PROFILES)} or 'all'); crashed "
                "consumers permanently lose their claimed task"
            )
    return profiles


def campaign_trials(config: CampaignConfig) -> list[CampaignTrial]:
    """Enumerate the campaign deterministically (no RNG draws here)."""
    if config.trials < 1:
        raise FaultError(f"campaign needs >= 1 trial (got {config.trials})")
    if config.workload not in ("counter", "task_queue"):
        raise FaultError(f"unknown campaign workload {config.workload!r}")
    for system in config.systems:
        if system not in GWC_FAMILY:
            raise FaultError(
                f"campaign trials need the GWC-family recovery stack; "
                f"{system!r} is not in {GWC_FAMILY}"
            )
    profiles = _campaign_profiles(config)
    if config.workload == "counter":
        lock, group = counter_wl.LOCK, counter_wl.GROUP
    else:
        lock, group = tq_wl.LOCK, tq_wl.GROUP
    cross = [
        (profile, system, topology)
        for profile in profiles
        for system in config.systems
        for topology in config.topologies
    ]
    trials: list[CampaignTrial] = []
    for i in range(config.trials):
        profile, system, topology = cross[i % len(cross)]
        seed = config.seed * 1009 + i
        unit = recovery_unit(config.n_nodes, topology, config.params)
        plan = generate_plan(
            seed,
            config.n_nodes,
            config.horizon_units * unit,
            profile,
            lock=lock,
            group=group,
        )
        chaos_config = ChaosConfig(
            system=system,
            workload=config.workload,
            scenario=f"campaign:{profile}",
            n_nodes=config.n_nodes,
            ops_per_node=config.ops_per_node,
            seed=seed,
            plan=plan,
            recovery=config.recovery,
            failover=config.failover,
            params=config.params,
            lease_duration=(
                config.lease_units * unit
                if config.lease_units is not None
                else None
            ),
            topology=topology,
            oracles=True,
            broken_lease=config.broken_lease,
            section_time=config.section_time_s,
        )
        trials.append(
            CampaignTrial(
                index=i,
                kind="chaos",
                profile=profile,
                system=system,
                workload=config.workload,
                topology=topology,
                seed=seed,
                config=chaos_config,
            )
        )
    for j in range(config.shard_trials):
        policy = config.shard_policies[j % len(config.shard_policies)]
        trials.append(
            CampaignTrial(
                index=config.trials + j,
                kind="shard",
                profile="wire",
                system="gwc",
                workload="task_queue",
                topology="mesh_torus",
                seed=config.seed * 1009 + 9000 + j,
                shards=2 + 2 * (j // len(config.shard_policies) % 2),
                shard_policy=policy,
            )
        )
    return trials


# ----------------------------------------------------------------------
# Failure signatures
# ----------------------------------------------------------------------


def failure_signature(result: ChaosResult) -> tuple[str, ...] | None:
    """Classify a failed run for minimization matching (None = passed)."""
    if result.oracle:
        return ("oracle", result.oracle)
    if result.stall is not None:
        return ("stall",)
    if result.invariant_errors:
        return ("invariant",)
    return None


# ----------------------------------------------------------------------
# The trial runners
# ----------------------------------------------------------------------


def _zero_run_values(trial: CampaignTrial, detail: str) -> dict[str, Any]:
    """Schema-complete values for a trial that errored before finishing."""
    scenario = (
        trial.config.scenario
        if trial.config is not None
        else f"shard:{trial.shard_policy}x{trial.shards}"
    )
    values: dict[str, Any] = dict.fromkeys(
        (
            "final_counter",
            "chain_length",
            "lock_requests",
            "lock_timeouts",
            "lock_retries",
            "lock_reclaims",
            "failovers",
            "stale_epoch_discards",
            "rerouted_requests",
            "window_discards",
            "messages",
            "dropped",
            "fault_dropped",
            "fault_delayed",
            "fault_duplicated",
            "root_count",
            "root_load_max",
        ),
        0,
    )
    values.update(
        system=trial.system,
        workload=trial.workload,
        scenario=scenario,
        seed=trial.seed,
        ok=False,
        converged=False,
        recovery_time_mean_s=0.0,
        root_load_mean=0.0,
        stall=detail,
    )
    return values


def _trial_prefix(
    trial: CampaignTrial, minimized: "Minimization | None"
) -> dict[str, Any]:
    plan_events = (
        len(trial.config.plan.events)
        if trial.config is not None and trial.config.plan is not None
        else 0
    )
    return {
        "trial": trial.index,
        "kind": trial.kind,
        "profile": trial.profile,
        "topology": trial.topology,
        "plan_events": plan_events,
        "minimized_events": (
            len(minimized.plan.events) if minimized is not None else ""
        ),
    }


def run_shard_trial(
    config: CampaignConfig, trial: CampaignTrial
) -> tuple[bool, str, dict[str, Any]]:
    """One sharded task-queue trial under a deterministic wire plan.

    Oracles: GVT monotonicity every round, the kernel's cross-shard
    exclusion verifier, and bit-identical state-hash parity vs the
    serial run of the same configuration.  Returns ``(ok, detail,
    schema values)``.
    """
    from repro.consistency.oracles import GvtMonitor
    from repro.sim.procshards import make_sharded_kernel
    from repro.sim.shards import ShardPlan

    n_nodes = max(3, min(config.n_nodes, 5))
    total_tasks = 24
    task_time = tq_wl.TaskQueueConfig.__dataclass_fields__["task_time"].default
    tq_config = tq_wl.TaskQueueConfig(
        system="gwc",
        n_nodes=n_nodes,
        total_tasks=total_tasks,
        params=config.params,
        seed=trial.seed,
        fault_plan=generate_plan(
            trial.seed,
            n_nodes,
            # Wire-plan horizon: the expected serial makespan.
            total_tasks * task_time / (n_nodes - 1),
            "wire",
        ),
    )
    serial = tq_wl.run_task_queue(tq_config)
    monitor = GvtMonitor()
    # Backend resolves via REPRO_SHARD_BACKEND; every oracle below is
    # backend-independent (final-state values plus GVT monotonicity).
    kernel = make_sharded_kernel(
        lambda owned: tq_wl._build_task_queue(tq_config, owned),
        ShardPlan.from_groups(n_nodes, trial.shards),
        policy=trial.shard_policy,
    )
    kernel.on_gvt = monitor.note
    detail = ""
    ok = True
    try:
        kernel.run()
        kernel.verify()
    except ReproError as exc:
        ok = False
        detail = f"{type(exc).__name__}: {exc}"
    executed = sum(
        kernel.node(i).locals.get("_executed", 0) for i in range(1, n_nodes)
    )
    parity = ok and kernel.state_hash() == serial.extra["state_hash"]
    if ok and not parity:
        detail = "state-hash parity violated vs serial run"
    complete = executed == total_tasks
    if ok and parity and not complete:
        detail = f"executed {executed} of {total_tasks} tasks"
    ok = ok and parity and complete
    metrics = kernel.merged_metrics() if ok else None
    values = _zero_run_values(trial, "")
    values.update(
        ok=ok,
        final_counter=executed,
        converged=parity,
        stall="" if ok else detail,
    )
    if metrics is not None:
        values.update(
            lock_requests=metrics.total_counter("lock.requests"),
            lock_timeouts=metrics.total_counter("lock.timeouts"),
            lock_retries=metrics.total_counter("lock.retries"),
        )
    return ok, detail, values


@dataclass(slots=True)
class TrialOutcome:
    """One campaign trial's verdict and its summary-CSV row."""

    trial: CampaignTrial
    ok: bool
    signature: tuple[str, ...] | None
    detail: str
    row: dict[str, Any]
    result: ChaosResult | None = None
    minimized: "Minimization | None" = None
    bundle_path: str | None = None


@dataclass(slots=True)
class CampaignResult:
    """All trial outcomes of one campaign."""

    config: CampaignConfig
    outcomes: list[TrialOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> list[TrialOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def rows(self) -> list[dict[str, Any]]:
        return [outcome.row for outcome in self.outcomes]


def run_campaign(
    config: CampaignConfig, out: Callable[[str], None] | None = None
) -> CampaignResult:
    """Run every trial; minimize and bundle each failure."""
    say = out if out is not None else lambda line: None
    campaign = CampaignResult(config=config)
    for trial in campaign_trials(config):
        if trial.kind == "shard":
            ok, detail, values = run_shard_trial(config, trial)
            outcome = TrialOutcome(
                trial=trial,
                ok=ok,
                signature=None if ok else ("shard", detail.split(":")[0]),
                detail=detail,
                row=_chaos_run_row(values, _trial_prefix(trial, None)),
            )
            campaign.outcomes.append(outcome)
            say(
                f"[campaign] trial {trial.index:<3d} shard "
                f"{trial.shard_policy:<12s} {'ok' if ok else 'FAIL'}"
            )
            continue
        assert trial.config is not None
        try:
            result = run_chaos(trial.config)
        except ReproError as exc:
            detail = f"{type(exc).__name__}: {exc}"
            outcome = TrialOutcome(
                trial=trial,
                ok=False,
                signature=("error", type(exc).__name__),
                detail=detail,
                row=_chaos_run_row(
                    _zero_run_values(trial, detail), _trial_prefix(trial, None)
                ),
            )
            campaign.outcomes.append(outcome)
            say(f"[campaign] trial {trial.index:<3d} ERROR {detail}")
            continue
        signature = failure_signature(result)
        minimized: Minimization | None = None
        bundle_path: str | None = None
        if signature is not None and config.minimize:
            say(
                f"[campaign] trial {trial.index} failed "
                f"({'/'.join(signature)}); minimizing..."
            )
            minimized = minimize_failure(
                trial.config, signature, probe_budget=config.probe_budget
            )
            if config.bundle_dir:
                bundle_path = str(
                    write_bundle(
                        pathlib.Path(config.bundle_dir)
                        / f"trial-{trial.index:03d}",
                        trial,
                        minimized,
                        result,
                    )
                )
        outcome = TrialOutcome(
            trial=trial,
            ok=signature is None,
            signature=signature,
            detail=(
                result.stall
                or "; ".join(result.invariant_errors)
                or ""
            ),
            row=chaos_csv_row(result, prefix=_trial_prefix(trial, minimized)),
            result=result,
            minimized=minimized,
            bundle_path=bundle_path,
        )
        campaign.outcomes.append(outcome)
        say(
            f"[campaign] trial {trial.index:<3d} {trial.profile:<10s} "
            f"{trial.system:<14s} {trial.topology:<11s} "
            f"{'ok' if outcome.ok else 'FAIL ' + '/'.join(signature or ())}"
        )
    return campaign


def _chaos_run_row(
    values: dict[str, Any], prefix: dict[str, Any]
) -> dict[str, Any]:
    from repro.metrics.export import chaos_run_row

    return chaos_run_row(values, prefix=prefix)


def smoke_config() -> CampaignConfig:
    """The fixed bounded campaign behind ``repro campaign --smoke``.

    Also the exact configuration the ``campaign`` golden surface
    snapshots — keep it stable and fast (runs inside ``make test``).
    """
    return CampaignConfig(
        trials=6,
        seed=7,
        profile="all",
        n_nodes=6,
        ops_per_node=6,
        topologies=("mesh_torus",),
        shard_trials=2,
        minimize=False,
    )


# ----------------------------------------------------------------------
# The minimizer
# ----------------------------------------------------------------------


@dataclass(slots=True)
class Minimization:
    """Result of delta-debugging one failing trial."""

    signature: tuple[str, ...]
    plan: FaultPlan
    n_nodes: int
    probes: int
    original_events: int


class _Prober:
    """Memoized failure probe: does a candidate plan still fail the same way?"""

    def __init__(
        self,
        config: ChaosConfig,
        signature: tuple[str, ...],
        budget: int,
    ) -> None:
        self.config = config
        self.signature = signature
        self.budget = budget
        self.probes = 0
        self._cache: dict[tuple[Any, ...], bool] = {}

    def fails(self, events: tuple[FaultEvent, ...], n_nodes: int) -> bool:
        key = (events, n_nodes)
        if key in self._cache:
            return self._cache[key]
        if self.probes >= self.budget:
            # Budget exhausted: treat as not-failing so the current
            # (known-failing) candidate is kept rather than shrunk on
            # unverified guesses.
            return False
        self.probes += 1
        assert self.config.plan is not None
        candidate = dataclasses.replace(
            self.config,
            plan=FaultPlan(events, seed=self.config.plan.seed),
            n_nodes=n_nodes,
        )
        try:
            verdict = failure_signature(run_chaos(candidate)) == self.signature
        except ReproError:
            # A malformed reduction (restart of a live node, island no
            # longer a proper subset...) is a different failure, not
            # the one being minimized.
            verdict = False
        self._cache[key] = verdict
        return verdict


def ddmin(
    items: tuple[FaultEvent, ...],
    fails: Callable[[tuple[FaultEvent, ...]], bool],
) -> tuple[FaultEvent, ...]:
    """Zeller's ddmin, plus a final single-removal pass (1-minimality)."""
    if fails(()):
        return ()
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate != items and fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    # 1-minimality: no single event can be dropped.
    changed = True
    while changed and len(items) > 1:
        changed = False
        for i in range(len(items)):
            candidate = items[:i] + items[i + 1:]
            if fails(candidate):
                items = candidate
                changed = True
                break
    return items


def _shrink_nodes(
    events: tuple[FaultEvent, ...], prober: _Prober, n_nodes: int
) -> int:
    """Walk n_nodes down while the same failure reproduces."""
    best = n_nodes
    for candidate in range(n_nodes - 1, 2, -1):
        referenced = [e.node for e in events if e.node is not None]
        if any(node >= candidate for node in referenced):
            break
        if any(
            e.nodes and set(e.nodes) >= set(range(candidate)) for e in events
        ):
            break
        if not prober.fails(events, candidate):
            break
        best = candidate
    return best


def _shrink_windows(
    events: tuple[FaultEvent, ...], prober: _Prober, n_nodes: int
) -> tuple[FaultEvent, ...]:
    """Halve each event's fault window while the failure survives."""
    events = tuple(events)
    for index in range(len(events)):
        for _ in range(3):
            event = events[index]
            if event.until is None:
                break
            half = event.time + (event.until - event.time) / 2.0
            if half <= event.time:
                break
            candidate = (
                events[:index]
                + (dataclasses.replace(event, until=half),)
                + events[index + 1:]
            )
            if prober.fails(candidate, n_nodes):
                events = candidate
            else:
                break
    return events


def minimize_failure(
    config: ChaosConfig,
    signature: tuple[str, ...],
    probe_budget: int = DEFAULT_PROBE_BUDGET,
) -> Minimization:
    """Delta-debug a failing chaos config to a 1-minimal fault plan.

    Shrinks in three phases — drop events (ddmin), shrink the node
    count, halve fault windows — re-probing after every step so the
    result still fails with the *same* signature.  The returned plan is
    locally minimal at the returned node count: removing any single
    remaining event makes the failure disappear (verified by ddmin's
    final pass; re-checked after the other phases).
    """
    if config.plan is None:
        raise FaultError("minimize_failure needs a config with an explicit plan")
    prober = _Prober(config, signature, probe_budget)
    if not prober.fails(config.plan.events, config.n_nodes):
        raise FaultError(
            "the given config does not reproduce the failure signature "
            f"{signature!r}; nothing to minimize"
        )
    events = ddmin(
        config.plan.events, lambda ev: prober.fails(ev, config.n_nodes)
    )
    n_nodes = _shrink_nodes(events, prober, config.n_nodes)
    events = _shrink_windows(events, prober, n_nodes)
    # Node/window shrinking may have unlocked further event drops.
    events = ddmin(events, lambda ev: prober.fails(ev, n_nodes))
    return Minimization(
        signature=signature,
        plan=FaultPlan(events, seed=config.plan.seed),
        n_nodes=n_nodes,
        probes=prober.probes,
        original_events=len(config.plan.events),
    )


# ----------------------------------------------------------------------
# Repro bundles
# ----------------------------------------------------------------------


def _config_payload(config: ChaosConfig) -> dict[str, Any]:
    payload = dataclasses.asdict(config)
    payload["plan"] = None  # carried separately (plan.json)
    payload["params"] = (
        "paper"
        if config.params == PAPER_PARAMS
        else dataclasses.asdict(config.params)
    )
    return payload


def _config_from_payload(payload: dict[str, Any]) -> ChaosConfig:
    fields = dict(payload)
    params = fields.pop("params", "paper")
    fields["params"] = (
        PAPER_PARAMS if params == "paper" else MachineParams(**params)
    )
    fields.pop("plan", None)
    try:
        return ChaosConfig(**fields)
    except TypeError as exc:
        raise FaultError(f"malformed repro-bundle config: {exc}") from exc


def write_bundle(
    directory: str | pathlib.Path,
    trial: CampaignTrial,
    minimized: Minimization,
    result: ChaosResult,
) -> pathlib.Path:
    """Write one failing trial's repro bundle (atomic, manifest last).

    The bundle is self-contained: ``config.json`` + ``plan.json``
    rebuild the exact failing run (:func:`replay_bundle`), and
    ``oracle.json`` records the signature, the violated oracle, and the
    monitor's evidence trail.
    """
    directory = pathlib.Path(directory)
    run = RunWriter(directory, BUNDLE_SURFACE)
    assert trial.config is not None
    config = dataclasses.replace(
        trial.config, n_nodes=minimized.n_nodes, plan=None
    )
    run.write_json("config.json", _config_payload(config))
    run.write_json("plan.json", minimized.plan.to_payload())
    run.write_json(
        "oracle.json",
        {
            "signature": list(minimized.signature),
            "oracle": result.oracle,
            "stall": result.stall,
            "invariant_errors": list(result.invariant_errors),
            "evidence": list(result.oracle_evidence),
            "probes": minimized.probes,
            "original_events": minimized.original_events,
            "minimized_events": len(minimized.plan.events),
        },
    )
    run.finalize()
    return directory


def replay_bundle(directory: str | pathlib.Path) -> ChaosResult:
    """Re-run a repro bundle's minimized failing configuration."""
    import json

    directory = pathlib.Path(directory)
    try:
        config_payload = json.loads((directory / "config.json").read_text())
        plan_payload = json.loads((directory / "plan.json").read_text())
    except (OSError, ValueError) as exc:
        raise FaultError(f"unreadable repro bundle {directory}: {exc}") from exc
    config = _config_from_payload(config_payload)
    plan = FaultPlan.from_payload(plan_payload)
    return run_chaos(dataclasses.replace(config, plan=plan))


__all__ = [
    "BUNDLE_SURFACE",
    "CRASH_FREE_PROFILES",
    "CampaignConfig",
    "CampaignResult",
    "CampaignTrial",
    "DEFAULT_PROBE_BUDGET",
    "Minimization",
    "PROFILES",
    "TrialOutcome",
    "campaign_trials",
    "ddmin",
    "failure_signature",
    "generate_plan",
    "minimize_failure",
    "recovery_unit",
    "replay_bundle",
    "run_campaign",
    "run_shard_trial",
    "smoke_config",
    "write_bundle",
]
