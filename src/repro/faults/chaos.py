"""The chaos soak harness behind ``repro chaos``.

Runs a workload (shared counter or the Figure 2 task queue) under a
seeded fault schedule, with the full recovery stack armed:

* holder leases + tolerant lock managers at the group root,
* client lock timeouts with exponential backoff and a retry budget,
* reliable multicast (NACK + heartbeat) so dropped/duplicated applies
  are recovered,
* a progress watchdog converting any residual hang into a diagnosable
  :class:`~repro.errors.StallError`.

After the run, the mutual-exclusion and RMW serializability invariants
are verified and the recovery observations (reclaim latency, retry
counts, per-cause drop counters) are packaged into a
:class:`ChaosResult`.  Everything is deterministic per
``(plan, seed)`` — :meth:`ChaosResult.fingerprint` is stable across
runs, which the determinism tests (and reproducible bug reports) rely
on.

Scenario compatibility: crash, partition, and duplicate scenarios need
the recovery machinery of the GWC family (leases, retries, reliable
multicast); the release/sequential/entry lock protocols have neither
timeouts nor duplicate tolerance, so only FIFO-preserving ``delay``
schedules are safe there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.node import NodeHandle
from repro.core.section import Section
from repro.errors import FaultError, InvariantViolationError, StallError
from repro.faults.failover import RootFailoverManager
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    crash,
    delay,
    duplicate,
    partition,
    restart,
)
from repro.locks.gwc_lock import LockRetryPolicy
from repro.params import PAPER_PARAMS, MachineParams
from repro.sim.watchdog import Watchdog
from repro.workloads import counter as counter_wl
from repro.workloads import task_queue as tq_wl

#: Systems with the full recovery stack (leases, retries, reliability).
GWC_FAMILY = ("gwc", "gwc_optimistic")

#: Scenario names.
SCENARIOS = (
    "crash_holder",
    "crash_root",
    "churn",
    "partition",
    "delay",
    "duplicate",
)

#: Scenarios that require GWC-family recovery support.
_RECOVERY_SCENARIOS = (
    "crash_holder",
    "crash_root",
    "churn",
    "partition",
    "duplicate",
)

#: The deterministic smoke mini-matrix behind ``repro chaos --smoke``:
#: every scenario, both workloads, and one non-GWC system, as
#: ``(system, workload, scenario)`` triples.  Fast enough to run inside
#: the default ``make test``; also the fileset the ``chaos`` golden
#: surface snapshots, so keep it stable.
SMOKE_MATRIX: tuple[tuple[str, str, str], ...] = (
    ("gwc", "counter", "crash_holder"),
    ("gwc_optimistic", "counter", "crash_holder"),
    ("gwc", "counter", "crash_root"),
    ("gwc_optimistic", "counter", "crash_root"),
    ("gwc", "counter", "churn"),
    ("gwc", "counter", "partition"),
    ("gwc", "counter", "duplicate"),
    ("gwc", "task_queue", "delay"),
    ("release", "counter", "delay"),
)


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """One chaos run: workload x system x scenario x seed."""

    system: str = "gwc"
    workload: str = "counter"  # "counter" or "task_queue"
    scenario: str = "crash_holder"
    n_nodes: int = 6
    ops_per_node: int = 8
    seed: int = 0
    #: Explicit schedule; None derives one from the scenario.
    plan: FaultPlan | None = None
    #: Master switch for the recovery stack (leases, retries).  With it
    #: off, a crash scenario must end in the watchdog's StallError
    #: rather than a silent hang.
    recovery: bool = True
    #: Install the root-failover manager (epoch-fenced re-election).
    #: With it off, ``crash_root`` is the negative control: the group
    #: loses its sequencer forever and the watchdog must flag the
    #: resulting stall.
    failover: bool = True
    #: Re-raise StallError instead of recording it in the result.
    raise_on_stall: bool = False
    params: MachineParams = PAPER_PARAMS
    #: Overrides; None derives each from the machine's recovery unit
    #: (the NACK timeout, one safely padded diameter crossing).
    lease_duration: float | None = None
    lock_timeout: float | None = None
    max_retries: int = 12
    watchdog_interval: float | None = None
    max_sim_time: float | None = None
    loss_rate: float = 0.0
    #: Subject failover election traffic to the loss model too
    #: (retransmitted queries/replies stay exempt).
    lossy_failover: bool = False
    #: Network topology (campaign trials sweep this).
    topology: str = "mesh_torus"
    #: Root partitions for the workload group (1 = the classic single
    #: sequencer).  With more, the group becomes a sharded-root family
    #: and the chaos scenarios run against hash-partitioned ownership;
    #: the per-root load columns of the run row then carry one entry
    #: per partition.
    roots: int = 1
    #: Arm the online InvariantMonitor (mutex, epoch/cursor
    #: monotonicity, sequencer gaps, single-writer token integrity); a
    #: violation halts the run with the oracle name and evidence trail
    #: recorded in the result.
    oracles: bool = False
    #: Deliberately lie to the lease reclaimer that every holder is
    #: crashed — the seeded known-bad configuration: the root reclaims
    #: the lock under a live holder, which the armed oracles must catch.
    broken_lease: bool = False
    #: Cap on consecutive live-holder lease extensions per grant.  A
    #: live holder whose release is lost (e.g. dropped by a partition)
    #: extends its lease forever and wedges the lock; after the cap the
    #: root reclaims anyway (epoch-fenced).  Sized far above the
    #: extension depth any healthy run reaches.  None = unbounded (the
    #: pre-campaign behaviour, which a campaign first exposed as a
    #: livelock: trial ring/partition {2,4} starved node 3 to a
    #: LockTimeoutError).
    lease_max_extensions: int | None = 16
    #: Critical-section compute time for the counter workload (None =
    #: the historical 1e-6 s).  The broken-lease acceptance scenario
    #: stretches this past the lease so the reclaim provably lands
    #: mid-section.
    section_time: float | None = None
    system_kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class ChaosResult:
    """Observations from one chaos run."""

    config: ChaosConfig
    ok: bool
    elapsed: float
    final_counter: int
    chain_length: int
    converged: bool
    lock_requests: int
    lock_timeouts: int
    lock_retries: int
    fault_summary: dict[str, Any]
    #: Seconds from each holder crash to the lease reclaim.
    recovery_times: tuple[float, ...]
    messages: int
    dropped: int
    stall: str | None = None
    #: Messages sequenced by each root partition of the workload group
    #: over the whole run (one entry per sibling subgroup, partition
    #: order).  Single-root groups report a 1-tuple.
    root_loads: tuple[int, ...] = (0,)
    invariant_errors: list[str] = field(default_factory=list)
    #: Name of the online oracle that halted the run (None = none did).
    oracle: str | None = None
    #: The monitor's observation trail ending in the violation.
    oracle_evidence: tuple[str, ...] = ()

    def fingerprint(self) -> tuple:
        """Deterministic signature for same-seed reproducibility checks."""
        return (
            self.elapsed,
            self.final_counter,
            self.chain_length,
            self.lock_requests,
            self.lock_timeouts,
            self.lock_retries,
            self.messages,
            self.dropped,
            self.root_loads,
            tuple(sorted(self.fault_summary.items())),
        )


def chaos_csv_row(
    result: ChaosResult, prefix: dict[str, Any] | None = None
) -> dict[str, Any]:
    """One chaos run as a flat CSV/JSON row on the shared run schema.

    Shared by the ``repro chaos --csv`` export, the ``chaos`` and
    ``failover`` golden surfaces, and (with a ``prefix`` of
    trial-context columns) every ``repro campaign`` summary row — one
    column list, defined once as
    :data:`repro.metrics.export.CHAOS_RUN_FIELDS`.  Every field is a
    deterministic function of ``(config, seed)`` — simulated time,
    never wall-clock.
    """
    from repro.metrics.export import chaos_run_row

    cfg = result.config
    summary = result.fault_summary
    return chaos_run_row(
        {
            "system": cfg.system,
            "workload": cfg.workload,
            "scenario": cfg.scenario,
            "seed": cfg.seed,
            "ok": result.ok,
            "final_counter": result.final_counter,
            "chain_length": result.chain_length,
            "converged": result.converged,
            "lock_requests": result.lock_requests,
            "lock_timeouts": result.lock_timeouts,
            "lock_retries": result.lock_retries,
            "lock_reclaims": summary["lock_reclaims"],
            "failovers": summary["failovers"],
            "stale_epoch_discards": summary["stale_epoch_discards"],
            "rerouted_requests": summary["rerouted_requests"],
            "window_discards": summary["window_discards"],
            "recovery_time_mean_s": (
                sum(result.recovery_times) / len(result.recovery_times)
                if result.recovery_times
                else 0.0
            ),
            "messages": result.messages,
            "dropped": result.dropped,
            "fault_dropped": summary["fault_dropped"],
            "fault_delayed": summary["fault_delayed"],
            "fault_duplicated": summary["fault_duplicated"],
            "root_count": len(result.root_loads),
            "root_load_max": max(result.root_loads, default=0),
            "root_load_mean": (
                sum(result.root_loads) / len(result.root_loads)
                if result.root_loads
                else 0.0
            ),
            "stall": result.stall or "",
        },
        prefix=prefix,
    )


def _chaos_counter_worker(
    node: NodeHandle,
    system: Any,
    section: Section,
    ops: int,
    think_time: float,
) -> "Generator":  # noqa: F821
    """Counter worker with restart-resumable progress in ``node.locals``.

    ``_done`` advances in the same simulator event as the section's
    commit, so a crash never lands between an increment and its
    bookkeeping — a restarted node redoes exactly its unfinished ops.
    """
    while node.locals["_done"] < ops:
        yield from node.busy(think_time, kind="useful")
        yield from system.run_section(node, section)
        node.locals["_done"] += 1


def _default_plan(
    config: ChaosConfig, unit: float, lock: str, group: str
) -> FaultPlan:
    """Derive a schedule for the named scenario, scaled by ``unit``."""
    scenario = config.scenario
    n = config.n_nodes
    if scenario == "crash_holder":
        # The injector retries until the lock actually has a holder, so
        # an early nominal time reliably hits mid-critical-section.
        return FaultPlan([crash(10 * unit, holder_of=lock)], seed=config.seed)
    if scenario == "crash_root":
        # Kills the group's sequencer while some *other* node holds the
        # lock (the injector retries until that shape holds), forcing a
        # failover that must rebuild both the sequence space and the
        # lock table mid-critical-section.
        return FaultPlan([crash(10 * unit, root_of=group)], seed=config.seed)
    if scenario == "churn":
        victim = n - 1
        return FaultPlan(
            [
                crash(10 * unit, node=victim),
                restart(40 * unit, node=victim),
            ],
            seed=config.seed,
        )
    if scenario == "partition":
        island = tuple(range(max(1, n - 2), n))
        return FaultPlan(
            [partition(10 * unit, nodes=island, until=50 * unit)],
            seed=config.seed,
        )
    if scenario == "delay":
        return FaultPlan(
            [
                delay(
                    5 * unit,
                    extra=4 * unit,
                    until=400 * unit,
                    jitter=0.5,
                    probability=0.5,
                )
            ],
            seed=config.seed,
        )
    if scenario == "duplicate":
        return FaultPlan(
            [duplicate(5 * unit, until=400 * unit, probability=0.5)],
            seed=config.seed,
        )
    raise FaultError(f"unknown chaos scenario {scenario!r}; known: {SCENARIOS}")


def _plan_needs_recovery(plan: FaultPlan) -> bool:
    """Does an explicit plan exercise faults only GWC recovery survives?"""
    from repro.faults.plan import DELAY

    return any(event.kind != DELAY for event in plan.events)


def _plan_crashes(plan: FaultPlan) -> bool:
    from repro.faults.plan import CRASH

    return any(event.kind == CRASH for event in plan.events)


def _verify_chain_crash_tolerant(
    chain: "list[tuple[Any, Any]]", crashes: int
) -> int:
    """Check an RMW chain, excusing up to ``crashes`` crash-lost writes.

    A break where the new read equals the *previous entry's own read* is
    the signature of exactly one lost write (the crashed holder's update
    never left its node, so the next holder re-read what the crashed one
    had read).  Any other break — or more breaks than fired crashes —
    still raises :class:`~repro.errors.ConsistencyError`.  Returns the
    number of excused lost updates.
    """
    from repro.errors import ConsistencyError

    expected: Any = 0
    lost = 0
    for i, (read_value, written_value) in enumerate(chain):
        if read_value != expected:
            if lost < crashes and i > 0 and read_value == chain[i - 1][0]:
                lost += 1
            else:
                raise ConsistencyError(
                    f"update #{i} read {read_value!r} but the previous "
                    f"write was {expected!r} (lost update beyond the "
                    f"{crashes} crash-excusable)"
                )
        expected = written_value
    return lost


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Run one seeded chaos schedule and verify the invariants."""
    gwc_family = config.system in GWC_FAMILY
    if config.plan is None:
        if config.scenario not in SCENARIOS:
            raise FaultError(
                f"unknown chaos scenario {config.scenario!r}; known: "
                f"{SCENARIOS}"
            )
        needs_recovery = config.scenario in _RECOVERY_SCENARIOS
        has_crashes = config.scenario in ("crash_holder", "crash_root", "churn")
    else:
        # An explicit plan may carry any scenario label (campaign trials
        # use "campaign:<profile>"); compatibility derives from the
        # plan's actual event kinds instead of the label.
        needs_recovery = _plan_needs_recovery(config.plan)
        has_crashes = _plan_crashes(config.plan)
    if needs_recovery and not gwc_family:
        raise FaultError(
            f"scenario {config.scenario!r} needs the GWC-family recovery "
            f"stack; system {config.system!r} only supports 'delay'"
        )
    if config.workload not in ("counter", "task_queue"):
        raise FaultError(f"unknown chaos workload {config.workload!r}")
    if config.workload == "task_queue" and has_crashes:
        # A crashed consumer takes its claimed-but-unfinished task with
        # it, so the producer's completion condition can never be met;
        # crash scenarios run on the counter workload.
        raise FaultError(
            "crash scenarios are only meaningful on the counter workload "
            "(a crashed consumer permanently loses its claimed task)"
        )
    if config.broken_lease and not (config.recovery and gwc_family):
        raise FaultError(
            "broken_lease needs the lease machinery: recovery=True and a "
            "GWC-family system"
        )

    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=config.n_nodes,
        topology=config.topology,
        params=config.params,
        seed=config.seed,
        checker=checker,
        loss_rate=config.loss_rate,
        lossy_failover=config.lossy_failover,
        reliable=True,
    )
    unit = machine.nack_timeout

    root_nodes = tuple(
        (k * config.n_nodes) // config.roots for k in range(config.roots)
    )
    if config.workload == "counter":
        group, lock, var = counter_wl.GROUP, counter_wl.LOCK, counter_wl.COUNTER
        machine.create_group(group, roots=root_nodes)
        machine.declare_variable(group, var, 0, mutex_lock=lock)
        machine.declare_lock(group, lock, protects=(var,), data_bytes=8)
    else:
        group, lock = tq_wl.GROUP, tq_wl.LOCK
        machine.create_group(group, root=0)
        machine.declare_variable(group, tq_wl.PRODUCED, 0)
        machine.declare_variable(group, tq_wl.TAKEN, 0, mutex_lock=lock)
        machine.declare_variable(group, tq_wl.COMPLETED, 0, mutex_lock=lock)
        machine.declare_lock(
            group, lock, protects=(tq_wl.TAKEN, tq_wl.COMPLETED), data_bytes=768
        )

    plan = config.plan if config.plan is not None else _default_plan(
        config, unit, lock, group
    )
    injector = FaultInjector(machine, plan)

    retry = None
    if config.recovery and gwc_family:
        lease = (
            config.lease_duration
            if config.lease_duration is not None
            else 10.0 * unit
        )
        timeout = (
            config.lock_timeout if config.lock_timeout is not None else 40.0 * unit
        )
        retry = LockRetryPolicy(timeout=timeout, max_retries=config.max_retries)
        is_crashed = injector.is_crashed
        if config.broken_lease:
            # The known-bad configuration: the reclaimer believes every
            # holder is dead, so leases expire under live holders.
            is_crashed = lambda node: True  # noqa: E731
        # Every sibling partition's root sequences its own slice of the
        # group, so each needs the recovery hooks (single-root groups
        # have exactly one engine here).
        for engine in machine.engines_for(group):
            engine.configure_lock_recovery(
                lease_duration=lease,
                is_crashed=is_crashed,
                max_extensions=config.lease_max_extensions,
            )
    injector.install()
    if config.failover and gwc_family:
        RootFailoverManager(machine, injector).install()
    monitor = None
    if config.oracles:
        from repro.consistency.oracles import InvariantMonitor

        monitor = InvariantMonitor(
            machine, interval=5.0 * unit, injector=injector
        )
        monitor.install()

    system_kwargs = dict(config.system_kwargs)
    if gwc_family:
        system_kwargs["lock_retry"] = retry
    system = make_system(config.system, machine, **system_kwargs)

    total_ops = config.ops_per_node
    if config.workload == "counter":
        section = Section(
            lock=lock,
            body=counter_wl._increment_body,
            shared_reads=(var,),
            shared_writes=(var,),
            label="chaos-increment",
        )
        think_time = 10e-6
        section_time = (
            config.section_time if config.section_time is not None else 1e-6
        )
        for node in machine.nodes:
            node.locals["_update_time"] = section_time
            node.locals["_done"] = 0
            process = machine.spawn(
                _chaos_counter_worker(node, system, section, total_ops, think_time),
                name=f"chaos-counter-{node.id}",
            )
            injector.track_process(node.id, process)

            def respawn(node: NodeHandle = node) -> None:
                proc = machine.spawn(
                    _chaos_counter_worker(
                        node, system, section, total_ops, think_time
                    ),
                    name=f"chaos-counter-{node.id}-respawn",
                )
                injector.track_process(node.id, proc)

            injector.register_respawn(node.id, respawn)
    else:
        tq_config = tq_wl.TaskQueueConfig(
            system=config.system,
            n_nodes=config.n_nodes,
            total_tasks=config.ops_per_node * (config.n_nodes - 1),
            seed=config.seed,
        )
        producer = machine.nodes[0]
        process = machine.spawn(
            tq_wl._producer(producer, system, tq_config), name="chaos-producer"
        )
        injector.track_process(0, process)
        for node in machine.nodes[1:]:
            process = machine.spawn(
                tq_wl._consumer(node, system, tq_config),
                name=f"chaos-consumer-{node.id}",
            )
            injector.track_process(node.id, process)

    interval = (
        config.watchdog_interval
        if config.watchdog_interval is not None
        else 200.0 * unit
    )
    if config.max_sim_time is not None:
        budget = config.max_sim_time
    elif config.scenario == "crash_root" and not config.failover:
        # Negative control: with no failover manager the group's
        # sequencer is gone for good.  Client retries would only raise
        # LockTimeoutError after ~4100 units of backoff; a tight budget
        # makes the watchdog's StallError fire first, deterministically
        # (normal failover runs converge well under this).
        budget = 1000.0 * unit
    else:
        budget = 0.05
    watchdog = Watchdog(
        machine.sim, interval=interval, max_sim_time=budget, patience=3
    )
    watchdog.arm()

    stall: str | None = None
    violation: InvariantViolationError | None = None
    try:
        machine.run()
    except StallError as exc:
        if config.raise_on_stall:
            raise
        stall = str(exc)
    except InvariantViolationError as exc:
        violation = exc
    watchdog.disarm()
    if monitor is not None and violation is None:
        monitor.armed = False
        try:
            # One final sweep over the end state (a violation that
            # manifested after the last scheduled sweep).
            monitor.check_now()
        except InvariantViolationError as exc:
            violation = exc
    halted = stall is not None or violation is not None

    invariant_errors: list[str] = []
    if violation is not None:
        invariant_errors.append(str(violation))
    final_counter = 0
    chain_length = 0
    converged = False
    if config.workload == "counter":
        chain = checker.chains.get(counter_wl.COUNTER, [])
        chain_length = len(chain)
        live = [n for n in machine.nodes if n.id not in injector.crashed]
        values = [n.store.read(counter_wl.COUNTER) for n in live]
        final_counter = max(values) if values else 0
        converged = bool(values) and all(v == values[0] for v in values)
        lost_to_crashes = 0
        try:
            if has_crashes:
                # A holder that crashes after its read-modify-write but
                # before the sequenced apply propagates loses that write
                # — inherent to crash-stop write-behind, not a protocol
                # bug.  Excuse at most one such break per fired crash.
                lost_to_crashes = _verify_chain_crash_tolerant(
                    chain, injector.crashes
                )
            else:
                checker.verify_chain(counter_wl.COUNTER, 0)
        except Exception as exc:  # ConsistencyError — keep the report going
            invariant_errors.append(str(exc))
        if not halted:
            expected_final = chain_length - lost_to_crashes
            # The last chain entry's write can also be lost to a crash
            # with no later read to expose it (a lost tail write).
            tail_slack = 1 if injector.crashes > lost_to_crashes else 0
            if not (
                expected_final - tail_slack <= final_counter <= expected_final
            ):
                invariant_errors.append(
                    f"final counter {final_counter} != RMW chain length "
                    f"{chain_length} (lost or phantom update)"
                )
            if not converged and config.system != "entry":
                # Entry consistency ships data with lock grants, so only
                # the last holder is expected to have the final value.
                invariant_errors.append(
                    f"live nodes did not converge: {values}"
                )
    else:
        chain_length = len(checker.spans)
        completed = machine.nodes[0].store.read(tq_wl.COMPLETED)
        final_counter = completed
        total = config.ops_per_node * (config.n_nodes - 1)
        converged = completed == total
        if not halted and completed != total:
            invariant_errors.append(
                f"completed {completed} of {total} tasks"
            )
    if not halted:
        try:
            checker.verify_no_occupancy()
        except Exception as exc:
            invariant_errors.append(str(exc))

    metrics = machine.metrics
    stats = machine.network.stats
    return ChaosResult(
        config=config,
        ok=stall is None and not invariant_errors,
        elapsed=machine.sim.now,
        final_counter=final_counter,
        chain_length=chain_length,
        converged=converged,
        lock_requests=metrics.total_counter("lock.requests"),
        lock_timeouts=metrics.total_counter("lock.timeouts"),
        lock_retries=metrics.total_counter("lock.retries"),
        fault_summary=injector.summary(),
        recovery_times=tuple(injector.recovery_times),
        messages=stats.messages,
        dropped=stats.dropped,
        stall=stall,
        root_loads=tuple(
            engine.locally_sequenced for engine in machine.engines_for(group)
        ),
        invariant_errors=invariant_errors,
        oracle=violation.oracle if violation is not None else None,
        oracle_evidence=(
            violation.evidence if violation is not None else ()
        ),
    )
