"""Executes a :class:`~repro.faults.plan.FaultPlan` against a machine.

The injector hooks three places:

* **Network send** — :meth:`FaultInjector.on_send` is consulted on every
  :meth:`Network.send`; it drops messages to/from crashed nodes and
  across partitions, and applies delay/duplicate faults.
* **Network delivery** — :meth:`FaultInjector.guard_delivery` wraps each
  resolved delivery handler so messages already *in flight* when their
  destination crashes are discarded (a crash takes the whole node out,
  including packets sitting in its input queue).
* **Scheduler** — :meth:`crash_node` kills the crashed node's tracked
  simulated processes (see :meth:`track_process`), so it stops
  scheduling work, and tells the mutual-exclusion checker about the
  forced exits.

Restart model: the node's sharing interface is reset and its group
state replayed from each group root's authoritative image
(re-insharing), with its apply stream cursor fast-forwarded to the
root's current sequence number.  The transfer is modelled as
out-of-band (no wire cost) — the interesting dynamics are in the
protocol recovery around it, not in the bulk copy.

A *root* crash takes the group's sequencer and lock manager down with
it.  With a :class:`~repro.faults.failover.RootFailoverManager`
installed (see :meth:`add_crash_listener`), a successor is elected and
the sequencer state reconstructed from member evidence; without one, a
root crash is unrecoverable — requesters ride out the unreachability
window with timeouts and retries until their budgets exhaust, and a
restart that would need the dead root as its re-inshare source raises
:class:`~repro.errors.RootFailoverError` instead of hanging.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable

from repro.errors import FaultError
from repro.faults.plan import (
    CRASH,
    DELAY,
    DUPLICATE,
    HEAL,
    PARTITION,
    RESTART,
    FaultEvent,
    FaultPlan,
)
from repro.net.message import Message

#: A crash aimed at ``holder_of=<lock>`` (or ``root_of=<group>``)
#: retries this many times (at short intervals) waiting for the lock to
#: have a holder; a restart blocked on a crashed root retries on the
#: same cadence waiting for failover to install a successor.
_HOLDER_RETRIES = 100_000
_HOLDER_RETRY_INTERVAL = 2e-6


class FaultInjector:
    """Applies one fault plan to one :class:`~repro.core.machine.DSMMachine`."""

    def __init__(self, machine: "DSMMachine", plan: FaultPlan) -> None:  # noqa: F821
        plan.validate(machine.n_nodes)
        self.machine = machine
        self.plan = plan
        self.sim = machine.sim
        self.network = machine.network
        self.rng = self.sim.rng.stream(f"faults.plan{plan.seed}")
        self.installed = False
        #: Crash state.
        self.crashed: set[int] = set()
        self.crash_times: dict[int, float] = {}
        #: Active partitions: one frozenset per cut (messages crossing
        #: the boundary of any active cut are dropped).
        self._partitions: list[frozenset[int]] = []
        self._active_delays: list[FaultEvent] = []
        self._active_duplicates: list[FaultEvent] = []
        #: Per-node simulated processes to kill on crash and respawn
        #: factories to call on restart.
        self._tracked: dict[int, list["Process"]] = {}  # noqa: F821
        self._respawn: dict[int, Callable[[], None]] = {}
        #: Crash observers (the root failover manager registers here).
        self._crash_listeners: list[Callable[[int], None]] = []
        #: Set by :meth:`RootFailoverManager.install`; gates the
        #: restart-past-a-dead-root retry path.
        self.failover_manager: Any = None
        #: Fault/recovery observations.
        self.crashes = 0
        self.restarts = 0
        self.partitions_cut = 0
        self.partitions_healed = 0
        self.inflight_dropped = 0
        self.lock_reclaims = 0
        #: Seconds from a holder's crash to its lock being reclaimed.
        self.recovery_times: list[float] = []

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Hook the network and schedule every plan event."""
        if self.installed:
            raise FaultError("fault injector already installed")
        self.installed = True
        self.network.install_injector(self)
        for engine in self._root_engines():
            for manager in engine.lock_managers.values():
                manager.on_reclaim = self._note_reclaim
        for event in self.plan.events:
            self.sim.at(event.time, partial(self._fire, event))

    def track_process(self, node: int, process: "Process") -> None:  # noqa: F821
        """Register a simulated process to be killed when ``node`` crashes."""
        self._tracked.setdefault(node, []).append(process)

    def register_respawn(self, node: int, fn: Callable[[], None]) -> None:
        """Register a callback invoked after ``node`` restarts."""
        self._respawn[node] = fn

    def add_crash_listener(self, fn: Callable[[int], None]) -> None:
        """Register ``fn(node)`` to run whenever a node crashes."""
        self._crash_listeners.append(fn)

    def is_crashed(self, node: int) -> bool:
        return node in self.crashed

    def _root_engines(self) -> list[Any]:
        return [self.machine.root_engine(name) for name in self.machine.groups]

    # ------------------------------------------------------------------
    # Network hooks
    # ------------------------------------------------------------------

    def on_send(self, msg: Message) -> tuple[float, int, bool] | None:
        """Verdict for one outbound message.

        Returns ``None`` to pass the message through untouched (the
        common case, kept allocation-free), or a tuple
        ``(extra_delay, copies, preserve_fifo)`` — ``copies == 0``
        means drop.
        """
        if not (
            self.crashed
            or self._partitions
            or self._active_delays
            or self._active_duplicates
        ):
            return None
        src = msg.src
        dst = msg.dst
        if src in self.crashed or dst in self.crashed:
            return (0.0, 0, True)
        for side in self._partitions:
            if (src in side) != (dst in side):
                return (0.0, 0, True)
        extra = 0.0
        copies = 1
        preserve_fifo = True
        now = self.sim._now
        for event in self._active_delays:
            if event.until is not None and now >= event.until:
                continue
            if event.message_kinds and msg.kind not in event.message_kinds:
                continue
            if event.nodes and src not in event.nodes and dst not in event.nodes:
                continue
            if event.probability < 1.0 and self.rng.random() >= event.probability:
                continue
            amount = event.extra_delay
            if event.jitter > 0.0:
                amount *= 1.0 + event.jitter * self.rng.random()
            extra += amount
            if not event.preserve_fifo:
                preserve_fifo = False
        for event in self._active_duplicates:
            if event.until is not None and now >= event.until:
                continue
            if event.message_kinds and msg.kind not in event.message_kinds:
                continue
            if event.probability < 1.0 and self.rng.random() >= event.probability:
                continue
            copies = max(copies, event.copies)
        if extra == 0.0 and copies == 1:
            return None
        return (extra, copies, preserve_fifo)

    def guard_delivery(
        self, dst: int, fn: Callable[[Message], None]
    ) -> Callable[[Message], None]:
        """Wrap a delivery handler to drop in-flight traffic to a dead node."""

        def guarded(msg: Message) -> None:
            if dst in self.crashed:
                self.inflight_dropped += 1
                return
            fn(msg)

        return guarded

    # ------------------------------------------------------------------
    # Fault execution
    # ------------------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == CRASH:
            if event.node is not None:
                self.crash_node(event.node)
            elif event.holder_of is not None:
                self._crash_holder(event.holder_of, _HOLDER_RETRIES)
            else:
                self._crash_root(event.root_of, _HOLDER_RETRIES)
        elif kind == RESTART:
            self.restart_node(event.node)
        elif kind == PARTITION:
            self._partitions.append(frozenset(event.nodes))
            self.partitions_cut += 1
            if event.until is not None:
                self.sim.at(event.until, partial(self._heal, frozenset(event.nodes)))
        elif kind == HEAL:
            self._heal(frozenset(event.nodes))
        elif kind == DELAY:
            self._active_delays.append(event)
            if event.until is not None:
                self.sim.at(
                    event.until, partial(self._active_delays.remove, event)
                )
        elif kind == DUPLICATE:
            self._active_duplicates.append(event)
            if event.until is not None:
                self.sim.at(
                    event.until, partial(self._active_duplicates.remove, event)
                )

    def _crash_holder(self, lock: str, budget: int) -> None:
        """Crash the current holder of ``lock``; retry while it is free.

        "Holding" requires both the root's view (``manager.holder``) and
        the node's own local lock copy to agree the node has the grant —
        the local copy flips to FREE the instant the node releases, so
        this pins the crash genuinely mid-critical-section rather than
        in the release-in-flight window (where killing the node changes
        nothing: its release is already on the wire).
        """
        from repro.memory.varspace import grant_value

        manager = self._find_manager(lock)
        holder = manager.holder
        if (
            holder is not None
            and holder not in self.crashed
            and self.machine.nodes[holder].store.read(lock) == grant_value(holder)
        ):
            self.crash_node(holder)
            return
        if budget <= 0:
            raise FaultError(
                f"crash(holder_of={lock!r}): lock never had a live holder"
            )
        self.sim.schedule(
            _HOLDER_RETRY_INTERVAL,
            partial(self._crash_holder, lock, budget - 1),
        )

    def _crash_root(self, group_name: str, budget: int) -> None:
        """Crash ``group_name``'s current root mid-critical-section.

        Fires once one of the group's locks is held by a live non-root
        member (retrying briefly otherwise), so the crash lands in the
        window where the failover protocol has real lock state to
        reconstruct — a holder mid-section plus, usually, in-flight
        requests.  ``group.root`` is read at fire time, so after an
        earlier failover this targets the successor.
        """
        from repro.memory.varspace import grant_value

        if group_name not in self.machine.groups:
            raise FaultError(f"crash(root_of=...): no group {group_name!r}")
        # A sharded family spreads its locks over sibling subgroups;
        # target whichever sibling root actually sequences a held lock
        # (a family of one degenerates to the classic single root).
        subgroups = self.machine.families.get(group_name, (group_name,))
        for sub_name in subgroups:
            root = self.machine.groups[sub_name].root
            if root in self.crashed:
                continue
            engine = self.machine.nodes[root].iface.root_engines.get(sub_name)
            managers = engine.lock_managers.values() if engine else ()
            for manager in managers:
                holder = manager.holder
                if (
                    holder is not None
                    and holder != root
                    and holder not in self.crashed
                    and self.machine.nodes[holder].store.read(manager.decl.name)
                    == grant_value(holder)
                ):
                    self.crash_node(root)
                    return
        if budget <= 0:
            raise FaultError(
                f"crash(root_of={group_name!r}): no lock of the group was "
                "ever held by a live non-root member"
            )
        self.sim.schedule(
            _HOLDER_RETRY_INTERVAL,
            partial(self._crash_root, group_name, budget - 1),
        )

    def _find_manager(self, lock: str) -> Any:
        for engine in self._root_engines():
            manager = engine.lock_managers.get(lock)
            if manager is not None:
                return manager
        raise FaultError(f"no group declares lock {lock!r}")

    def crash_node(self, node: int) -> None:
        """Take ``node`` down now: kill its processes, isolate its traffic."""
        if node in self.crashed:
            return
        now = self.sim.now
        self.crashed.add(node)
        self.crash_times[node] = now
        self.crashes += 1
        for process in self._tracked.get(node, ()):
            process.kill()
        checker = self.machine.checker
        if checker is not None:
            checker.node_crashed(node, now)
        if self.sim.trace_enabled:
            self.sim.tracer.record(now, "fault.crash", node=node)
        for listener in self._crash_listeners:
            listener(node)

    def restart_node(self, node: int) -> None:
        """Bring a crashed node back with freshly re-inshared group state.

        Re-insharing needs a live authoritative source per group.  When
        a group's root is itself crashed, the restart waits (retrying)
        for the failover manager to install a successor, then replays
        from the successor under its epoch; with no failover manager
        there is nothing to wait for and the restart fails with a clear
        :class:`~repro.errors.RootFailoverError` instead of hanging.
        """
        if node not in self.crashed:
            raise FaultError(f"restart of node {node}, which is not crashed")
        self._restart_attempt(node, _HOLDER_RETRIES)

    def _restart_attempt(self, node: int, budget: int) -> None:
        from repro.errors import RootFailoverError

        handle = self.machine.nodes[node]
        iface = handle.iface
        dead_roots = sorted(
            group.name
            for group in iface.groups.values()
            if group.root != node and group.root in self.crashed
        )
        if dead_roots:
            if self.failover_manager is None:
                raise RootFailoverError(
                    f"cannot restart node {node}: the root(s) of group(s) "
                    f"{dead_roots} are crashed and no failover manager is "
                    "installed, so no live source exists to re-inshare from"
                )
            if budget <= 0:
                raise RootFailoverError(
                    f"restart of node {node} gave up waiting for failover "
                    f"of group(s) {dead_roots}"
                )
            self.sim.schedule(
                _HOLDER_RETRY_INTERVAL,
                partial(self._restart_attempt, node, budget - 1),
            )
            return
        self.crashed.discard(node)
        self.restarts += 1
        iface._suspended = False
        iface._suspended_queue.clear()
        iface._interrupts.clear()
        for group_name, group in iface.groups.items():
            engine = self.machine.root_engine(group_name)
            # Replay the authoritative image (re-insharing) and fast-
            # forward the apply cursor so the node rejoins the sequenced
            # stream at the root's current position — under the root's
            # current epoch, which after a failover is the successor's.
            for var in list(group.variables) + list(group.locks):
                handle.store.declare(var, engine.authoritative_read(var))
            iface._reorder[group_name].clear()
            iface._next_seq[group_name] = engine.sequenced
            iface._epoch[group_name] = engine.epoch
            if iface.nack_timeout is not None:
                for var in list(group.variables) + list(group.locks):
                    iface._applied[var] = engine.authoritative_read(var)
                for lock in group.locks:
                    iface._applied_lock_seq[lock] = engine.sequenced
                iface._last_root[group_name] = group.root
        for engine in self._root_engines():
            engine.emit_heartbeat()
        respawn = self._respawn.get(node)
        if self.sim.trace_enabled:
            self.sim.tracer.record(self.sim.now, "fault.restart", node=node)
        if respawn is not None:
            respawn()

    def _heal(self, side: frozenset[int]) -> None:
        try:
            self._partitions.remove(side)
        except ValueError:
            raise FaultError(
                f"heal of partition {sorted(side)} that is not active"
            ) from None
        self.partitions_healed += 1
        # Healed members may have missed sequenced traffic with nothing
        # further coming; an immediate heartbeat starts NACK catch-up.
        for engine in self._root_engines():
            if engine.group.root not in self.crashed:
                engine.emit_heartbeat()
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now, "fault.heal", nodes=sorted(side)
            )

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def _note_reclaim(
        self, lock: str, old_holder: int, new_holder: int | None, now: float
    ) -> None:
        self.lock_reclaims += 1
        crashed_at = self.crash_times.get(old_holder)
        if crashed_at is not None:
            self.recovery_times.append(now - crashed_at)
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                now,
                "fault.lock_reclaimed",
                lock=lock,
                old_holder=old_holder,
                new_holder=new_holder,
            )

    def summary(self) -> dict[str, Any]:
        """Counters for reports and determinism fingerprints."""
        stats = self.network.stats
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "partitions_cut": self.partitions_cut,
            "partitions_healed": self.partitions_healed,
            "fault_dropped": stats.fault_dropped,
            "fault_delayed": stats.fault_delayed,
            "fault_duplicated": stats.fault_duplicated,
            "inflight_dropped": self.inflight_dropped,
            "lock_reclaims": self.lock_reclaims,
            "recovery_times": tuple(self.recovery_times),
            "failovers": stats.failovers,
            "stale_epoch_discards": stats.stale_epoch_discards,
            "rerouted_requests": stats.rerouted_requests,
            "window_discards": sum(
                engine.window_discards for engine in self._root_engines()
            ),
            "declined_regrants": sum(
                node.iface.declined_regrants for node in self.machine.nodes
            ),
        }
