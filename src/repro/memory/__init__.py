"""DSM memory substrate.

Per-node local stores (:mod:`repro.memory.store`), shared-variable and
lock declarations (:mod:`repro.memory.varspace`), sharing groups with
their root and spanning tree (:mod:`repro.memory.sharing_group`), the
node-side eagersharing interface with insharing suspension and in-order
apply (:mod:`repro.memory.interface`), and the paper's Figure-6 hardware
blocking filter (:mod:`repro.memory.packet_filter`).
"""

from repro.memory.interface import ApplyPacket, NodeInterface
from repro.memory.packet_filter import HardwareBlockingFilter
from repro.memory.sharing_group import SharingGroup
from repro.memory.store import LocalStore
from repro.memory.varspace import FREE_VALUE, LockDecl, VarDecl, grant_value, request_value

__all__ = [
    "ApplyPacket",
    "FREE_VALUE",
    "HardwareBlockingFilter",
    "LocalStore",
    "LockDecl",
    "NodeInterface",
    "SharingGroup",
    "VarDecl",
    "grant_value",
    "request_value",
]
