"""Online re-partitioning: epoch-fenced live ownership handoff.

Root sharding assigns every sequencing unit (a lock plus its mutex
group, or a standalone variable) to one partition of a sharded-root
family via the deterministic :class:`RootPartitionMap` hash.  When a
unit runs hot, that static assignment saturates one root while its
siblings idle.  :func:`migrate_units` moves units between two *live*
roots behind the same epoch fence root failover uses:

1. the partition map records an override for the moved unit,
2. the declarations move to the target subgroup (shared by reference,
   so every member re-routes new writes within the same sim event),
3. lock managers hand their exact holder/queue state across
   (:meth:`GwcLockManager.export_state` / ``adopt_state``) — no
   evidence reconstruction, the old owner is alive,
4. the target root sequences a refresh of every moved name in its own
   stream, and
5. the source root bumps its sequencer epoch (``begin_migration_epoch``)
   and re-sequences everything it still owns under the new epoch,
   exactly like a failover takeover: members that adopt the fence jump
   their cursor to the refresh, in-flight old-epoch updates are
   window-discarded, and a critical section speculating across the
   fence rolls back and re-runs (the PR 3 stale-window rule, now
   between two live roots).

Migration therefore has the same at-most-once delivery semantics for
plain writes in flight at fence time as failover; workloads that need a
write to survive the window re-share it (see
``repro.workloads.rootshard``).  Lock traffic recovers on its own: a
request eaten by the fence is re-issued by the client's
:class:`~repro.locks.gwc_lock.LockRetryPolicy`, and a release eaten by
the fence is re-sent by the fenced release barrier
(``GwcSystem._confirm_release``) once the holder adopts the new epoch —
lock managers therefore need recovery mode
(:meth:`~repro.consistency.gwc.GroupRootEngine.configure_lock_recovery`)
for duplicate/cancel tolerance.  Requires reliability
(``machine.nack_timeout``) — the fence depends on heartbeats and NACK
recovery — and :func:`arm_migration_fencing` must run before any
critical section that may span a migration starts.

:func:`plan_rebalance` is the LPT (longest-processing-time) greedy
planner over observed per-unit load; :func:`rebalance_family` glues
observation, planning, and migration together.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import MemoryError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.machine import DSMMachine


@dataclass(slots=True)
class MigrationReport:
    """What one :func:`migrate_units` call actually did."""

    family: str
    #: unit -> (source partition, target partition), applied moves only.
    moves: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Names whose declarations changed subgroup.
    moved_names: tuple[str, ...] = ()
    #: Lock managers handed across live.
    locks_transferred: int = 0
    #: Refresh writes sequenced by target roots (moved names).
    target_refreshes: int = 0
    #: Refresh writes re-sequenced by fenced source roots.
    source_refreshes: int = 0
    #: Source partitions that bumped their epoch.
    fenced_partitions: tuple[int, ...] = ()


def arm_migration_fencing(machine: "DSMMachine") -> None:
    """Arm the epoch-fenced critical-section paths for migration.

    Must be called before workload sections start: the fenced lock-held
    and optimistic paths are chosen at section entry, so a section
    already running unfenced when the first migration fires would miss
    the epoch change.  Idempotent; a no-op when failover is installed
    (fencing is already armed).
    """
    if machine.nack_timeout is None:
        raise MemoryError_(
            "online re-partitioning needs reliability (reliable=True or a "
            "loss model): the epoch fence depends on heartbeat/NACK recovery"
        )
    machine._migration_fencing = True


def migrate_units(
    machine: "DSMMachine",
    family: str,
    moves: "dict[str, int]",
) -> MigrationReport:
    """Migrate sequencing units between live roots of one family.

    ``moves`` maps unit name -> target partition.  Moves are batched by
    *source* partition so each source pays one epoch bump and one
    full-state refresh regardless of how many of its units leave.  The
    whole handoff happens within the calling sim event: after it
    returns, every member routes new writes for the moved names to
    their new owning root.
    """
    arm_migration_fencing(machine)
    pmap = machine.partition_map(family)
    groups = machine.family_groups(family)
    report = MigrationReport(family=family)

    # Resolve, validate, and batch by source partition.
    by_source: dict[int, list[tuple[str, int]]] = {}
    for unit, target in sorted(moves.items()):
        if not 0 <= target < pmap.n_partitions:
            raise MemoryError_(
                f"family {family!r}: target partition {target} out of range "
                f"[0, {pmap.n_partitions})"
            )
        source = pmap.partition_of_unit(unit)
        if source == target:
            continue
        by_source.setdefault(source, []).append((unit, target))
    if not by_source:
        return report

    all_moved_names: list[str] = []
    fenced: list[int] = []
    for source in sorted(by_source):
        src_group = groups[source]
        src_engine = machine.root_engine(src_group.name)
        moved_here: list[str] = []

        for unit, target in by_source[source]:
            tgt_group = groups[target]
            tgt_engine = machine.root_engine(tgt_group.name)
            names = sorted(
                name
                for name in (*src_group.variables, *src_group.locks)
                if pmap.unit_of(name) == unit
            )
            if not names:
                raise MemoryError_(
                    f"family {family!r}: unit {unit!r} owns nothing in "
                    f"partition {source}"
                )
            pmap.set_override(unit, target)
            report.moves[unit] = (source, target)

            for name in names:
                moved_here.append(name)
                if name in src_group.locks:
                    decl = src_group.locks.pop(name)
                    new_decl = dataclasses.replace(decl, group=tgt_group.name)
                    tgt_group.locks[name] = new_decl
                    # Live handoff: the exact holder/queue state moves;
                    # nothing is reconstructed from member evidence.
                    state = src_engine.lock_managers.pop(name).export_state()
                    manager = tgt_engine.add_lock(new_decl)
                    manager.adopt_state(state)
                    report.locks_transferred += 1
                else:
                    decl = src_group.variables.pop(name)
                    tgt_group.variables[name] = dataclasses.replace(
                        decl, group=tgt_group.name
                    )
                tgt_engine._authoritative[name] = src_engine.authoritative_read(
                    name
                )

            # Target refresh: the moved names join the target's (un-
            # bumped) sequence stream with their authoritative values.
            # Origin is the *source* root, the same echo-filter trick
            # failover uses: the only node that drops a mutex-data
            # refresh is the source root itself, whose store already
            # has the identical value.
            tgt_engine._train_begin()
            try:
                for name in names:
                    tgt_engine._sequence_and_multicast(
                        var=name,
                        value=tgt_engine._authoritative[name],
                        origin=src_group.root,
                        is_mutex_data=(
                            name in tgt_group.variables
                            and tgt_group.variables[name].is_mutex_data
                        ),
                        is_lock=name in tgt_group.locks,
                    )
                    report.target_refreshes += 1
            finally:
                tgt_engine._train_flush()

        # Source mini-takeover: fence the partition and re-sequence
        # everything it still owns under the new epoch, so a member
        # whose cursor jumps to the new epoch_start loses nothing.
        src_engine.begin_migration_epoch(tuple(moved_here))
        fenced.append(source)
        remaining = sorted((*src_group.variables, *src_group.locks))
        src_engine._train_begin()
        try:
            for name in remaining:
                src_engine._sequence_and_multicast(
                    var=name,
                    value=src_engine.authoritative_read(name),
                    origin=src_group.root,
                    is_mutex_data=(
                        name in src_group.variables
                        and src_group.variables[name].is_mutex_data
                    ),
                    is_lock=name in src_group.locks,
                )
                report.source_refreshes += 1
        finally:
            src_engine._train_flush()
        # Announce the fence immediately: a member that misses every
        # refresh packet still adopts the new epoch from the heartbeat
        # and NACKs its way back in.
        src_engine.emit_heartbeat()
        all_moved_names.extend(moved_here)

    # Every member re-routes new writes for the moved names at once
    # (declarations are shared by reference; only the caches lag).
    moved_tuple = tuple(all_moved_names)
    for member in groups[0].members:
        machine.nodes[member].iface.forget_group_of(moved_tuple)
    report.moved_names = moved_tuple
    report.fenced_partitions = tuple(fenced)
    return report


def plan_rebalance(
    unit_loads: "dict[str, int]",
    n_partitions: int,
    pinned: "dict[str, int] | None" = None,
) -> dict[str, int]:
    """LPT greedy assignment of units to partitions by observed load.

    Sorts units by (load desc, name) and assigns each to the currently
    least-loaded partition (ties to the lowest partition id), which
    guarantees max-partition load <= (4/3 - 1/(3K)) x optimal — far
    inside the <= 2x-of-mean acceptance bar whenever any balance is
    achievable.  ``pinned`` entries are placed first at their fixed
    partition.  Deterministic: same loads -> same plan.
    """
    if n_partitions < 1:
        raise MemoryError_(f"need >= 1 partition, got {n_partitions}")
    totals = [0] * n_partitions
    plan: dict[str, int] = {}
    if pinned:
        for unit, partition in sorted(pinned.items()):
            totals[partition] += unit_loads.get(unit, 0)
            plan[unit] = partition
    heap = [(total, partition) for partition, total in enumerate(totals)]
    heapq.heapify(heap)
    for unit, load in sorted(
        ((u, l) for u, l in unit_loads.items() if u not in plan),
        key=lambda item: (-item[1], item[0]),
    ):
        total, partition = heapq.heappop(heap)
        plan[unit] = partition
        heapq.heappush(heap, (total + load, partition))
    return plan


def family_unit_loads(machine: "DSMMachine", family: str) -> dict[str, int]:
    """Aggregate locally-sequenced load per unit across a family's roots."""
    loads: dict[str, int] = {}
    pmap = machine.partition_map(family)
    for engine in machine.engines_for(family):
        for unit, count in engine.load_by_unit.items():
            # Engine load keys are already unit names (lock writes and
            # mutex data both charge the lock); normalize anyway in
            # case a unit was registered after traffic started.
            unit = pmap.unit_of(unit)
            loads[unit] = loads.get(unit, 0) + count
    return loads


def rebalance_family(
    machine: "DSMMachine",
    family: str,
    min_gain: float = 0.0,
) -> MigrationReport:
    """Observe load, plan with LPT, and migrate what should move.

    ``min_gain`` skips the migration when the planned max-partition
    load is not at least that fraction below the current max (0.0 =
    always apply a differing plan).
    """
    pmap = machine.partition_map(family)
    loads = family_unit_loads(machine, family)
    if not loads:
        return MigrationReport(family=family)
    plan = plan_rebalance(loads, pmap.n_partitions)
    current_totals = [0] * pmap.n_partitions
    planned_totals = [0] * pmap.n_partitions
    for unit, load in loads.items():
        current_totals[pmap.partition_of_unit(unit)] += load
        planned_totals[plan[unit]] += load
    if max(planned_totals) >= max(current_totals) * (1.0 - min_gain):
        return MigrationReport(family=family)
    moves = {
        unit: partition
        for unit, partition in plan.items()
        if partition != pmap.partition_of_unit(unit)
    }
    return migrate_units(machine, family, moves)
