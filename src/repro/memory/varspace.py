"""Shared-variable and lock declarations.

Lock value encoding follows Section 2 of the paper:

* Each lock is initially a **unique negative number not matching any
  (negated) processor number** — the paper writes it ``-99..99``; we use
  :data:`FREE_VALUE`.
* A processor **requests** the lock by writing the *negation* of its own
  processor number; node ids are 0-based here, so node ``n`` requests
  with ``-(n + 1)`` (the ``+1`` avoids the sign-less 0).
* The root **grants** by writing the *positive* processor number
  ``n + 1``; when a node sees its own positive id arrive in the lock
  value, it holds the lock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import LockError, MemoryError_

#: The paper's "-99..99" free marker: a negative value that can never be
#: a negated node id.
FREE_VALUE = -999_999_999


def request_value(node: int) -> int:
    """Lock value written by ``node`` to request exclusive access."""
    if node < 0:
        raise LockError(f"node id must be >= 0: {node}")
    return -(node + 1)


def grant_value(node: int) -> int:
    """Lock value written by the root to grant ``node`` exclusive access."""
    if node < 0:
        raise LockError(f"node id must be >= 0: {node}")
    return node + 1


def holder_of(lock_value: int) -> int | None:
    """The node currently granted the lock, or None if free/pending."""
    if lock_value > 0:
        return lock_value - 1
    return None


def requester_of(lock_value: int) -> int | None:
    """The node whose request this lock value encodes, or None."""
    if lock_value < 0 and lock_value != FREE_VALUE:
        return -lock_value - 1
    return None


@dataclass(frozen=True, slots=True)
class VarDecl:
    """Declaration of one eagerly shared variable.

    Attributes:
        name: Globally unique variable name.
        group: Name of the sharing group the variable belongs to.
        initial: Initial value installed in every member's local store.
        size_bytes: Payload size used for wire-delay purposes.
        mutex_lock: Name of the lock protecting this variable, or None.
            Variables with a ``mutex_lock`` form that lock's *mutex group*:
            the root discards their updates from non-holders and origins
            drop their own echoes (Figure 6).
    """

    name: str
    group: str
    initial: object = 0
    size_bytes: int = 8
    mutex_lock: str | None = None

    @property
    def is_mutex_data(self) -> bool:
        return self.mutex_lock is not None


@dataclass(frozen=True, slots=True)
class LockDecl:
    """Declaration of one lock variable.

    Attributes:
        name: Globally unique lock (variable) name.
        group: Sharing group whose root manages the lock.
        protects: Names of the variables in this lock's mutex group.
        data_bytes: Total size of the guarded data, used by the entry
            consistency comparator which ships the data with each grant.
    """

    name: str
    group: str
    protects: tuple[str, ...] = field(default_factory=tuple)
    data_bytes: int = 64

    def __post_init__(self) -> None:
        if len(set(self.protects)) != len(self.protects):
            raise MemoryError_(f"lock {self.name!r} protects duplicate variables")


class RootPartitionMap:
    """Deterministic assignment of sequencing units to root partitions.

    A *unit* is the indivisible grain of root ownership: a lock together
    with every variable it protects (so grants and mutex-data discard
    decisions always happen on the same root), or a standalone variable
    by itself.  The assignment hashes ``(seed, group, unit)`` — it never
    looks at the member list, so it is *stable under member churn by
    construction*: crashing and restarting a non-root member cannot move
    a single unit.

    ``overrides`` record online re-partitioning decisions (a hot unit
    migrated to a dedicated root); they are consulted before the hash.
    """

    def __init__(self, group: str, n_partitions: int, seed: int = 0) -> None:
        if n_partitions < 1:
            raise MemoryError_(
                f"group {group!r}: need >= 1 partition, got {n_partitions}"
            )
        self.group = group
        self.n_partitions = n_partitions
        self.seed = seed
        #: unit -> partition overrides from online re-partitioning.
        self.overrides: dict[str, int] = {}
        #: name -> unit for every declared name (vars point at their
        #: protecting lock's unit).
        self._unit_of: dict[str, str] = {}

    def __repr__(self) -> str:
        return (
            f"RootPartitionMap({self.group!r}, "
            f"n_partitions={self.n_partitions}, seed={self.seed}, "
            f"overrides={len(self.overrides)})"
        )

    def register(self, name: str, mutex_lock: str | None = None) -> str:
        """Record ``name``'s unit (its protecting lock, else itself)."""
        unit = mutex_lock if mutex_lock is not None else name
        self._unit_of[name] = unit
        return unit

    def unit_of(self, name: str) -> str:
        """The sequencing unit that owns ``name``."""
        return self._unit_of.get(name, name)

    def hash_partition(self, unit: str) -> int:
        """The seeded-hash home partition of ``unit`` (ignores overrides)."""
        digest = hashlib.sha256(
            f"{self.seed}:{self.group}:{unit}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.n_partitions

    def partition_of_unit(self, unit: str) -> int:
        """Current partition of ``unit`` (overrides win over the hash)."""
        override = self.overrides.get(unit)
        if override is not None:
            return override
        return self.hash_partition(unit)

    def partition_of(self, name: str) -> int:
        """Current partition owning variable or lock ``name``."""
        return self.partition_of_unit(self.unit_of(name))

    def set_override(self, unit: str, partition: int) -> None:
        """Pin ``unit`` to ``partition`` (online re-partitioning)."""
        if not 0 <= partition < self.n_partitions:
            raise MemoryError_(
                f"group {self.group!r}: partition {partition} out of range "
                f"[0, {self.n_partitions})"
            )
        if partition == self.hash_partition(unit):
            self.overrides.pop(unit, None)
        else:
            self.overrides[unit] = partition

    def assignment(self) -> dict[str, int]:
        """Snapshot of every registered name's current partition."""
        return {name: self.partition_of(name) for name in self._unit_of}

    def units(self) -> tuple[str, ...]:
        """All distinct registered units, sorted."""
        return tuple(sorted(set(self._unit_of.values())))
