"""The hardware blocking mechanism of the paper's Figure 6.

    (H1) hw_block:
    (H2)   if packet from local processor and
    (H3)      packet is data in mutex group
    (H4)   then drop the packet

The sharing interface drops all *root-echoed* changes to shared local
variables written only under a mutual exclusion lock.  These echoes are
redundant (only one processor at a time writes mutex data, and the local
copy was already updated in the correct group write order while that
processor held the lock) and, crucially, a late echo arriving after the
processor has re-entered an optimistic section could overwrite rollback
save state with stale values.

Echoed local *lock* changes belong to the same mutex group as their data
but are **not** dropped — they drive the lock-change interrupt.

The filter can be disabled for the echo-blocking ablation (A2 in
DESIGN.md), which demonstrates the corruption the paper describes.
"""

from __future__ import annotations


class HardwareBlockingFilter:
    """Decides whether an incoming apply packet must be dropped."""

    def __init__(self, node: int, enabled: bool = True) -> None:
        self.node = node
        self.enabled = enabled
        #: Count of packets dropped by the filter (diagnostics / tests).
        self.dropped = 0

    def should_drop(self, origin: int, is_mutex_data: bool, is_lock: bool) -> bool:
        """Apply lines (H2)-(H4) of Figure 6 to one packet."""
        if not self.enabled:
            return False
        if is_lock:
            return False
        drop = origin == self.node and is_mutex_data
        if drop:
            self.dropped += 1
        return drop
