"""Sharing groups: the unit of eagersharing and write ordering.

A sharing group is a set of member nodes, one of which is the **group
root**.  The root is simultaneously (Section 4 of the paper):

1. the *sequencing arbiter* for all shared writes in the group,
2. the *lock manager* for every lock variable in the group, and
3. the gatekeeper that *discards* speculative mutex-data writes from
   nodes that do not hold the corresponding lock.

"Compiler tools can aggregate related variables and locks into the same
sharing group" — here the aggregation is explicit: variables and locks
are declared on the group.
"""

from __future__ import annotations

from repro.errors import GroupMembershipError, MemoryError_
from repro.memory.varspace import FREE_VALUE, LockDecl, VarDecl
from repro.net.multicast import MulticastTree
from repro.net.network import Network


class SharingGroup:
    """Declarations and membership for one eagersharing group."""

    def __init__(
        self,
        name: str,
        network: Network,
        members: tuple[int, ...],
        root: int,
        fanout: int | None = None,
        family: str | None = None,
        partition: int = 0,
    ) -> None:
        if root not in members:
            raise GroupMembershipError(
                f"group {name!r}: root {root} must be a member of {members}"
            )
        if len(set(members)) != len(members):
            raise GroupMembershipError(f"group {name!r}: duplicate members")
        self.name = name
        self.members = tuple(sorted(members))
        self.root = root
        #: Relay fanout for hierarchical multicast (None = direct fanout).
        self.fanout = fanout
        #: Base name of the sharded-root family this group belongs to.
        #: Partition 0 keeps the base name; partition k is ``{family}@r{k}``.
        #: Single-root groups are their own one-member family.
        self.family = family if family is not None else name
        #: This group's partition index within its family.
        self.partition = partition
        self.tree = MulticastTree(network, root, self.members, fanout=fanout)
        self.variables: dict[str, VarDecl] = {}
        self.locks: dict[str, LockDecl] = {}

    def __repr__(self) -> str:
        return (
            f"SharingGroup({self.name!r}, root={self.root}, "
            f"members={len(self.members)}, vars={len(self.variables)}, "
            f"locks={len(self.locks)})"
        )

    def has_member(self, node: int) -> bool:
        return node in set(self.members)

    def retarget_root(self, new_root: int, start_seq: int = 0) -> None:
        """Re-root the group on a failover successor.

        The group object is shared by reference across every member's
        interface, so updating ``root`` and rebuilding the spanning
        tree re-routes all future origin->root traffic at once.  The
        new tree's sequence counter starts at ``start_seq`` (the
        reconstruction quorum's ``max + 1``), not zero.
        """
        if not self.has_member(new_root):
            raise GroupMembershipError(
                f"group {self.name!r}: failover root {new_root} is not a "
                f"member of {self.members}"
            )
        self.root = new_root
        self.tree = MulticastTree(
            self.tree.network,
            new_root,
            self.members,
            start_seq=start_seq,
            fanout=self.fanout,
        )

    def declare_variable(self, decl: VarDecl) -> VarDecl:
        """Register a shared variable on this group."""
        if decl.group != self.name:
            raise MemoryError_(
                f"variable {decl.name!r} declared for group {decl.group!r}, "
                f"not {self.name!r}"
            )
        if decl.name in self.variables or decl.name in self.locks:
            raise MemoryError_(f"name {decl.name!r} already declared in group")
        self.variables[decl.name] = decl
        return decl

    def declare_lock(self, decl: LockDecl) -> LockDecl:
        """Register a lock variable; its protected variables must exist."""
        if decl.group != self.name:
            raise MemoryError_(
                f"lock {decl.name!r} declared for group {decl.group!r}, "
                f"not {self.name!r}"
            )
        if decl.name in self.locks or decl.name in self.variables:
            raise MemoryError_(f"name {decl.name!r} already declared in group")
        for var in decl.protects:
            existing = self.variables.get(var)
            if existing is None:
                raise MemoryError_(
                    f"lock {decl.name!r} protects undeclared variable {var!r}"
                )
            if existing.mutex_lock != decl.name:
                raise MemoryError_(
                    f"variable {var!r} must be declared with "
                    f"mutex_lock={decl.name!r} to be protected by it"
                )
        self.locks[decl.name] = decl
        return decl

    def is_lock(self, name: str) -> bool:
        return name in self.locks

    def var_decl(self, name: str) -> VarDecl:
        try:
            return self.variables[name]
        except KeyError:
            raise MemoryError_(
                f"group {self.name!r} has no variable {name!r}"
            ) from None

    def lock_decl(self, name: str) -> LockDecl:
        try:
            return self.locks[name]
        except KeyError:
            raise MemoryError_(f"group {self.name!r} has no lock {name!r}") from None

    def wire_bytes(self, name: str, packet_bytes: int) -> int:
        """Wire size of one update packet for variable or lock ``name``.

        Lock values are a single word and ride in the bare packet; data
        variables add their declared payload size.
        """
        if name in self.locks:
            return packet_bytes
        return packet_bytes + self.var_decl(name).size_bytes

    def initial_image(self) -> dict[str, object]:
        """Initial (name -> value) image for a member's local store."""
        image: dict[str, object] = {
            decl.name: decl.initial for decl in self.variables.values()
        }
        for lock in self.locks.values():
            image[lock.name] = FREE_VALUE
        return image
