"""Per-node local memory.

Every node holds a private copy of every shared variable of every group
it belongs to — that is the essence of eagersharing: reads are always
local.  The store also fires a per-variable :class:`~repro.sim.waiters.Signal`
on each committed write so simulated processes can sleep until a value
they care about changes (instead of polling).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import UnknownVariableError
from repro.sim.waiters import Signal


class LocalStore:
    """One node's local memory image of the shared variable space."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._values: dict[str, Any] = {}
        self._signals: dict[str, Signal] = {}
        #: Monotone count of committed writes per variable (diagnostics).
        self.write_counts: dict[str, int] = {}

    def declare(self, name: str, initial: Any) -> None:
        """Install a variable with its initial value (idempotent re-init)."""
        self._values[name] = initial
        self.write_counts.setdefault(name, 0)

    def knows(self, name: str) -> bool:
        return name in self._values

    def read(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise UnknownVariableError(
                f"node {self.node}: variable {name!r} not declared"
            ) from None

    def write(self, name: str, value: Any) -> None:
        """Commit a value and wake any waiters on this variable."""
        if name not in self._values:
            raise UnknownVariableError(
                f"node {self.node}: variable {name!r} not declared"
            )
        self._values[name] = value
        self.write_counts[name] = self.write_counts.get(name, 0) + 1
        signal = self._signals.get(name)
        if signal is not None:
            signal.fire(value)

    def signal_for(self, name: str) -> Signal:
        """The change signal for a variable (created on first use)."""
        if name not in self._values:
            raise UnknownVariableError(
                f"node {self.node}: variable {name!r} not declared"
            )
        signal = self._signals.get(name)
        if signal is None:
            signal = Signal(name=f"n{self.node}.{name}")
            self._signals[name] = signal
        return signal

    def wait_until(
        self, name: str, predicate: Callable[[Any], bool]
    ) -> Generator[Any, Any, Any]:
        """Process helper: wait until ``predicate(value)`` holds.

        Checks the current value first, so an already-true predicate does
        not wait at all.  Re-reads the store after every wake-up (rather
        than trusting the fired payload) because several sequenced applies
        can land between the signal fire and the process resuming; the
        store always holds the latest committed value.  Returns the
        satisfying value.
        """
        value = self.read(name)
        signal = self.signal_for(name)
        while not predicate(value):
            yield signal
            value = self.read(name)
        return value

    def snapshot(self, names: tuple[str, ...] | list[str]) -> dict[str, Any]:
        """Copy of the named variables (for rollback saving)."""
        return {name: self.read(name) for name in names}

    def restore(self, saved: dict[str, Any]) -> None:
        """Write back a snapshot taken with :meth:`snapshot`."""
        for name, value in saved.items():
            self.write(name, value)
