"""Per-node local memory.

Every node holds a private copy of every shared variable of every group
it belongs to — that is the essence of eagersharing: reads are always
local.  The store also fires a per-variable :class:`~repro.sim.waiters.Signal`
on each committed write so simulated processes can sleep until a value
they care about changes (instead of polling).

Layout note: each variable lives in one ``[value, write_count, signal]``
slot so the hot :meth:`write` path pays a single dict lookup instead of
three (value map, write-count map, signal map).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import UnknownVariableError
from repro.sim.waiters import Signal

#: Slot indices (one list per variable).
_VALUE = 0
_COUNT = 1
_SIGNAL = 2


class LocalStore:
    """One node's local memory image of the shared variable space."""

    def __init__(self, node: int) -> None:
        self.node = node
        #: name -> ``[value, write_count, signal-or-None]``.
        self._slots: dict[str, list[Any]] = {}

    @property
    def write_counts(self) -> dict[str, int]:
        """Monotone count of committed writes per variable (diagnostics)."""
        return {name: slot[_COUNT] for name, slot in self._slots.items()}

    def declare(self, name: str, initial: Any) -> None:
        """Install a variable with its initial value (idempotent re-init)."""
        slot = self._slots.get(name)
        if slot is None:
            self._slots[name] = [initial, 0, None]
        else:
            slot[_VALUE] = initial

    def knows(self, name: str) -> bool:
        return name in self._slots

    def read(self, name: str) -> Any:
        try:
            return self._slots[name][_VALUE]
        except KeyError:
            raise UnknownVariableError(
                f"node {self.node}: variable {name!r} not declared"
            ) from None

    def write(self, name: str, value: Any) -> None:
        """Commit a value and wake any waiters on this variable."""
        slot = self._slots.get(name)
        if slot is None:
            raise UnknownVariableError(
                f"node {self.node}: variable {name!r} not declared"
            )
        slot[0] = value
        slot[1] += 1
        signal = slot[2]
        if signal is not None:
            signal.fire(value)

    def signal_for(self, name: str) -> Signal:
        """The change signal for a variable (created on first use)."""
        slot = self._slots.get(name)
        if slot is None:
            raise UnknownVariableError(
                f"node {self.node}: variable {name!r} not declared"
            )
        signal = slot[_SIGNAL]
        if signal is None:
            signal = Signal(name=f"n{self.node}.{name}")
            slot[_SIGNAL] = signal
        return signal

    def wait_until(
        self, name: str, predicate: Callable[[Any], bool]
    ) -> Generator[Any, Any, Any]:
        """Process helper: wait until ``predicate(value)`` holds.

        Checks the current value first, so an already-true predicate does
        not wait at all.  Re-reads the store after every wake-up (rather
        than trusting the fired payload) because several sequenced applies
        can land between the signal fire and the process resuming; the
        store always holds the latest committed value.  Returns the
        satisfying value.
        """
        value = self.read(name)
        signal = self.signal_for(name)
        while not predicate(value):
            yield signal
            value = self.read(name)
        return value

    def snapshot(self, names: tuple[str, ...] | list[str]) -> dict[str, Any]:
        """Copy of the named variables (for rollback saving)."""
        return {name: self.read(name) for name in names}

    def restore(self, saved: dict[str, Any]) -> None:
        """Write back a snapshot taken with :meth:`snapshot`."""
        for name, value in saved.items():
            self.write(name, value)
