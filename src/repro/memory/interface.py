"""The per-node memory sharing interface (the simulated Sesame hardware).

Outbound: :meth:`NodeInterface.share_write` applies a shared write to the
local store immediately ("without slowing its calculations") and forwards
an update packet to the group root for sequencing.

Inbound: sequenced apply packets from the root pass through, in order,

1. the **hardware blocking filter** (Figure 6) — root echoes of this
   node's own mutex-group data are dropped,
2. the **insharing suspension** gate — while suspended, packets queue and
   local memory is immune to external changes,
3. the **apply** step — the value is committed to the local store, and
4. the **lock-change interrupt** — if an interrupt is armed on a lock
   variable, applying it atomically engages insharing suspension and
   invokes the handler (Figure 5's ``intrpt_and_sharing_suspension``).

All four steps happen inside a single simulator event, which is what
makes the paper's "interrupt is atomically coupled with a suspension of
insharing" hold by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import MemoryError_, SequencingError
from repro.memory.packet_filter import HardwareBlockingFilter
from repro.memory.sharing_group import SharingGroup
from repro.memory.varspace import FREE_VALUE, grant_value, request_value
from repro.memory.store import LocalStore
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator

#: Callback invoked when an armed lock variable changes: receives the new
#: lock value.  Insharing is already suspended when it runs.
LockInterruptHandler = Callable[[Any], None]


class _Suppressed:
    """Sentinel payload of a header-only apply to an unsubscribed member.

    Dynamic disabling of eagersharing (Section 1.1) suppresses the
    *data* of updates a member said it no longer needs; the sequencing
    header still flows so the member's in-order apply stream has no
    gaps.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<suppressed>"


#: The shared suppression sentinel.
SUPPRESSED = _Suppressed()


@dataclass(frozen=True, slots=True)
class UpdateRequest:
    """Origin -> root packet: one shared write awaiting sequencing."""

    group: str
    var: str
    value: Any
    origin: int
    #: Sequencer epoch the origin had adopted when it issued the write.
    #: A root sequences only current-epoch requests; anything stamped
    #: with an older epoch was issued into the failover window and is
    #: discarded exactly like a non-holder's speculative write (§4) —
    #: the origin re-issues against the new root after adopting it.
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class BurstUpdateRequest:
    """Origin -> root packet: a combined burst of shared writes.

    The modeled Sesame hardware transmits *groups* of writes atomically
    (that is what Group Write Consistency means, §2); with
    ``write_burst != 1`` the interface combines consecutive plain
    writes by one processor into a single multi-write update that pays
    one packet header and one origin->root message for the whole run.
    The root sequences the writes individually, in issue order, so
    members observe the same per-write apply stream as unbatched —
    only later (writes become remotely visible at the flush, not at
    issue).
    """

    group: str
    #: ``(var, value)`` pairs in program (issue) order.  Lock-variable
    #: writes may appear only as the final entry (the synchronization
    #: boundary that triggered the flush rides in the same packet).
    writes: tuple[tuple[str, Any], ...]
    origin: int
    #: Sequencer epoch at flush time; same fencing as
    #: :class:`UpdateRequest`.
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class ApplyPacket:
    """Root -> member packet: one sequenced shared write."""

    group: str
    seq: int
    var: str
    value: Any
    origin: int
    is_mutex_data: bool
    is_lock: bool
    #: True on NACK-triggered retransmissions (never dropped by the
    #: loss model; duplicates of it are tolerated).
    retransmit: bool = False
    #: Root-failover fencing (see :mod:`repro.faults.failover`): the
    #: group's sequencer epoch this packet was stamped under, and the
    #: first sequence number of that epoch.  Members discard packets
    #: from epochs older than the one they have adopted; a packet from
    #: a *newer* epoch makes them adopt it and rewind their cursor to
    #: ``epoch_start`` so the normal NACK path fills anything missed.
    epoch: int = 0
    epoch_start: int = 0
    #: True on lock writes a failover successor synthesized from member
    #: evidence rather than from a live request/release.  A member that
    #: receives a rebuilt grant *for itself* that it no longer wants
    #: (it already released, but the release died with the old root)
    #: declines it by re-sharing FREE instead of silently holding.
    rebuilt: bool = False
    #: True on packets the root sent point-to-point to one member (the
    #: unsubscribe-exclusion path) rather than down the multicast tree.
    #: Hierarchical-multicast relays must not forward these: every
    #: member already got its own copy directly.
    direct: bool = False


class NodeInterface:
    """The memory-sharing hardware interface of one node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node: int,
        store: LocalStore,
        echo_blocking: bool = True,
        nack_timeout: float | None = None,
        write_burst: int = 1,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node = node
        self.store = store
        #: Write-burst combining (see :class:`BurstUpdateRequest` and
        #: ``MachineParams.write_burst``): 1 = off (every write is its
        #: own update packet, the paper-calibrated default), k > 1 =
        #: flush after k buffered writes, 0 = flush only at
        #: synchronization boundaries.
        self.write_burst = write_burst
        #: Per-group burst buffers of pending ``(var, value)`` writes.
        self._burst: dict[str, list[tuple[str, Any]]] = {}
        #: Diagnostics: writes that passed through a burst buffer, and
        #: multi-write update packets actually sent.
        self.burst_writes = 0
        self.burst_flushes = 0
        self.filter = HardwareBlockingFilter(node, enabled=echo_blocking)
        self.groups: dict[str, SharingGroup] = {}
        #: var/lock name -> owning joined group (see :meth:`group_of`).
        self._group_cache: dict[str, SharingGroup] = {}
        #: family name -> partition-ordered sibling subgroups this node
        #: joined (the cross-root atomics rule iterates these).
        self._family_groups: dict[str, list[SharingGroup]] = {}
        #: Apply packets this node forwarded down a hierarchical
        #: multicast relay tree (diagnostics).
        self.relayed_applies = 0
        #: True once any joined group uses a relay tree; keeps the
        #: dominant direct-fanout apply path free of relay checks.
        self._relay_mode = False
        #: Root engines for groups rooted at this node (installed by the
        #: machine builder); maps group name -> engine with an
        #: ``on_update(UpdateRequest)`` method.
        self.root_engines: dict[str, Any] = {}
        self._next_seq: dict[str, int] = {}
        self._reorder: dict[str, dict[int, ApplyPacket]] = {}
        #: Highest sequencer epoch adopted per group (root failover).
        self._epoch: dict[str, int] = {}
        self._suspended = False
        self._suspended_queue: list[ApplyPacket] = []
        self._interrupts: dict[str, LockInterruptHandler] = {}
        #: When set, the reliable-multicast recovery is active: sequence
        #: gaps older than this many seconds trigger a NACK to the root,
        #: and duplicate (retransmitted) packets are tolerated.
        self.nack_timeout = nack_timeout
        self._gap_check_pending: set[str] = set()
        #: Failover evidence (maintained only when reliability is on):
        #: the last *sequenced* value this node applied per variable —
        #: unlike the store it never contains speculative local writes,
        #: so a reconstruction quorum can adopt it wholesale — plus the
        #: sequence number of the last applied write per lock (claim
        #: tie-breaking) and the root each group's writes last targeted
        #: (re-route accounting).
        self._applied: dict[str, Any] = {}
        self._applied_lock_seq: dict[str, int] = {}
        self._last_root: dict[str, int] = {}
        #: Diagnostics.
        self.applied_count = 0
        self.duplicates_ignored = 0
        self.nacks_sent = 0
        self.suppressed_applies = 0
        self.stale_epoch_discards = 0
        self.declined_regrants = 0

    # ------------------------------------------------------------------
    # Group membership
    # ------------------------------------------------------------------

    def join_group(self, group: SharingGroup) -> None:
        """Install a group's variables into the local store."""
        if not group.has_member(self.node):
            raise MemoryError_(
                f"node {self.node} is not a member of group {group.name!r}"
            )
        self.groups[group.name] = group
        self._next_seq.setdefault(group.name, 0)
        self._reorder.setdefault(group.name, {})
        self._epoch.setdefault(group.name, 0)
        self._burst.setdefault(group.name, [])
        family = self._family_groups.setdefault(group.family, [])
        if group.name not in (g.name for g in family):
            family.append(group)
            family.sort(key=lambda g: g.partition)
        if group.fanout is not None:
            self._relay_mode = True
        for name, value in group.initial_image().items():
            self.store.declare(name, value)

    def group_of(self, var: str) -> SharingGroup:
        """The group declaring variable or lock ``var`` on this node.

        Cached per name: with root-sharded families a node joins one
        subgroup per partition, and the linear scan would otherwise run
        on every shared write.  Online re-partitioning moves names
        between sibling subgroups and invalidates the affected entries
        (see :meth:`forget_group_of`).
        """
        cached = self._group_cache.get(var)
        if cached is not None:
            return cached
        for group in self.groups.values():
            if var in group.variables or var in group.locks:
                self._group_cache[var] = group
                return group
        raise MemoryError_(f"node {self.node}: no joined group declares {var!r}")

    def forget_group_of(self, names: "tuple[str, ...] | list[str]") -> None:
        """Drop cached var->group entries (ownership migrated)."""
        for name in names:
            self._group_cache.pop(name, None)

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------

    def share_write(self, var: str, value: Any) -> None:
        """Eagerly share a write: apply locally, forward to the group root.

        With write-burst combining enabled (``write_burst != 1``) plain
        data writes accumulate in the group's burst buffer instead of
        each paying an origin->root message; a lock-variable write is a
        synchronization boundary — it flushes the buffer and rides the
        resulting update as its final entry, preserving program order
        on the FIFO channel (so grant-after-data still holds).
        """
        group = self.group_of(var)
        self.store.write(var, value)
        if self.write_burst == 1:
            self._forward_to_root(group, var, value)
            return
        if group.is_lock(var):
            self._flush_sibling_bursts(group)
            self._flush_burst(group, tail=(var, value))
            return
        buffer = self._burst[group.name]
        buffer.append((var, value))
        self.burst_writes += 1
        if self.write_burst and len(buffer) >= self.write_burst:
            self._flush_burst(group)

    def atomic_exchange(self, var: str, value: Any) -> Any:
        """Atomically swap the local copy with ``value``; share the write.

        This is line (04) of Figure 4: requesting the lock and saving the
        previous local lock value access the same memory location within
        one simulator event, so no incoming lock change can interleave.
        An atomic exchange is a synchronization boundary: any buffered
        burst writes flush first (same packet), keeping program order.
        """
        group = self.group_of(var)
        old = self.store.read(var)
        self.store.write(var, value)
        if self.write_burst == 1:
            self._forward_to_root(group, var, value)
        else:
            self._flush_sibling_bursts(group)
            self._flush_burst(group, tail=(var, value))
        return old

    def flush_write_bursts(self, group_name: str | None = None) -> None:
        """Flush pending burst buffers (one group, or all of them).

        Called at every synchronization boundary that does not itself
        write a shared variable: optimistic rollback, insharing
        suspension, sequencer-epoch adoption, and blocking value waits.
        A no-op when nothing is buffered (and always with the default
        ``write_burst=1``, where nothing ever buffers).
        """
        if group_name is not None:
            buffer = self._burst.get(group_name)
            if buffer:
                self._flush_burst(self.groups[group_name])
            return
        for name, buffer in self._burst.items():
            if buffer:
                self._flush_burst(self.groups[name])

    @property
    def pending_burst_writes(self) -> int:
        """Buffered writes not yet flushed to any root (diagnostics)."""
        return sum(len(buffer) for buffer in self._burst.values())

    def _flush_sibling_bursts(self, group: SharingGroup) -> None:
        """Cross-root atomics rule for sharded-root families.

        A synchronization-boundary write (lock value or atomic
        exchange) owned by one partition flushes every *sibling*
        partition's burst buffer first, in ascending partition order,
        before its own flush carries the boundary write.  Program order
        is therefore preserved across roots: every buffered write is on
        the wire to its owning root before the lock value that
        publishes the critical section leaves this node.
        """
        siblings = self._family_groups.get(group.family)
        if siblings is None or len(siblings) == 1:
            return
        for sibling in siblings:
            if sibling.name != group.name and self._burst[sibling.name]:
                self._flush_burst(sibling)

    def _flush_burst(
        self, group: SharingGroup, tail: tuple[str, Any] | None = None
    ) -> None:
        """Send the group's buffered writes as one multi-write update.

        ``tail`` is the boundary write (lock value or atomic exchange)
        that triggered the flush; it is appended after the buffered
        writes so the root processes it last, exactly as if every write
        had crossed the channel individually.  A flush of a single
        write degenerates to the ordinary :class:`UpdateRequest` path.
        """
        buffer = self._burst[group.name]
        if not buffer:
            if tail is not None:
                self._forward_to_root(group, tail[0], tail[1])
            return
        writes = list(buffer)
        buffer.clear()
        if tail is not None:
            writes.append(tail)
        if len(writes) == 1:
            self._forward_to_root(group, writes[0][0], writes[0][1])
            return
        packet_bytes = self.network.params.packet_bytes
        # One shared header plus every write's declared payload bytes.
        size = packet_bytes + sum(
            group.wire_bytes(var, packet_bytes) - packet_bytes
            for var, _ in writes
        )
        request = BurstUpdateRequest(
            group=group.name,
            writes=tuple(writes),
            origin=self.node,
            epoch=self._outgoing_epoch(group),
        )
        self.burst_flushes += 1
        self.network.send(
            Message(
                src=self.node,
                dst=group.root,
                kind="gwc.update_burst",
                payload=request,
                size_bytes=size,
            )
        )

    def _outgoing_epoch(self, group: SharingGroup) -> int:
        """Epoch stamp + root re-route accounting for one outgoing update."""
        if self.nack_timeout is None:
            return 0
        last = self._last_root.get(group.name)
        if last != group.root:
            if last is not None:
                self.network.stats.rerouted_requests += 1
            self._last_root[group.name] = group.root
        return self._epoch[group.name]

    def _forward_to_root(self, group: SharingGroup, var: str, value: Any) -> None:
        request = UpdateRequest(
            group=group.name,
            var=var,
            value=value,
            origin=self.node,
            epoch=self._outgoing_epoch(group),
        )
        self.network.send(
            Message(
                src=self.node,
                dst=group.root,
                kind="gwc.update",
                payload=request,
                size_bytes=group.wire_bytes(var, self.network.params.packet_bytes),
            )
        )

    # ------------------------------------------------------------------
    # Dynamic disabling of eagersharing (Section 1.1)
    # ------------------------------------------------------------------

    def unsubscribe(self, var: str) -> None:
        """Stop receiving this variable's values (header-only applies).

        "Dynamic disabling of eagersharing can avoid some costs" — a
        node that no longer reads a variable tells the root, which then
        sends it sequencing headers without the payload.  Lock variables
        and mutex-protected data cannot be unsubscribed: their values
        drive the synchronization protocol.
        """
        group = self.group_of(var)
        if group.is_lock(var) or group.var_decl(var).is_mutex_data:
            raise MemoryError_(
                f"node {self.node}: cannot unsubscribe synchronization "
                f"variable {var!r}"
            )
        # Ordering: any buffered writes must reach the root before the
        # subscription change they precede in program order.
        self.flush_write_bursts(group.name)
        self.network.send(
            Message(
                src=self.node,
                dst=group.root,
                kind="gwc.unsub",
                payload=(group.name, var, self.node),
                size_bytes=self.network.params.packet_bytes,
            )
        )

    def resubscribe(self, var: str) -> None:
        """Resume eagersharing; the root refreshes the current value."""
        group = self.group_of(var)
        self.flush_write_bursts(group.name)
        self.network.send(
            Message(
                src=self.node,
                dst=group.root,
                kind="gwc.resub",
                payload=(group.name, var, self.node),
                size_bytes=self.network.params.packet_bytes,
            )
        )

    # ------------------------------------------------------------------
    # Insharing suspension and lock interrupts
    # ------------------------------------------------------------------

    @property
    def insharing_suspended(self) -> bool:
        return self._suspended

    @property
    def pending_suspended(self) -> int:
        return len(self._suspended_queue)

    def suspend_insharing(self) -> None:
        """Suspend insharing — a synchronization boundary: flush bursts."""
        self.flush_write_bursts()
        self._suspended = True

    def resume_insharing(self) -> None:
        """Lift suspension and drain queued packets in arrival order.

        Draining stops immediately if one of the drained packets is an
        armed lock change — applying it re-engages suspension (the
        atomic interrupt), and the rest of the queue waits for the next
        resume.
        """
        self._suspended = False
        while self._suspended_queue and not self._suspended:
            packet = self._suspended_queue.pop(0)
            self._process(packet)

    def arm_lock_interrupt(self, lock: str, handler: LockInterruptHandler) -> None:
        """Enable Figure 5's interrupt-and-sharing-suspension on a lock."""
        self._interrupts[lock] = handler

    def disarm_lock_interrupt(self, lock: str) -> None:
        self._interrupts.pop(lock, None)

    def interrupt_armed(self, lock: str) -> bool:
        return lock in self._interrupts

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------

    def delivery_for(self, kind: str) -> Callable[[Message], None]:
        """The leanest delivery callable for one message kind.

        Apply packets dominate GWC traffic (every sequenced write fans
        out to the whole group), so they get a dedicated single-frame
        entry point; everything else dispatches through
        :meth:`on_message`.
        """
        if kind == "gwc.apply":
            return self._on_apply
        return self.on_message

    def _on_apply(self, msg: Message) -> None:
        """Short-circuit delivery for one ``gwc.apply`` message.

        Semantically identical to ``on_message -> _receive`` but with
        the in-order, unsuspended sequencing check inlined; gaps,
        duplicates, and suspension fall back to the full
        :meth:`_receive` logic.  The commit itself always goes through
        :meth:`_process`, which external oracles (e.g.
        ``OrderProbe``) may monkey-patch to observe apply order.
        """
        packet = msg.payload
        if self._relay_mode:
            self._relay_apply(packet)
        group = packet.group
        expected = self._next_seq.get(group)
        if (
            expected is not None
            and packet.seq == expected
            and packet.epoch == self._epoch[group]
            and not self._reorder[group]
            and not self._suspended
        ):
            self._next_seq[group] = expected + 1
            self._process(packet)
            return
        self._receive(packet)

    def on_message(self, msg: Message) -> None:
        """Network delivery entry point for GWC traffic."""
        # Apply packets dominate GWC traffic (every sequenced write fans
        # out to the whole group), so they are tested first.
        if msg.kind == "gwc.apply":
            if self._relay_mode:
                self._relay_apply(msg.payload)
            self._receive(msg.payload)
        elif msg.kind == "gwc.update":
            engine = self.root_engines.get(msg.payload.group)
            if engine is None:
                raise MemoryError_(
                    f"node {self.node} received an update for group "
                    f"{msg.payload.group!r} it does not root"
                )
            engine.on_update(msg.payload)
        elif msg.kind == "gwc.update_burst":
            engine = self.root_engines.get(msg.payload.group)
            if engine is None:
                raise MemoryError_(
                    f"node {self.node} received a burst update for group "
                    f"{msg.payload.group!r} it does not root"
                )
            engine.on_update_burst(msg.payload)
        elif msg.kind == "gwc.nack":
            group_name, from_seq, member = msg.payload
            engine = self.root_engines.get(group_name)
            if engine is None:
                raise MemoryError_(
                    f"node {self.node} got a NACK for group {group_name!r} "
                    "it does not root"
                )
            engine.on_nack(member, from_seq)
        elif msg.kind == "gwc.heartbeat":
            self._on_heartbeat(*msg.payload)
        elif msg.kind in ("gwc.unsub", "gwc.resub"):
            group_name, var, member = msg.payload
            engine = self.root_engines.get(group_name)
            if engine is None:
                raise MemoryError_(
                    f"node {self.node} got a subscription change for group "
                    f"{group_name!r} it does not root"
                )
            if msg.kind == "gwc.unsub":
                engine.on_unsubscribe(var, member)
            else:
                engine.on_resubscribe(var, member)
        else:
            raise MemoryError_(f"node {self.node}: unknown message kind {msg.kind!r}")

    def _relay_apply(self, packet: ApplyPacket) -> None:
        """Forward a tree-multicast apply to this node's relay children.

        Only hierarchical-multicast groups (``fanout`` set) relay, and
        only packets that travelled the tree: NACK retransmissions and
        point-to-point ``direct`` sends already reached every member
        straight from the root.  The forward happens at *delivery*,
        before this node's own ordering checks — a relay that is itself
        behind still keeps its subtree fed.
        """
        if packet.retransmit or packet.direct:
            return
        group = self.groups.get(packet.group)
        if group is None or group.fanout is None or self.node == group.root:
            return
        kids = group.tree.children_of(self.node)
        if not kids:
            return
        packet_bytes = self.network.params.packet_bytes
        if packet.value is SUPPRESSED:
            size = packet_bytes
        else:
            # The declaration may have migrated to a sibling partition
            # while this apply was in flight (decl dicts are shared by
            # reference, so this relay's view moved too); size the
            # forward from whichever sibling holds it now.
            sized = group
            if (
                packet.var not in group.variables
                and packet.var not in group.locks
            ):
                sized = next(
                    (
                        sib
                        for sib in self._family_groups.get(group.family, ())
                        if packet.var in sib.variables
                        or packet.var in sib.locks
                    ),
                    None,
                )
            size = (
                sized.wire_bytes(packet.var, packet_bytes)
                if sized is not None
                else packet_bytes
            )
        self.relayed_applies += len(kids)
        self.network.send_fanout(self.node, kids, "gwc.apply", packet, size)

    def _receive(self, packet: ApplyPacket) -> None:
        """Order-check an arriving packet, then process in-sequence ones."""
        group = packet.group
        expected = self._next_seq.get(group)
        if expected is None:
            raise MemoryError_(
                f"node {self.node} got apply for unjoined group {group!r}"
            )
        current_epoch = self._epoch[group]
        if packet.epoch != current_epoch:
            if packet.epoch < current_epoch:
                # Fencing: a deposed sequencer's packet (or a stale
                # retransmission from before the failover) must not
                # overwrite state the new epoch already refreshed.
                self._note_stale_epoch()
                return
            self._adopt_epoch(group, packet.epoch, packet.epoch_start)
            expected = self._next_seq[group]
        if packet.seq == expected and not self._reorder[group]:
            # In-order arrival with nothing buffered — the overwhelmingly
            # common case on lossless FIFO channels.  Skip the reorder
            # buffer round-trip entirely.
            self._next_seq[group] = expected + 1
            if self._suspended:
                self._suspended_queue.append(packet)
            else:
                self._process(packet)
            return
        if packet.seq < expected:
            if self.nack_timeout is not None or packet.retransmit:
                # A retransmission raced the original (or a repeated
                # NACK over-fetched); in-order delivery already happened.
                self.duplicates_ignored += 1
                return
            raise SequencingError(
                f"node {self.node} group {packet.group!r}: duplicate seq "
                f"{packet.seq} (expected {expected})"
            )
        reorder = self._reorder[packet.group]
        reorder[packet.seq] = packet
        while self._next_seq[packet.group] in reorder:
            next_packet = reorder.pop(self._next_seq[packet.group])
            self._next_seq[packet.group] += 1
            if self._suspended:
                self._suspended_queue.append(next_packet)
            else:
                self._process(next_packet)
        if reorder and self.nack_timeout is not None:
            self._schedule_gap_check(packet.group)

    # ------------------------------------------------------------------
    # Sequencer-epoch fencing (root failover)
    # ------------------------------------------------------------------

    def _note_stale_epoch(self, count: int = 1) -> None:
        self.stale_epoch_discards += count
        self.network.stats.stale_epoch_discards += count
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now, "iface.stale_epoch", node=self.node, count=count
            )

    def _adopt_epoch(self, group: str, epoch: int, epoch_start: int) -> None:
        """Switch to a newer sequencer epoch announced by a new root.

        Anything still buffered from the old sequencer is fenced out,
        and the apply cursor moves to the new epoch's first sequence
        number: the takeover refresh (which re-sequences every variable
        and lock starting exactly there) subsumes any tail of the old
        epoch this member missed.  A gap *within* the new epoch is
        recovered by the ordinary NACK path — the new root's history
        starts at ``epoch_start``.

        Buffered burst writes flush *before* the epoch switches: they
        were issued under the old sequencer, and stamping them with the
        old epoch makes the new root window-discard them exactly like
        unbatched writes that were already in flight at failover.
        """
        self.flush_write_bursts(group)
        self._epoch[group] = epoch
        reorder = self._reorder[group]
        if reorder:
            self._note_stale_epoch(len(reorder))
            reorder.clear()
        if self._next_seq[group] < epoch_start:
            self._next_seq[group] = epoch_start
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now,
                "iface.epoch_adopted",
                node=self.node,
                group=group,
                epoch=epoch,
                epoch_start=epoch_start,
            )

    # ------------------------------------------------------------------
    # Reliable-multicast recovery (NACK + heartbeat)
    # ------------------------------------------------------------------

    def _schedule_gap_check(self, group: str) -> None:
        if group in self._gap_check_pending:
            return
        self._gap_check_pending.add(group)
        expected_at_schedule = self._next_seq[group]
        self.sim.schedule(
            self.nack_timeout,
            lambda: self._gap_check(group, expected_at_schedule),
        )

    def _gap_check(self, group: str, expected_at_schedule: int) -> None:
        self._gap_check_pending.discard(group)
        if not self._reorder[group]:
            return
        if self._next_seq[group] > expected_at_schedule:
            # Progress was made; give the stream another timeout before
            # declaring the remaining gap lost.
            self._schedule_gap_check(group)
            return
        self._send_nack(group)
        self._schedule_gap_check(group)

    def _send_nack(self, group: str) -> None:
        self.nacks_sent += 1
        root = self.groups[group].root
        self.network.send(
            Message(
                src=self.node,
                dst=root,
                kind="gwc.nack",
                payload=(group, self._next_seq[group], self.node),
                size_bytes=self.network.params.packet_bytes,
            )
        )
        if self.sim.trace_enabled:
            self.sim.tracer.record(
                self.sim.now,
                "iface.nack",
                node=self.node,
                group=group,
                from_seq=self._next_seq[group],
            )

    def _on_heartbeat(
        self,
        group: str,
        latest_seq: int,
        epoch: int = 0,
        epoch_start: int = 0,
    ) -> None:
        """Root heartbeat: detect tail loss (a gap nothing follows)."""
        if self.nack_timeout is None or group not in self._next_seq:
            return
        current_epoch = self._epoch[group]
        if epoch < current_epoch:
            return  # A deposed root's trailing heartbeat: ignore.
        if epoch > current_epoch:
            self._adopt_epoch(group, epoch, epoch_start)
        if self._next_seq[group] <= latest_seq:
            self._send_nack(group)

    def _process(self, packet: ApplyPacket) -> None:
        """Filter, apply, and possibly interrupt — one in-order packet."""
        if packet.value is SUPPRESSED:
            # A header-only apply to an unsubscribed member: the sequence
            # number is consumed, the stale local value stays.
            self.suppressed_applies += 1
            return
        if self.nack_timeout is not None:
            # Failover evidence: record the sequenced value *before* the
            # echo filter so a holder's own committed writes are part of
            # its image (the store diverges — the origin applied the
            # write locally at issue time, possibly speculatively).
            self._applied[packet.var] = packet.value
            if packet.is_lock:
                self._applied_lock_seq[packet.var] = packet.seq
                if packet.rebuilt and packet.value == grant_value(self.node):
                    local = self.store.read(packet.var)
                    if local != packet.value and local != request_value(
                        self.node
                    ):
                        # A rebuilt grant for a lock this node neither
                        # holds nor wants: its release died with the old
                        # root after the evidence was captured.  Decline
                        # by re-sharing FREE so the new root passes the
                        # lock on instead of leasing it to an unwilling
                        # holder.
                        self.declined_regrants += 1
                        if self.sim.trace_enabled:
                            self.sim.tracer.record(
                                self.sim.now,
                                "iface.regrant_declined",
                                node=self.node,
                                lock=packet.var,
                                seq=packet.seq,
                            )
                        self.share_write(packet.var, FREE_VALUE)
                        return
        # Inlined HardwareBlockingFilter.should_drop (Figure 6): drop a
        # root echo of this node's own mutex-group data.  Kept branch-
        # for-branch identical so ``filter.dropped`` stays exact.
        flt = self.filter
        if (
            flt.enabled
            and not packet.is_lock
            and packet.origin == self.node
            and packet.is_mutex_data
        ):
            flt.dropped += 1
            if self.sim.trace_enabled:
                self.sim.tracer.record(
                    self.sim.now,
                    "iface.echo_dropped",
                    node=self.node,
                    var=packet.var,
                    seq=packet.seq,
                )
            return
        self.store.write(packet.var, packet.value)
        self.applied_count += 1
        if packet.is_lock:
            handler = self._interrupts.pop(packet.var, None)
            if handler is not None:
                # Atomic with the apply: same simulator event.
                self._suspended = True
                if self.sim.trace_enabled:
                    self.sim.tracer.record(
                        self.sim.now,
                        "iface.lock_interrupt",
                        node=self.node,
                        lock=packet.var,
                        value=packet.value,
                    )
                handler(packet.value)
