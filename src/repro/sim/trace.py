"""Simulation tracing.

A :class:`Tracer` records timestamped, categorized events.  Protocol code
calls ``tracer.record(time, category, detail)``; tests and examples filter
the records to assert protocol behaviour (e.g. "the root discarded the
speculative write before granting the lock").

The default :class:`NullTracer` drops everything at near-zero cost so
large benchmark sweeps are not slowed by tracing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace line: when, what kind, and free-form detail fields."""

    time: float
    category: str
    detail: dict[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time * 1e6:12.3f}us] {self.category:24s} {fields}"


class Tracer:
    """Collects :class:`TraceRecord` objects in chronological call order."""

    def __init__(self, categories: set[str] | None = None) -> None:
        #: If set, only these categories are recorded.
        self.categories = categories
        self.records: list[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        return True

    def record(self, time: float, category: str, **detail: Any) -> None:
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time=time, category=category, detail=detail))

    def filter(self, category: str) -> list[TraceRecord]:
        """All records in a category, in order."""
        return [r for r in self.records if r.category == category]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self) -> str:
        """The whole trace as printable text."""
        return "\n".join(str(r) for r in self.records)


class NullTracer(Tracer):
    """A tracer that records nothing."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def record(self, time: float, category: str, **detail: Any) -> None:
        return None
