"""Generator-based simulated processes.

A process is a Python generator driven by the simulator.  Each ``yield``
suspends the process until the yielded request completes:

=======================  ====================================================
Yielded value            Meaning
=======================  ====================================================
``float`` / ``int``      Sleep for that many simulated seconds (``>= 0``).
:class:`Future`          Wait until resolved; ``yield`` returns the value.
:class:`Signal`          Wait for the next fire; ``yield`` returns payload.
:class:`Process`         Join: wait until that process finishes; ``yield``
                         returns its return value.
``None``                 Reschedule immediately (lets same-time events run).
=======================  ====================================================

Exceptions raised inside a process propagate out of :meth:`Simulator.run`,
so model bugs fail tests loudly instead of silently killing a process.

Snapshot/restore (Time Warp rollback support)
---------------------------------------------

A generator frame cannot be copied or pickled, so a process cannot be
checkpointed by value.  Instead, rollback works by *replay from
checkpoint*: processes are deterministic functions of their spawn
arguments and the event sequence that drove them, so the sharded kernel
(:mod:`repro.sim.shards`) restores a shard by rebuilding its replica
machine from the same factory and re-delivering the logged cross-shard
inputs up to the rollback point.  :meth:`Process.snapshot` exposes the
observable progress state — the part of a process that a correct replay
must reproduce exactly — for parity checks and diagnostics.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Generator

from repro.errors import ProcessError
from repro.sim.waiters import Future, Signal


class Process:
    """A simulated thread of control.

    Not instantiated directly; use :meth:`repro.sim.kernel.Simulator.spawn`.
    """

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821 - avoids circular import
        gen: Generator[Any, Any, Any],
        name: str,
    ) -> None:
        if not hasattr(gen, "send"):
            raise ProcessError(
                f"process {name!r} must be built from a generator, got {type(gen)!r}"
            )
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        #: Set by :meth:`kill`: the process was forcibly terminated (a
        #: simulated node crash) rather than running to completion.
        self.killed = False
        self.result: Any = None
        #: Total generator steps taken — the watchdog's progress signal.
        self.steps = 0
        #: The waitable this process is currently blocked on (a
        #: :class:`Future`, :class:`Signal`, or :class:`Process`), or
        #: ``None`` when runnable/sleeping.  Feeds stall diagnostics.
        self.waiting_on: Any = None
        self.waiting_since: float = 0.0
        self._completion = Future(name=f"{name}.done")
        # Process steps are fire-and-forget: nothing in the library
        # cancels a pending resume, so steps use the simulator's
        # handle-less fast path (no Event allocation per step).  The
        # push is bound once; delays are validated in _dispatch, so the
        # past-check in Simulator.schedule is redundant here.
        self._resume_none = partial(self._resume, None)
        self._push = sim._queue.push_fn
        # Start the process "now" so spawn order equals first-step order.
        self._push(sim._now, self._resume_none)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"

    @property
    def completion(self) -> Future:
        """A future resolved with the process's return value at exit."""
        return self._completion

    def kill(self) -> None:
        """Forcibly terminate the process (simulated node crash).

        The generator is closed (running any pending cleanup), the
        process is marked finished+killed, and joiners are resumed with
        ``None``.  Already-scheduled resume events become no-ops, as do
        waiter callbacks the process left behind on signals or futures.
        Killing a finished process is a no-op.
        """
        if self.finished:
            return
        self.killed = True
        self.finished = True
        self.waiting_on = None
        self.gen.close()
        if not self._completion.resolved:
            self._completion.resolve(None)

    def snapshot(self) -> tuple[str, int, bool, bool, Any]:
        """Observable progress state: ``(name, steps, finished, killed, result)``.

        Two executions of the same process that received the same event
        sequence produce equal snapshots; the sharded kernel's replay
        path relies on this to validate that a rollback restored a shard
        to exactly the pre-straggler state.  There is no ``restore``
        counterpart by design — a generator frame cannot be rebuilt from
        data, only re-derived by deterministic re-execution.
        """
        return (self.name, self.steps, self.finished, self.killed, self.result)

    def describe_wait(self) -> str:
        """Human-readable account of what this process is blocked on."""
        if self.finished:
            return "killed" if self.killed else "finished"
        target = self.waiting_on
        if target is None:
            return "runnable (next step scheduled)"
        if isinstance(target, Future):
            what = f"future {target.name!r}"
        elif isinstance(target, Signal):
            what = f"signal {target.name!r}"
        elif isinstance(target, Process):
            what = f"join on process {target.name!r}"
        else:  # pragma: no cover - defensive
            what = repr(target)
        return f"waiting on {what} since t={self.waiting_since:.9g}"

    def _resume(self, value: Any) -> None:
        """Advance the generator one step, dispatching its next request."""
        if self.finished:
            if self.killed:
                # A resume scheduled before the crash; the node is gone.
                return
            raise ProcessError(f"process {self.name!r} resumed after finish")
        self.steps += 1
        self.waiting_on = None
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._completion.resolve(stop.value)
            return
        self._dispatch(request)

    def _dispatch(self, request: Any) -> None:
        if request.__class__ is float or request.__class__ is int:
            if request < 0:
                raise ProcessError(
                    f"process {self.name!r} yielded a negative delay: {request}"
                )
            self._push(self.sim._now + request, self._resume_none)
        elif request is None:
            self._push(self.sim._now, self._resume_none)
        elif isinstance(request, (int, float)):
            # Subclasses of int/float (e.g. bool) still mean "sleep".
            if request < 0:
                raise ProcessError(
                    f"process {self.name!r} yielded a negative delay: {request}"
                )
            self._push(self.sim._now + float(request), self._resume_none)
        elif isinstance(request, Future):
            self.waiting_on = request
            self.waiting_since = self.sim._now
            request.add_callback(self._resume_later)
        elif isinstance(request, Signal):
            self.waiting_on = request
            self.waiting_since = self.sim._now
            request.add_callback(self._resume_later)
        elif isinstance(request, Process):
            self.waiting_on = request
            self.waiting_since = self.sim._now
            request.completion.add_callback(self._resume_later)
        else:
            raise ProcessError(
                f"process {self.name!r} yielded an unsupported value: {request!r}"
            )

    def _resume_later(self, value: Any) -> None:
        """Resume via a zero-delay event so wakes never nest inside fires.

        Firing a signal from arbitrary model code must not re-enter the
        process synchronously; scheduling the resume keeps the event loop
        the only caller of process code.
        """
        if value is None:
            self._push(self.sim._now, self._resume_none)
        else:
            self.sim._queue.push_call(self.sim._now, self._resume, value)
