"""Generator-based simulated processes.

A process is a Python generator driven by the simulator.  Each ``yield``
suspends the process until the yielded request completes:

=======================  ====================================================
Yielded value            Meaning
=======================  ====================================================
``float`` / ``int``      Sleep for that many simulated seconds (``>= 0``).
:class:`Future`          Wait until resolved; ``yield`` returns the value.
:class:`Signal`          Wait for the next fire; ``yield`` returns payload.
:class:`Process`         Join: wait until that process finishes; ``yield``
                         returns its return value.
``None``                 Reschedule immediately (lets same-time events run).
=======================  ====================================================

Exceptions raised inside a process propagate out of :meth:`Simulator.run`,
so model bugs fail tests loudly instead of silently killing a process.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Generator

from repro.errors import ProcessError
from repro.sim.waiters import Future, Signal


class Process:
    """A simulated thread of control.

    Not instantiated directly; use :meth:`repro.sim.kernel.Simulator.spawn`.
    """

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821 - avoids circular import
        gen: Generator[Any, Any, Any],
        name: str,
    ) -> None:
        if not hasattr(gen, "send"):
            raise ProcessError(
                f"process {name!r} must be built from a generator, got {type(gen)!r}"
            )
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._completion = Future(name=f"{name}.done")
        # Process steps are fire-and-forget: nothing in the library
        # cancels a pending resume, so steps use the simulator's
        # handle-less fast path (no Event allocation per step).  The
        # push is bound once; delays are validated in _dispatch, so the
        # past-check in Simulator.schedule is redundant here.
        self._resume_none = partial(self._resume, None)
        self._push = sim._queue.push_fn
        # Start the process "now" so spawn order equals first-step order.
        self._push(sim._now, self._resume_none)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"

    @property
    def completion(self) -> Future:
        """A future resolved with the process's return value at exit."""
        return self._completion

    def _resume(self, value: Any) -> None:
        """Advance the generator one step, dispatching its next request."""
        if self.finished:
            raise ProcessError(f"process {self.name!r} resumed after finish")
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._completion.resolve(stop.value)
            return
        self._dispatch(request)

    def _dispatch(self, request: Any) -> None:
        if request.__class__ is float or request.__class__ is int:
            if request < 0:
                raise ProcessError(
                    f"process {self.name!r} yielded a negative delay: {request}"
                )
            self._push(self.sim._now + request, self._resume_none)
        elif request is None:
            self._push(self.sim._now, self._resume_none)
        elif isinstance(request, (int, float)):
            # Subclasses of int/float (e.g. bool) still mean "sleep".
            if request < 0:
                raise ProcessError(
                    f"process {self.name!r} yielded a negative delay: {request}"
                )
            self._push(self.sim._now + float(request), self._resume_none)
        elif isinstance(request, Future):
            request.add_callback(self._resume_later)
        elif isinstance(request, Signal):
            request.add_callback(self._resume_later)
        elif isinstance(request, Process):
            request.completion.add_callback(self._resume_later)
        else:
            raise ProcessError(
                f"process {self.name!r} yielded an unsupported value: {request!r}"
            )

    def _resume_later(self, value: Any) -> None:
        """Resume via a zero-delay event so wakes never nest inside fires.

        Firing a signal from arbitrary model code must not re-enter the
        process synchronously; scheduling the resume keeps the event loop
        the only caller of process code.
        """
        if value is None:
            self._push(self.sim._now, self._resume_none)
        else:
            self.sim._queue.push_call(self.sim._now, self._resume, value)
