"""Progress watchdog: convert silent hangs into diagnosable failures.

A deadlocked simulation normally surfaces only at the very end (the
event queue drains and :meth:`Simulator.check_quiescent` flags blocked
processes) — and a *livelocked* one never surfaces at all: recurring
protocol events (heartbeats, lease checks, retry timers) keep the queue
non-empty forever while no process advances.  The :class:`Watchdog`
closes both holes: it checks the simulation at a fixed simulated-time
interval and raises :class:`~repro.errors.StallError` — carrying
per-process blocked/wait-reason diagnostics — when

1. the clock passes ``max_sim_time`` (the hard budget guard),
2. no runnable event other than the watchdog itself remains while
   processes are still blocked (a drained-queue deadlock), or
3. no process has taken a generator step for ``patience`` consecutive
   checks (a livelock: events fire but nothing progresses).

The watchdog disarms itself once every process has finished, so a
healthy run is never kept alive by its checks.
"""

from __future__ import annotations

from repro.errors import SimulationError, StallError
from repro.sim.event import Event
from repro.sim.kernel import Simulator

#: Above this heap size the live-event scan is skipped: a stalled
#: simulation has a near-empty queue, so a big heap means live work.
_SCAN_LIMIT = 64

#: At most this many blocked processes are named in a stall report.
_REPORT_LIMIT = 20


class Watchdog:
    """Periodic no-progress and time-budget monitor for one simulator."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        max_sim_time: float | None = None,
        patience: int = 3,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"watchdog interval must be > 0: {interval}")
        if patience < 1:
            raise SimulationError(f"watchdog patience must be >= 1: {patience}")
        if max_sim_time is not None and max_sim_time <= 0:
            raise SimulationError(
                f"watchdog max_sim_time must be > 0: {max_sim_time}"
            )
        self.sim = sim
        self.interval = interval
        self.max_sim_time = max_sim_time
        self.patience = patience
        #: Diagnostics.
        self.checks = 0
        self.armed = False
        self._strikes = 0
        self._last_progress = -1

    def arm(self) -> None:
        """Schedule the first check; re-arming a live watchdog is a no-op."""
        if self.armed:
            return
        self.armed = True
        self._strikes = 0
        self._last_progress = self._progress()
        self.sim.schedule(self.interval, self._check)

    def disarm(self) -> None:
        """Stop checking (the pending check event becomes a no-op)."""
        self.armed = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _progress(self) -> int:
        """Total generator steps across all processes (monotone)."""
        return sum(p.steps for p in self.sim._processes)

    def _other_live_events(self) -> bool:
        """Any live event in the queue besides this check's reschedule?

        Called while the watchdog's own check event is executing, so the
        run loop has already popped it; every live heap entry therefore
        belongs to someone else.  (``pending_events`` cannot be used
        here: the run loop defers its live-count bookkeeping.)
        """
        heap = self.sim._queue._heap
        if len(heap) > _SCAN_LIMIT:
            return True
        for entry in heap:
            target = entry[3]
            if target.__class__ is Event and target.cancelled:
                continue
            return True
        return False

    def _check(self) -> None:
        if not self.armed:
            return
        self.checks += 1
        sim = self.sim
        blocked = sim.blocked_processes()
        if not blocked:
            # Workload complete: stop checking so the queue can drain.
            self.armed = False
            return
        if self.max_sim_time is not None and sim.now >= self.max_sim_time:
            raise StallError(
                self._report(
                    f"simulated time {sim.now:.9g} exceeded the "
                    f"max_sim_time budget {self.max_sim_time:.9g}",
                    blocked,
                )
            )
        if not self._other_live_events():
            raise StallError(
                self._report(
                    "no runnable events remain (drained-queue deadlock)",
                    blocked,
                )
            )
        progress = self._progress()
        if progress == self._last_progress:
            self._strikes += 1
            if self._strikes >= self.patience:
                raise StallError(
                    self._report(
                        f"no process progressed for {self._strikes} "
                        f"consecutive checks ({self.interval:.9g}s apart)",
                        blocked,
                    )
                )
        else:
            self._strikes = 0
            self._last_progress = progress
        sim.schedule(self.interval, self._check)

    def _report(self, headline: str, blocked: list) -> str:
        lines = [
            f"stall detected at t={self.sim.now:.9g}: {headline}; "
            f"{len(blocked)} process(es) blocked:"
        ]
        for process in blocked[:_REPORT_LIMIT]:
            lines.append(f"  - {process.name}: {process.describe_wait()}")
        if len(blocked) > _REPORT_LIMIT:
            lines.append(f"  ... and {len(blocked) - _REPORT_LIMIT} more")
        return "\n".join(lines)
