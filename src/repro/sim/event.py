"""Events and the time-ordered event queue.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number makes ordering total and deterministic: two
events scheduled for the same instant fire in the order they were
scheduled, regardless of heap internals.

Performance note: the heap stores plain ``(time, priority, seq, event)``
tuples rather than the :class:`Event` handles themselves.  Tuple
comparison happens entirely in C, which roughly halves the cost of every
``heappush``/``heappop`` relative to comparing Python objects.  The
``seq`` element is unique, so the trailing :class:`Event` is never
compared.  :class:`Event` stays the public, cancellable handle.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for urgent events (fire before normal events at the same time).
PRIORITY_URGENT = -1
#: Priority for lazy events (fire after normal events at the same time).
PRIORITY_LAZY = 1
#: Priority band for message arrivals in a *sharded* replica (see
#: :mod:`repro.sim.shards`).  Below every local priority, so a routed
#: arrival fires before any same-time local event; arrivals order among
#: themselves by a ``(send time, src node, per-src send index)`` token
#: in the seq slot.  Serial runs never use this band.
PRIORITY_ARRIVAL_BAND = -(1 << 29)


class Event:
    """A single scheduled callback.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break rank for events at the same time (lower first).
        seq: Scheduling order, the final tie-break.
        fn: Callback invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[[], Any],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        #: The queue currently holding this event; ``None`` once popped.
        self._queue: "EventQueue | None" = None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, priority={self.priority}, seq={self.seq}, {state})"

    def __lt__(self, other: "Event") -> bool:
        # Heap entries only fall through to comparing their Event slot
        # when two full (time, priority, seq) keys are equal.  That
        # happens in exactly one case: a rolled-back shard re-emitting
        # an annihilated delivery, whose replayed key is identical by
        # design while the cancelled original still sits in the heap
        # (see repro.sim.shards).  Their relative order is irrelevant —
        # the cancelled one is skipped — so any deterministic answer
        # works.
        return False

    def cancel(self) -> None:
        """Mark this event so the queue skips it when popped.

        Cancellation is routed through the owning queue, so the queue's
        live count stays exact without any separate bookkeeping call.
        Cancelling twice, or cancelling an event that already fired, is
        a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._live -= 1


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    __slots__ = ("_heap", "_next_seq", "_live")

    def __init__(self) -> None:
        #: Heap entries are ``(time, priority, seq, target)`` tuples,
        #: optionally extended with a single call argument:
        #: ``(time, priority, seq, fn, arg)``.  ``target`` is either a
        #: cancellable :class:`Event` or a bare callable.
        self._heap: list[tuple] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn`` at ``time`` and return the cancellable event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, fn)
        event._queue = self
        heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def push_fn(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn`` at ``time`` without a cancellable handle.

        The hot-path variant of :meth:`push`: the bare callable goes
        straight into the heap tuple, skipping the :class:`Event`
        allocation entirely.  Use it for fire-and-forget events (message
        deliveries, process steps) that nothing ever cancels.
        """
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = self._next_seq
        self._next_seq = seq + 1
        heappush(self._heap, (time, priority, seq, fn))
        self._live += 1

    def push_call(
        self,
        time: float,
        fn: Callable[[Any], Any],
        arg: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn(arg)`` at ``time`` without a cancellable handle.

        Like :meth:`push_fn` but carries one argument in the heap entry
        itself, so hot senders need no ``partial``/closure allocation
        per event.
        """
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = self._next_seq
        self._next_seq = seq + 1
        heappush(self._heap, (time, priority, seq, fn, arg))
        self._live += 1

    def push_at_key(
        self,
        time: float,
        priority: int,
        seq: Any,
        fn: Callable[[], Any],
    ) -> Event:
        """Schedule ``fn`` under a caller-supplied ``(time, priority, seq)`` key.

        Used by the sharded kernel to inject cross-shard deliveries:
        the caller supplies the full key — a dedicated priority band
        plus a send-order token in the ``seq`` slot (any value totally
        ordered within its band) — so injected events never consume
        this queue's local counter, which keeps deterministic replay
        exact.  The returned handle is cancellable, which is how
        anti-messages annihilate a not-yet-executed delivery.
        """
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time, priority, seq, fn)
        event._queue = self
        heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Handle-less entries (see :meth:`push_fn` / :meth:`push_call`)
        are wrapped in a fresh, already-dequeued :class:`Event` so
        callers see one type.
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            target = entry[3]
            if target.__class__ is Event:
                if target.cancelled:
                    continue
                target._queue = None
                self._live -= 1
                return target
            self._live -= 1
            if len(entry) == 5:
                arg = entry[4]
                return Event(entry[0], entry[1], entry[2], lambda: target(arg))
            return Event(entry[0], entry[1], entry[2], target)
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float:
        """Time of the earliest non-cancelled event without removing it."""
        heap = self._heap
        while heap:
            head = heap[0][3]
            if head.__class__ is Event and head.cancelled:
                heappop(heap)
                continue
            return heap[0][0]
        raise SimulationError("peek on empty event queue")

    def note_cancelled(self) -> None:
        """Deprecated no-op, kept for API compatibility.

        :meth:`Event.cancel` now maintains the live count itself, so
        there is no external bookkeeping left to do; calling this extra
        method can no longer desynchronize ``len()``.
        """
        return None
