"""Events and the time-ordered event queue.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number makes ordering total and deterministic: two
events scheduled for the same instant fire in the order they were
scheduled, regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for urgent events (fire before normal events at the same time).
PRIORITY_URGENT = -1
#: Priority for lazy events (fire after normal events at the same time).
PRIORITY_LAZY = 1


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break rank for events at the same time (lower first).
        seq: Scheduling order, the final tie-break.
        fn: Callback invoked when the event fires.  Excluded from ordering.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn`` at ``time`` and return the cancellable event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time=time, priority=priority, seq=next(self._counter), fn=fn)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float:
        """Time of the earliest non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise SimulationError("peek on empty event queue")
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Inform the queue that one pushed event was cancelled externally.

        :meth:`Event.cancel` does not know which queue holds the event, so
        callers that cancel should also call this to keep ``len()`` exact.
        The queue remains correct without it (cancelled events are skipped
        on pop); only the live count would drift.
        """
        if self._live > 0:
            self._live -= 1
