"""Canonical state hashing for simulated machines.

The sharded kernel's correctness bar is *bit-identical final state*
versus the serial kernel, so "state" needs one canonical definition that
both can produce: every node's store slots (value and write count), the
root-side lock tables, the per-node metrics time buckets and counters,
the group sequencer positions, and the final simulated clock.  The hash
is a SHA-256 over a type-tagged, sorted, length-prefixed encoding, so
two hashes are equal iff the states are structurally identical — dict
insertion order, float formatting, and container identity never leak in.

The same encoder backs the sweep-determinism tests: comparing two runs
by ``state_hash`` subsumes the old ad-hoc dict comparisons and catches
divergence anywhere in the machine, not just in the few fields a test
thought to look at.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import DSMMachine


def _encode(obj: Any, parts: list[bytes]) -> None:
    """Append a canonical, type-tagged encoding of ``obj`` to ``parts``.

    Supported: None, bool, int, float, str, bytes, and (nested) tuples,
    lists, sets, and dicts of the same.  Anything else raises — state
    that cannot be canonicalized cannot be compared across kernels, and
    silently hashing ``repr`` (which may embed ``id()``) would turn the
    parity check into a coin flip.
    """
    if obj is None:
        parts.append(b"N")
    elif obj is True:
        parts.append(b"T")
    elif obj is False:
        parts.append(b"F")
    elif type(obj) is int:
        parts.append(b"i%d;" % obj)
    elif type(obj) is float:
        # repr() is the shortest round-tripping form: equal bits give
        # equal text, different bits give different text.
        parts.append(b"f" + repr(obj).encode("ascii") + b";")
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        parts.append(b"s%d:" % len(raw))
        parts.append(raw)
    elif type(obj) is bytes:
        parts.append(b"b%d:" % len(obj))
        parts.append(obj)
    elif type(obj) is tuple or type(obj) is list:
        parts.append(b"l%d:" % len(obj))
        for item in obj:
            _encode(item, parts)
    elif type(obj) is dict:
        # Sort by the encoded key so insertion order never matters.
        encoded: list[tuple[bytes, Any]] = []
        for key, value in obj.items():
            key_parts: list[bytes] = []
            _encode(key, key_parts)
            encoded.append((b"".join(key_parts), value))
        encoded.sort(key=lambda kv: kv[0])
        parts.append(b"d%d:" % len(encoded))
        for key_bytes, value in encoded:
            parts.append(key_bytes)
            _encode(value, parts)
    elif type(obj) is set or type(obj) is frozenset:
        members: list[bytes] = []
        for item in obj:
            item_parts: list[bytes] = []
            _encode(item, item_parts)
            members.append(b"".join(item_parts))
        members.sort()
        parts.append(b"S%d:" % len(members))
        parts.extend(members)
    else:
        raise SimulationError(
            f"cannot canonicalize {type(obj).__name__!r} for state hashing: {obj!r}"
        )


def canonical_bytes(obj: Any) -> bytes:
    """The canonical encoding used by :func:`hash_payload`."""
    parts: list[bytes] = []
    _encode(obj, parts)
    return b"".join(parts)


def hash_payload(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


def _node_state(machine: "DSMMachine", node_id: int) -> dict[str, Any]:
    node = machine.nodes[node_id]
    store = {
        name: (slot[0], slot[1]) for name, slot in node.store._slots.items()
    }
    metrics = node.metrics
    return {
        "store": store,
        "useful": metrics.useful,
        "overhead": metrics.overhead,
        "wasted": metrics.wasted,
        "counters": dict(metrics.counters),
    }


def _group_state(machine: "DSMMachine", name: str) -> dict[str, Any]:
    group = machine.groups[name]
    engine = machine.root_engine(name)
    locks: dict[str, Any] = {}
    for lock_name, manager in engine.lock_managers.items():
        locks[lock_name] = (
            manager.holder,
            tuple(manager.queue),
            manager.grants,
            manager.releases,
            manager.max_queue,
            manager.regrants,
            manager.cancelled_requests,
            manager.stale_releases,
            manager.lease_reclaims,
            manager.lease_extensions,
        )
    return {
        "root": group.root,
        "members": tuple(group.members),
        "sequenced": engine.sequenced,
        "epoch": engine.epoch,
        "epoch_start_seq": engine.epoch_start_seq,
        "locks": locks,
    }


def state_payload(
    machines: "Sequence[DSMMachine]",
    owner_of: Sequence[int] | None = None,
) -> dict[str, Any]:
    """The canonical state of a machine, possibly sharded across replicas.

    Args:
        machines: One machine (serial run) or one replica per shard.
            Replicas must be structurally identical builds of the same
            machine (same nodes, groups, variables, locks).
        owner_of: ``node_id -> index into machines`` giving the replica
            that authoritatively executed each node.  ``None`` (serial)
            reads everything from ``machines[0]``.

    The payload reads node ``i``'s store and metrics from its owning
    replica, each group's sequencer and lock tables from the replica
    owning the group's *root* node, and takes the clock as the max over
    replicas — the time of the last event executed anywhere, which is
    exactly the serial kernel's final clock.
    """
    if not machines:
        raise SimulationError("state_payload needs at least one machine")
    first = machines[0]
    n_nodes = first.n_nodes
    if owner_of is None:
        owner_of = [0] * n_nodes
    if len(owner_of) != n_nodes:
        raise SimulationError(
            f"owner_of has {len(owner_of)} entries for {n_nodes} nodes"
        )
    nodes = {
        node_id: _node_state(machines[owner_of[node_id]], node_id)
        for node_id in range(n_nodes)
    }
    groups = {
        name: _group_state(machines[owner_of[first.groups[name].root]], name)
        for name in first.groups
    }
    return {
        "n_nodes": n_nodes,
        "clock": max(machine.sim.now for machine in machines),
        "nodes": nodes,
        "groups": groups,
    }


def state_hash(
    machines: "Sequence[DSMMachine]",
    owner_of: Sequence[int] | None = None,
) -> str:
    """SHA-256 hex digest of :func:`state_payload`."""
    return hash_payload(state_payload(machines, owner_of))


def machine_state_hash(machine: "DSMMachine") -> str:
    """Canonical state hash of one (serial) machine after a run."""
    return state_hash([machine])


def shared_state_payload(machine: "DSMMachine") -> dict[str, Any]:
    """The *semantic* shared-memory outcome of a run.

    :func:`state_payload` is the right bar for kernel parity (same
    machine, different execution backends: every counter and sequencer
    position must match bit-for-bit).  Root sharding changes the
    machine itself — sequence numbers split across per-partition
    streams, message counts and clocks legitimately differ — so its
    parity bar is semantic instead: after quiescence, every member of
    every group must hold the same final value for every shared
    variable, and every lock must have returned to FREE.

    The payload is keyed by *family* (partition siblings collapse), so
    a serial single-root run and a K-root sharded run of the same
    workload produce comparable payloads.  Raises if members disagree
    with their group root's authoritative value — divergence must fail
    the parity check loudly, not hash two different states.
    """
    from repro.memory.varspace import FREE_VALUE

    families: dict[str, dict[str, Any]] = {}
    for name, group in machine.groups.items():
        engine = machine.root_engine(name)
        values = families.setdefault(group.family, {})
        for var in (*group.variables, *group.locks):
            authoritative = engine.authoritative_read(var)
            for member in group.members:
                local = machine.nodes[member].store.read(var)
                if var in group.locks:
                    # A holder's own store legitimately shows its grant
                    # while everyone else converged on the sequenced
                    # value; the lock table below captures occupancy.
                    continue
                if local != authoritative:
                    raise SimulationError(
                        f"shared-state divergence: node {member} has "
                        f"{var!r}={local!r}, root of {name!r} says "
                        f"{authoritative!r}"
                    )
            values[var] = authoritative
        for lock_name, manager in engine.lock_managers.items():
            if manager.holder is None and (
                engine.authoritative_read(lock_name) != FREE_VALUE
            ):
                raise SimulationError(
                    f"lock {lock_name!r} has no holder but authoritative "
                    f"value {engine.authoritative_read(lock_name)!r} != FREE"
                )
            values[lock_name] = ("lock", manager.holder, tuple(manager.queue))
    return {"families": families}


def shared_state_hash(machine: "DSMMachine") -> str:
    """SHA-256 hex digest of :func:`shared_state_payload`."""
    return hash_payload(shared_state_payload(machine))
