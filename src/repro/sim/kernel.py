"""The simulator: a clock plus an event loop.

A :class:`Simulator` drains its :class:`~repro.sim.event.EventQueue` in
time order, advancing the clock to each event's timestamp.  Simulated
processes (see :mod:`repro.sim.process`) are layered on top: spawning a
process schedules its first step as an ordinary event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.sim.event import Event, EventQueue, PRIORITY_NORMAL
from repro.sim.rng import RngStreams
from repro.sim.trace import NullTracer, Tracer


#: An event key: ``(time, priority, seq)``, the heap ordering triple.
EventKey = tuple[float, int, int]


def _require_nonnegative_delay(delay: float) -> None:
    """Shared negative-delay guard for every relative-scheduling entry point.

    One helper instead of four copy-pasted checks; the message is part of
    the public error contract and must not change.
    """
    if delay < 0:
        raise SimulationError(f"cannot schedule in the past: delay={delay}")


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: Master seed for the simulator's named random streams.
        tracer: Event tracer; defaults to a no-op tracer.
    """

    def __init__(self, seed: int = 0, tracer: Tracer | None = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        #: Key of the event currently (or most recently) executing under
        #: :meth:`run_window` — the shard router reads it to stamp the
        #: emitting event onto cross-shard sends.  Plain :meth:`run`
        #: leaves it ``None``; serial runs never pay for the bookkeeping.
        self.current_key: EventKey | None = None
        self.rng = RngStreams(seed)
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Cached ``tracer.enabled`` so hot paths pay one attribute read
        #: instead of a property call per event.  The tracer is fixed at
        #: construction time, so the flag never goes stale.
        self.trace_enabled: bool = self.tracer.enabled
        self._processes: list["Process"] = []  # noqa: F821 - forward ref

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        _require_nonnegative_delay(delay)
        return self._queue.push(self._now + delay, fn, priority)

    def at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        return self._queue.push(time, fn, priority)

    def schedule_fn(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn`` after ``delay`` with no cancellable handle.

        The hot-path variant of :meth:`schedule` for fire-and-forget
        events; see :meth:`EventQueue.push_fn`.
        """
        _require_nonnegative_delay(delay)
        self._queue.push_fn(self._now + delay, fn, priority)

    def at_fn(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn`` at absolute ``time`` with no cancellable handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        self._queue.push_fn(time, fn, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "process",
    ) -> "Process":  # noqa: F821 - forward ref
        """Create and start a simulated process from a generator.

        The generator may yield floats (sleep), :class:`~repro.sim.waiters.Signal`
        or :class:`~repro.sim.waiters.Future` objects (wait), or another
        :class:`Process` (join).  See :mod:`repro.sim.process`.
        """
        from repro.sim.process import Process

        process = Process(self, gen, name)
        self._processes.append(process)
        return process

    @property
    def processes(self) -> Iterable["Process"]:  # noqa: F821
        """All processes ever spawned, in spawn order."""
        return tuple(self._processes)

    def step(self) -> float:
        """Fire the single earliest event; return the new simulated time."""
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"event queue went backwards: {event.time} < {self._now}"
            )
        self._now = event.time
        event.fn()
        return self._now

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue.

        Args:
            until: Stop once the clock would pass this time.  Events at
                exactly ``until`` still fire.
            max_events: Safety valve; raise if more events than this fire.

        Returns:
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        # The loop below is a manually inlined pop/advance cycle: it
        # peeks and pops heap tuples directly instead of going through
        # EventQueue.pop + Simulator.step, which removes two Python
        # method calls per event on the hottest path in the simulator.
        # Heap entries carry a cancellable Event handle, a bare callback
        # (push_fn), or a callback plus one argument (push_call).
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        event_cls = Event
        # The pop count is kept in a local and folded into the queue's
        # live count on exit: nothing observes pending_events mid-run,
        # and a local integer add is far cheaper than an attribute
        # read-modify-write per event.  Cancellations and pushes during
        # callbacks still adjust _live directly, which composes with the
        # deferred subtraction.
        popped = 0
        try:
            if until is None and max_events is None:
                # The common run-to-completion case gets the leanest
                # loop: no bound checks at all.
                while heap:
                    entry = heap[0]
                    target = entry[3]
                    is_event = target.__class__ is event_cls
                    if is_event and target.cancelled:
                        heappop(heap)
                        continue
                    time = entry[0]
                    heappop(heap)
                    popped += 1
                    if time < self._now:
                        raise SimulationError(
                            f"event queue went backwards: {time} < {self._now}"
                        )
                    self._now = time
                    if is_event:
                        target._queue = None
                        target.fn()
                    elif len(entry) == 5:
                        target(entry[4])
                    else:
                        target()
                return self._now
            # Bounded run: sentinels keep the per-event checks single
            # comparisons rather than None tests.
            time_limit = float("inf") if until is None else until
            event_limit = max_events if max_events is not None else float("inf")
            while heap:
                entry = heap[0]
                target = entry[3]
                is_event = target.__class__ is event_cls
                if is_event and target.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > time_limit:
                    self._now = until
                    break
                heappop(heap)
                popped += 1
                if time < self._now:
                    raise SimulationError(
                        f"event queue went backwards: {time} < {self._now}"
                    )
                self._now = time
                if is_event:
                    target._queue = None
                    target.fn()
                elif len(entry) == 5:
                    target(entry[4])
                else:
                    target()
                fired += 1
                if fired > event_limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            queue._live -= popped
            self._running = False
        return self._now

    def run_window(
        self,
        limit: EventKey,
        max_events: int | None = None,
    ) -> tuple[int, EventKey | None]:
        """Drain every event whose ``(time, priority, seq)`` key is ``< limit``.

        The shard-aware run facade: a shard's local virtual time (LVT)
        advances through this method, bounded by the coordinator's
        current horizon key (GVT plus the sync policy's window).  The
        loop is the same manually inlined, closure-free pop/advance
        cycle as :meth:`run` — the compile-ready hot path — extended
        with a full-key bound (so a replay can stop *exactly* before a
        straggler's key, mid-timestamp) and with ``current_key``
        tracking so the shard router can attribute emitted messages to
        the event that sent them.

        Args:
            limit: Exclusive upper bound key.  Events compare by
                ``(time, priority, seq)``; an event equal to ``limit``
                does not fire.
            max_events: Optional budget; the drain stops (without error)
                after this many events, used to amortize checkpoint
                replica catch-up.

        Returns:
            ``(fired, last_key)``: how many events fired and the key of
            the last one (``None`` if nothing fired).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        event_cls = Event
        limit_time, limit_priority, limit_seq = limit
        budget = max_events if max_events is not None else -1
        fired = 0
        popped = 0
        last_key: EventKey | None = None
        try:
            while heap:
                if fired == budget:
                    break
                entry = heap[0]
                target = entry[3]
                is_event = target.__class__ is event_cls
                if is_event and target.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > limit_time:
                    break
                if time == limit_time:
                    priority = entry[1]
                    if priority > limit_priority or (
                        priority == limit_priority and entry[2] >= limit_seq
                    ):
                        break
                heappop(heap)
                popped += 1
                if time < self._now:
                    raise SimulationError(
                        f"event queue went backwards: {time} < {self._now}"
                    )
                self._now = time
                last_key = (time, entry[1], entry[2])
                self.current_key = last_key
                if is_event:
                    target._queue = None
                    target.fn()
                elif len(entry) == 5:
                    target(entry[4])
                else:
                    target()
                fired += 1
        finally:
            queue._live -= popped
            self._running = False
        return fired, last_key

    def blocked_processes(self) -> list["Process"]:  # noqa: F821
        """Processes that have not finished (killed ones count as done)."""
        return [p for p in self._processes if not p.finished]

    def check_quiescent(self) -> None:
        """Raise unless every spawned process has finished.

        Workload drivers call this after :meth:`run` to catch deadlocks:
        a process still waiting when the event queue is empty can never
        make progress again.  The report names each blocked process and
        what it is waiting on (the signal, future, or join target).
        """
        stuck = self.blocked_processes()
        if stuck:
            details = "\n".join(
                f"  - {p.name}: {p.describe_wait()}" for p in stuck
            )
            raise SimulationError(
                f"simulation ended at t={self._now:.9g} with {len(stuck)} "
                "blocked process(es) (deadlock?):\n" + details
            )
