"""The sharded optimistic simulation kernel (Time Warp over replicas).

This module parallelizes the event loop itself — the structural
counterpart of the paper's thesis applied to our own simulator: shards
execute optimistically ahead of global virtual time (GVT) and roll back
when a cross-shard message arrives in their past, instead of waiting
conservatively on every possible interaction.

Architecture
------------

The node set is partitioned into shards (sharing-group-aware contiguous
blocks, :class:`ShardPlan`).  Each shard runs a **full replica** of the
machine, built from the same deterministic factory as a serial run, but
only spawns the processes of the nodes it owns
(:meth:`~repro.core.machine.DSMMachine.spawn_for`).  A
:class:`ShardRouter` installed on each replica's network diverts sends
addressed to non-owned nodes into an outbox; the coordinator
(:class:`ShardedSimulator`) stamps them with globally unique delivery
keys and injects them into the owning replica's event heap as
cancellable events.  Intra-shard traffic never leaves the replica's
fast path.

Arrival ordering: in the serial kernel a delivery's sequence number is
allocated at *send* time, so two messages arriving at the same instant
fire in send order, and both fire before anything their handlers later
schedule at that instant.  A partitioned run cannot share one counter,
so every arrival in a routed replica — intra-shard and cross-shard
alike — is keyed ``(arrival, _DELIVERY_PRIORITY, token)`` where the
token is ``(send time, src node, per-src send index)``.  The priority
band sorts arrivals before every same-time local event (zero-delay
wakeups a handler schedules key-sort after their delivery), and the
token orders arrivals among themselves by send time exactly as the
serial counter does, while staying independent of any replica-local
counter — a front replica and its replaying base stamp bit-identical
keys.  This also makes key order equal execution order inside a
replica, the invariant the rollback bookkeeping (committed prefix =
all keys below the straggler) depends on.

Synchronization policies
------------------------

``conservative``
    Classic lookahead windows: every round, each shard drains events
    strictly below ``GVT + lookahead`` where lookahead is the minimum
    cross-shard wire latency.  A message sent at time ``s >= GVT``
    arrives at ``s + latency >= GVT + lookahead`` — at or beyond every
    shard's horizon — so stragglers are provably impossible and no
    rollback machinery runs.

``optimistic``
    Shards drain up to ``GVT + lookahead * window_factor`` (the bounded
    optimism window).  A delivery whose key is at or below the target
    shard's local virtual time is a **straggler**: the shard rolls back
    to just before the straggler's key and re-executes.  Every message
    the rolled-back execution emitted from the undone suffix is
    annihilated (its **anti-message**): a pending delivery is cancelled
    in place; an already-executed one recursively rolls its consumer
    back (cascading rollback, computed as a fixpoint before any
    re-execution starts).

Checkpoints by replay (coast-forward)
-------------------------------------

Python generator frames cannot be copied, so shard state cannot be
snapshotted by value.  Instead each optimistic shard keeps a **base
replica** — a second, lagging execution fed only *committed* inputs
(deliveries below GVT, which the GVT fence proves will never be
annihilated).  The base replica *is* the checkpoint: restoring to a
straggler key ``K`` means injecting the logged inputs below ``K`` and
draining the base to exactly ``K`` with its outputs suppressed
(coast-forward; duplicates of messages the original execution already
sent), then promoting it to be the shard's live replica.  A fresh base
is then rebuilt from the factory and catches up incrementally, a
bounded number of events per round, so steady-state rollback cost is
proportional to the optimism window, not to history.

Determinism and parity
----------------------

A shard's execution is a pure function of its factory and the injected
delivery sequence, so replicas replay exactly, and the merged final
state (each node read from its owning replica, each group's lock table
from the root's owner) is bit-identical to a serial run — enforced via
:mod:`repro.sim.statehash` by the shard-parity tests and the
``shard-smoke`` CI gate.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ShardingError
from repro.net.message import Message
from repro.sim.event import PRIORITY_ARRIVAL_BAND
from repro.sim.kernel import EventKey

#: Priority band for message arrivals in a routed replica.  Far below
#: every local priority (URGENT is -1), so an arrival fires *before*
#: any same-time local event; the seq slot holds a ``(send time, src
#: node, per-src send index)`` token that orders same-time arrivals in
#: send order, exactly as the serial kernel's seq-at-send-time counter
#: does.  Both directions are load-bearing: events a delivery handler
#: schedules at the same timestamp (zero-delay wakeups) get ordinary
#: local keys, which must sort *after* the delivery, and two arrivals
#: colliding at one instant must fire in send order whichever shard
#: each came from.  With band ordering, execution order within a
#: replica always equals key order, which is what makes "rolled back to
#: just before key K" mean exactly "the executed prefix is every event
#: with key < K".
_DELIVERY_PRIORITY = PRIORITY_ARRIVAL_BAND

#: Priority bound used to build inclusive/exclusive window limit keys
#: (strictly outside both the delivery band and local priorities).
_PRIORITY_CEILING = 1 << 30

#: Default bounded-optimism multiple of the conservative lookahead.
DEFAULT_WINDOW_FACTOR = 8.0

#: Default per-round event budget for base-replica catch-up after a
#: rollback consumed the old base (keeps one round from replaying an
#: unbounded history in a single burst).
_BASE_CATCHUP_FLOOR = 4096

# _Delivery lifecycle states.
_PENDING = 0      # routed, not yet injected anywhere (pre-replay)
_DELIVERED = 1    # injected into the owner's heap, not yet executed
_EXECUTED = 2     # the owner fired it
_ANNIHILATED = 3  # cancelled by an anti-message; skipped everywhere


class ShardPlan:
    """A partition of node ids into shards.

    Built group-aware: nodes sharing a group are clustered (union-find)
    and clusters are kept whole when they fit a shard's quota, so most
    sharing traffic stays intra-shard; clusters larger than one quota
    (e.g. a single machine-wide group) split into contiguous blocks —
    the root's shard then sees exactly the cross-shard root<->member
    traffic the optimistic kernel is built to overlap.
    """

    __slots__ = ("owner", "n_nodes", "n_shards")

    def __init__(self, owner: Sequence[int]) -> None:
        if not owner:
            raise ShardingError("a shard plan needs at least one node")
        shards = sorted(set(owner))
        if shards != list(range(len(shards))):
            raise ShardingError(f"shard ids must be dense from 0: {shards}")
        self.owner = tuple(owner)
        self.n_nodes = len(self.owner)
        self.n_shards = len(shards)

    def __repr__(self) -> str:
        return f"ShardPlan(owner={self.owner})"

    def shard_of(self, node: int) -> int:
        return self.owner[node]

    def owned(self, shard: int) -> frozenset[int]:
        return frozenset(
            node for node, owner in enumerate(self.owner) if owner == shard
        )

    @classmethod
    def from_groups(
        cls,
        n_nodes: int,
        n_shards: int,
        groups: Iterable[Iterable[int]] = (),
    ) -> "ShardPlan":
        """Partition ``n_nodes`` into up to ``n_shards`` shards.

        ``groups`` are member sets whose nodes should co-locate when
        possible.  The result may use fewer shards than requested (never
        more than there are nodes); shard ids are dense and ordered by
        their smallest node, with node 0 always in shard 0.
        """
        if n_nodes < 1:
            raise ShardingError(f"need at least one node: {n_nodes}")
        if n_shards < 1:
            raise ShardingError(f"need at least one shard: {n_shards}")
        n_shards = min(n_shards, n_nodes)
        parent = list(range(n_nodes))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for members in groups:
            members = list(members)
            for member in members[1:]:
                root_a, root_b = find(members[0]), find(member)
                if root_a != root_b:
                    parent[root_b] = root_a
        clusters: dict[int, list[int]] = {}
        for node in range(n_nodes):
            clusters.setdefault(find(node), []).append(node)
        ordered = sorted(clusters.values(), key=lambda c: c[0])

        quota = -(-n_nodes // n_shards)  # ceil
        owner = [0] * n_nodes
        shard = 0
        filled = 0
        for cluster in ordered:
            # Keep a cluster whole when it fits the next shard's
            # remaining space; otherwise (or when it can never fit)
            # stream it across shards contiguously.
            if filled and filled + len(cluster) > quota and shard < n_shards - 1:
                shard += 1
                filled = 0
            for node in cluster:
                if filled >= quota and shard < n_shards - 1:
                    shard += 1
                    filled = 0
                owner[node] = shard
                filled += 1
        # Renumber densely in first-appearance order (node 0 -> shard 0).
        remap: dict[int, int] = {}
        for node in range(n_nodes):
            remap.setdefault(owner[node], len(remap))
        return cls(tuple(remap[owner[node]] for node in range(n_nodes)))


class _Delivery:
    """One routed cross-shard message: log record + injectable event."""

    __slots__ = (
        "key",
        "emit_key",
        "src_shard",
        "dst_shard",
        "src",
        "dst",
        "kind",
        "payload",
        "size",
        "sent_at",
        "state",
        "event",
        "_handler",
        "_msg",
    )

    def __init__(
        self,
        key: EventKey,
        emit_key: EventKey,
        src_shard: int,
        dst_shard: int,
        msg: Message,
    ) -> None:
        self.key = key
        self.emit_key = emit_key
        self.src_shard = src_shard
        self.dst_shard = dst_shard
        self.src = msg.src
        self.dst = msg.dst
        self.kind = msg.kind
        self.payload = msg.payload
        self.size = msg.size_bytes
        self.sent_at = msg.sent_at
        self.state = _PENDING
        self.event = None
        self._handler = None
        self._msg = None

    def __repr__(self) -> str:
        return (
            f"_Delivery({self.src}->{self.dst} {self.kind!r} @ {self.key}, "
            f"state={self.state})"
        )

    def __getstate__(self) -> tuple:
        """Durable identity only — the process-backend wire format.

        The lifecycle state, the cancellable heap event, and the bound
        handler/message describe one replica's timeline and never cross
        the IPC boundary; the receiving side re-resolves them against
        its own replica at inject time.
        """
        return (
            self.key,
            self.emit_key,
            self.src_shard,
            self.dst_shard,
            self.src,
            self.dst,
            self.kind,
            self.payload,
            self.size,
            self.sent_at,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.key,
            self.emit_key,
            self.src_shard,
            self.dst_shard,
            self.src,
            self.dst,
            self.kind,
            self.payload,
            self.size,
            self.sent_at,
        ) = state
        self.state = _PENDING
        self.event = None
        self._handler = None
        self._msg = None

    def fire(self) -> None:
        self.state = _EXECUTED
        self._handler(self._msg)

    def _resolve(self, machine: Any) -> tuple[Any, Message]:
        """Handler + fresh message bound to *this* replica.

        Resolution must happen against the target replica (a discarded
        replica's cached handler must never leak into its replacement),
        and each replica gets its own :class:`Message` instance so a
        handler that stashes the object cannot alias two timelines.
        """
        network = machine.network
        handler = network._direct.get((self.dst, self.kind))
        if handler is None:
            handler = network._resolve_direct(self.dst, self.kind)
        msg = Message(self.src, self.dst, self.kind, self.payload, self.size)
        msg.sent_at = self.sent_at
        return handler, msg

    def inject(self, machine: Any) -> None:
        """(Re-)schedule this delivery in the *front* replica's heap.

        Tracks the record's live state: the registered cancellable event
        is what a later anti-message cancels, and :meth:`fire` marks the
        record executed so a rollback knows to cascade.  Only ever
        called against the current (or about-to-be-promoted) front —
        base catch-up uses :meth:`inject_replay`.
        """
        handler, msg = self._resolve(machine)
        self._handler = handler
        self._msg = msg
        self.state = _DELIVERED
        time, priority, seq = self.key
        self.event = machine.sim._queue.push_at_key(time, priority, seq, self.fire)

    def inject_replay(self, machine: Any) -> None:
        """Deliver into a background base replica — stateless.

        The base replays committed history while the front is still the
        live timeline, so this must not touch ``state``/``event``/the
        bound handler: those describe the record's status on the front
        (e.g. the front may have EXECUTED this record already, or may
        still hold its cancellable event).  Committed deliveries are
        below the GVT fence and can never be annihilated, so the replay
        event needs no cancellation handle either.
        """
        handler, msg = self._resolve(machine)
        time, priority, seq = self.key
        machine.sim._queue.push_at_key(
            time, priority, seq, lambda: handler(msg)
        )

    def annihilate(self) -> bool:
        """Cancel this delivery; returns True if it had already executed.

        The anti-message: a still-pending delivery is cancelled in place
        (its event becomes a skipped no-op); an executed one reports
        ``True`` so the caller rolls the consuming shard back to before
        ``self.key``.
        """
        executed = self.state == _EXECUTED
        self.state = _ANNIHILATED
        event = self.event
        self.event = None
        if event is not None:
            event.cancel()
        return executed


class ShardRouter:
    """Per-replica send interceptor (installed on the replica's network).

    Collects cross-shard emissions into an outbox the coordinator flushes
    each round.  In ``suppress`` mode (base replicas and coast-forward
    replay) emissions are counted and dropped: a replay re-executes
    events whose messages were already sent by the original execution.
    """

    __slots__ = ("owned", "sim", "outbox", "suppress", "suppressed")

    def __init__(self, owned: frozenset[int], sim: Any) -> None:
        self.owned = owned
        self.sim = sim
        #: ``(msg, arrival, copies, token, emit_key)`` in emission
        #: order; ``token`` is the send-order key the network stamped
        #: (see :data:`_DELIVERY_PRIORITY`).
        self.outbox: list[tuple[Message, float, int, tuple, EventKey]] = []
        self.suppress = False
        self.suppressed = 0

    def emit(
        self, msg: Message, arrival: float, copies: int, token: tuple
    ) -> None:
        if self.suppress:
            self.suppressed += copies
            return
        emit_key = self.sim.current_key
        if emit_key is None:
            # Emitted outside the drain loop (setup code at t=0).
            emit_key = (self.sim._now, -_PRIORITY_CEILING, 0)
        self.outbox.append((msg, arrival, copies, token, emit_key))


class _Replica:
    """One build of the machine plus its router and drain bookkeeping."""

    __slots__ = ("machine", "system", "router", "lvt", "fired")

    def __init__(self, machine: Any, system: Any, router: ShardRouter) -> None:
        self.machine = machine
        self.system = system
        self.router = router
        #: Key of the last executed event (local virtual time), or None.
        self.lvt: EventKey | None = None
        self.fired = 0

    def drain(self, limit: EventKey, max_events: int | None = None) -> int:
        fired, last = self.machine.sim.run_window(limit, max_events=max_events)
        if last is not None:
            self.lvt = last
        self.fired += fired
        return fired


class _Shard:
    """One shard: its live (front) replica, logs, and base checkpoint."""

    __slots__ = (
        "index",
        "owned",
        "front",
        "base",
        "inputs",
        "outputs",
        "base_pending",
        "round_fired",
        "_base_seq",
    )

    def __init__(self, index: int, owned: frozenset[int]) -> None:
        self.index = index
        self.owned = owned
        self.front: _Replica | None = None
        self.base: _Replica | None = None
        #: Every delivery ever routed *to* this shard, in routing order.
        self.inputs: list[_Delivery] = []
        #: Live deliveries emitted *by* this shard (fossil-collected
        #: below GVT: committed emissions can never be annihilated).
        self.outputs: list[_Delivery] = []
        #: Min-heap of ``(key, n, record)`` inputs the base replica has
        #: not consumed yet.
        self.base_pending: list[tuple[EventKey, int, _Delivery]] = []
        self.round_fired = 0
        # Heap tie-break only; delivery keys are globally unique, so a
        # per-shard counter is as good as a global one.
        self._base_seq = 0

    def enqueue_base(self, record: _Delivery) -> None:
        """Queue a routed input for the (current or future) base replica."""
        self._base_seq += 1
        heappush(self.base_pending, (record.key, self._base_seq, record))

    def advance_base(self, limit: EventKey, budget: int) -> int:
        """Feed committed inputs below ``limit`` to the base; drain it.

        Returns the number of events the base re-executed.  Stateless
        replay injection (:meth:`_Delivery.inject_replay`): the record's
        state and cancellable event describe the *front's* timeline and
        must not be disturbed by base bookkeeping.
        """
        pending = self.base_pending
        while pending and pending[0][0] < limit:
            _key, _n, record = heappop(pending)
            if record.state != _ANNIHILATED:
                record.inject_replay(self.base.machine)
        return self.base.drain(limit, max_events=budget)

    def restore(
        self, target: EventKey, rebuild: Callable[[], _Replica]
    ) -> int:
        """Coast-forward restore to just before ``target``.

        Promotes the base replica: inject its unconsumed committed
        inputs below ``target``, drain it to exactly ``target`` with
        outputs suppressed (they were already sent), then swap it in as
        the live replica and start a fresh base via ``rebuild``.
        Returns the number of events the coast-forward re-executed.
        """
        base = self.base
        if base is None:  # pragma: no cover - guarded by policy checks
            raise ShardingError("rollback without a base replica")
        pending = self.base_pending
        while pending and pending[0][0] < target:
            _key, _n, record = heappop(pending)
            if record.state != _ANNIHILATED:
                record.inject(base.machine)
        fired, _last = base.machine.sim.run_window(target)
        base.fired += fired
        if base.machine.sim._queue:
            # Nothing this shard owns may sit below the straggler key
            # after coast-forward, or the restore undershot.
            head = base.machine.sim._queue.peek_time()
            if head < target[0]:
                raise ShardingError(
                    f"coast-forward stalled at {head} before target {target}"
                )
        # The promoted replica starts emitting live again.
        base.router.suppress = False
        base.lvt = base.machine.sim.current_key
        self.front = base
        # Everything at/after the straggler key is part of the undone
        # suffix: re-deliver it to the promoted replica whether the old
        # front had executed it, held its event, or never saw it (the
        # straggler itself).  Records below the key were consumed by the
        # coast-forward (or earlier base catch-up) and stay consumed.
        for record in self.inputs:
            if record.state != _ANNIHILATED and record.key >= target:
                record.inject(base.machine)
        # Fresh base at t=0; it owes the entire committed input history.
        self.base = rebuild()
        self.base_pending = []
        for record in self.inputs:
            if record.state != _ANNIHILATED:
                self.enqueue_base(record)
        return fired


class ShardStats:
    """Aggregate behaviour counters for one sharded run."""

    __slots__ = (
        "rounds",
        "executed",
        "replayed",
        "rollbacks",
        "stragglers",
        "annihilated",
        "routed",
        "suppressed",
    )

    def __init__(self) -> None:
        self.rounds = 0
        #: Events fired by front replicas (committed + later rolled back).
        self.executed = 0
        #: Events re-executed by base replicas (checkpoint catch-up +
        #: coast-forward restores).
        self.replayed = 0
        self.rollbacks = 0
        self.stragglers = 0
        self.annihilated = 0
        self.routed = 0
        self.suppressed = 0

    def rollback_ratio(self) -> float:
        """Re-executed events per front-executed event."""
        if self.executed == 0:
            return 0.0
        return self.replayed / self.executed

    def summary(self) -> dict[str, float | int]:
        return {
            "rounds": self.rounds,
            "executed": self.executed,
            "replayed": self.replayed,
            "rollbacks": self.rollbacks,
            "stragglers": self.stragglers,
            "annihilated": self.annihilated,
            "routed": self.routed,
            "rollback_ratio": self.rollback_ratio(),
        }


class WindowPacer:
    """Adaptive optimism control, shared by both shard backends.

    Two dials, both rollback-driven and both parity-transparent — the
    merged final state is a pure function of the injected delivery
    sequence, never of the round structure (see "Determinism and
    parity" above), so pacing can only change *cost*, not results:

    * **Window** starts at the configured optimism window, quarters on
      any round that rolled back (floored at the conservative
      lookahead, which provably cannot straggle), and recovers by 5%
      per clean round up to the configured ceiling.  The asymmetry is
      deliberate: every rollback costs a full base-replica rebuild
      (checkpoint-by-replay replays the committed history from
      scratch), so re-speculating too eagerly after a rollback is far
      more expensive than a few extra fenced rounds.  On the contended
      figure2 queue this cuts rollbacks ~4x and the replay ratio from
      ~9.2 to ~2.6 for a ~17% round increase; workloads that never
      roll back (the figure8 pipeline) never shrink and pay nothing.
    * **Base cadence** controls checkpoint catch-up (base-replica
      replay).  It runs every round while rollbacks are fresh, but each
      :data:`CLEAN_STREAK` clean rounds the interval doubles (capped at
      :data:`MAX_CADENCE`), with the per-advance event budget scaled to
      match.  Replay the run never needs — a base that is never
      promoted — is simply skipped, which is where the rollback ratio
      drops on well-behaved workloads.
    """

    __slots__ = ("floor", "ceiling", "window", "cadence", "_clean", "_skip")

    SHRINK = 0.25
    GROW = 1.05
    MAX_CADENCE = 8
    CLEAN_STREAK = 2

    def __init__(self, lookahead: float, window: float) -> None:
        self.floor = lookahead
        self.ceiling = window
        self.window = window
        self.cadence = 1
        self._clean = 0
        self._skip = 0

    def note_round(self, rolled_back: bool) -> None:
        """Record one round's outcome; adjusts window and cadence."""
        if rolled_back:
            self.window = max(self.floor, self.window * self.SHRINK)
            self.cadence = 1
            self._clean = 0
            self._skip = 0
        else:
            self._clean += 1
            if self.window < self.ceiling:
                self.window = min(self.ceiling, self.window * self.GROW)
            if self._clean >= self.CLEAN_STREAK and self.cadence < self.MAX_CADENCE:
                self.cadence *= 2
                self._clean = 0

    def should_advance(self) -> bool:
        """True when this round is due for base catch-up."""
        self._skip += 1
        if self._skip >= self.cadence:
            self._skip = 0
            return True
        return False


#: A factory builds one replica: ``factory(owned) -> (machine, system)``.
#: ``owned=None`` must build the plain serial machine; with a frozenset
#: it must set ``machine.shard_owned`` (or use ``spawn_for``) so only
#: owned processes spawn.  The build must be deterministic: replicas and
#: replays all come from this function.
ShardFactory = Callable[[frozenset[int] | None], tuple[Any, Any]]


def build_replica(
    factory: ShardFactory, owned: frozenset[int], suppress: bool
) -> _Replica:
    """Build and validate one shard replica (shared by both backends)."""
    machine, system = factory(owned)
    if machine.shard_owned != owned:
        raise ShardingError(
            "factory must set machine.shard_owned to the owned set "
            f"(got {machine.shard_owned!r}, want {set(owned)!r})"
        )
    if not getattr(system, "shardable", False):
        raise ShardingError(
            f"system {getattr(system, 'name', system)!r} is not "
            "shardable (not message-pure); run serial"
        )
    if machine.loss_model is not None:
        raise ShardingError(
            "random loss models are not shardable: per-replica RNG "
            "draw order diverges from the serial kernel"
        )
    if machine.failover_manager is not None:
        raise ShardingError(
            "root failover crosses replica boundaries (direct engine "
            "state reads); not supported under sharding"
        )
    router = ShardRouter(owned, machine.sim)
    router.suppress = suppress
    machine.network.install_shard_router(router)
    return _Replica(machine, system, router)


def min_cross_latency(machine: Any, owner: Sequence[int]) -> float:
    """Conservative lookahead: the smallest cross-shard wire latency."""
    topology = machine.topology
    hop = machine.params.hop_latency
    best = float("inf")
    n_nodes = len(owner)
    for src in range(n_nodes):
        for dst in range(n_nodes):
            if owner[src] == owner[dst]:
                continue
            latency = topology.hops(src, dst) * hop
            if latency < best:
                best = latency
    if best == float("inf"):
        # Single shard: no cross traffic; any positive window works.
        return hop if hop > 0 else 0.0
    return best


def check_merged_spans(spans: list[tuple[str, float, float, int]]) -> None:
    """Verify mutual exclusion across merged per-replica section spans.

    Per-replica checkers only see their own nodes' sections; the merged
    ``(lock, enter, exit, node)`` spans re-verify exclusion across shard
    boundaries.  Shared by both backends (the process backend ships the
    span tuples over IPC at finalize time).
    """
    spans.sort()
    previous: dict[str, tuple[float, int]] = {}
    for lock, enter, exit_, node in spans:
        last = previous.get(lock)
        if last is not None and enter < last[0]:
            raise ShardingError(
                f"merged mutual exclusion violated on {lock!r}: node "
                f"{node} entered at t={enter} before node {last[1]} "
                f"exited at t={last[0]}"
            )
        previous[lock] = (exit_, node)


class ShardedSimulator:
    """Coordinates N shard replicas under one virtual clock.

    Args:
        factory: Deterministic replica builder (see :data:`ShardFactory`).
        plan: Node-to-shard assignment.
        policy: ``"conservative"`` or ``"optimistic"``.
        window_factor: Optimism window as a multiple of the conservative
            lookahead (ignored under ``conservative``).
    """

    #: Backend tag for honest reporting (see repro.sim.procshards).
    backend = "inproc"

    def __init__(
        self,
        factory: ShardFactory,
        plan: ShardPlan,
        policy: str = "optimistic",
        window_factor: float = DEFAULT_WINDOW_FACTOR,
    ) -> None:
        if policy not in ("conservative", "optimistic"):
            raise ShardingError(
                f"unknown sync policy {policy!r}; use 'conservative' or 'optimistic'"
            )
        if window_factor < 1.0:
            raise ShardingError(
                f"window_factor must be >= 1 (got {window_factor})"
            )
        self.factory = factory
        self.plan = plan
        self.policy = policy
        self.stats = ShardStats()
        #: Optional observer called with each round's GVT estimate
        #: (campaign oracles hook GvtMonitor.note here).  Must be
        #: read-only: it runs inside the round loop.
        self.on_gvt: Callable[[float], None] | None = None
        self.shards: list[_Shard] = []
        self._finished = False
        for index in range(plan.n_shards):
            shard = _Shard(index, plan.owned(index))
            shard.front = self._build_replica(shard, suppress=False)
            self.shards.append(shard)
        first = self.shards[0].front.machine
        self.n_nodes = first.n_nodes
        self.lookahead = self._min_cross_latency(first)
        if self.lookahead <= 0.0:
            raise ShardingError(
                "zero cross-shard lookahead (hop_latency=0 or co-located "
                "shards): sharding cannot make progress; run serial"
            )
        self.window = (
            self.lookahead
            if policy == "conservative"
            else self.lookahead * window_factor
        )
        self.pacer = WindowPacer(self.lookahead, self.window)
        if policy == "optimistic":
            for shard in self.shards:
                shard.base = self._build_replica(shard, suppress=True)
                # A fresh base has consumed nothing; every input routed
                # from now on is queued for it in route order.

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_replica(self, shard: _Shard, suppress: bool) -> _Replica:
        return build_replica(self.factory, shard.owned, suppress)

    def _min_cross_latency(self, machine: Any) -> float:
        return min_cross_latency(machine, self.plan.owner)

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------

    def _gvt(self) -> float | None:
        """Earliest pending event time across all front replicas."""
        best: float | None = None
        for shard in self.shards:
            queue = shard.front.machine.sim._queue
            if queue:
                time = queue.peek_time()
                if best is None or time < best:
                    best = time
        return best

    def run(self, max_rounds: int | None = None) -> float:
        """Drive all shards to completion; returns the final clock."""
        if self._finished:
            raise ShardingError("sharded run already finished")
        optimistic = self.policy == "optimistic"
        pacer = self.pacer
        while True:
            gvt = self._gvt()
            if gvt is None:
                break
            if self.on_gvt is not None:
                self.on_gvt(gvt)
            self.stats.rounds += 1
            if max_rounds is not None and self.stats.rounds > max_rounds:
                raise ShardingError(
                    f"exceeded max_rounds={max_rounds}; likely a livelock"
                )
            if optimistic and pacer.should_advance():
                self._advance_bases(gvt, cadence=pacer.cadence)
            horizon: EventKey = (gvt + self.window, -_PRIORITY_CEILING, 0)
            for shard in self.shards:
                fired = shard.front.drain(horizon)
                shard.round_fired = fired
                self.stats.executed += fired
            stragglers = self._route_round()
            if stragglers:
                if not optimistic:
                    raise ShardingError(
                        "straggler under the conservative policy: the "
                        "lookahead bound was violated (internal error)"
                    )
                self._rollback(stragglers, gvt)
            if optimistic:
                pacer.note_round(bool(stragglers))
                self.window = pacer.window
            self._fossil_collect(gvt)
        self.stats.suppressed = sum(
            shard.front.router.suppressed for shard in self.shards
        ) + sum(
            shard.base.router.suppressed
            for shard in self.shards
            if shard.base is not None
        )
        self._finished = True
        return self.elapsed

    def _fossil_collect(self, gvt: float) -> None:
        """Drop output records that can never be annihilated.

        A rollback target is always a delivery key strictly above GVT
        (arrival >= send time + lookahead > GVT), so an emission stamped
        at or below GVT can never satisfy ``emit_key >= target`` — it is
        committed history the annihilation fixpoint need not scan.
        Input records are kept: a rollback rebuilds a fresh base replica
        from t=0, which owes the shard's entire delivery history.
        """
        for shard in self.shards:
            outputs = shard.outputs
            if outputs and any(record.emit_key[0] <= gvt for record in outputs):
                shard.outputs = [
                    record for record in outputs if record.emit_key[0] > gvt
                ]

    def _route_round(self) -> dict[int, EventKey]:
        """Flush outboxes, stamp delivery keys, inject; find stragglers.

        A routed delivery's key is ``(arrival, band, token)`` with the
        send-order token the source network stamped at emission time —
        the same key the arrival would have carried had it stayed
        intra-shard, so cross- and intra-shard arrivals colliding at one
        instant order exactly as in a serial run; the parity tests hold
        this to bit-identical final state.
        """
        entries: list[tuple[float, tuple, int, Message, int, EventKey]] = []
        for shard in self.shards:
            outbox = shard.front.router.outbox
            if outbox:
                for msg, arrival, copies, token, emit_key in outbox:
                    entries.append(
                        (arrival, token, shard.index, msg, copies, emit_key)
                    )
                outbox.clear()
        if not entries:
            return {}
        entries.sort(key=lambda entry: entry[:2])
        stragglers: dict[int, EventKey] = {}
        owner = self.plan.owner
        for arrival, token, src_shard, msg, copies, emit_key in entries:
            dst_shard_index = owner[msg.dst]
            dst_shard = self.shards[dst_shard_index]
            send_time, send_src, send_idx = token
            for copy in range(copies):
                record = _Delivery(
                    (
                        arrival,
                        _DELIVERY_PRIORITY,
                        (send_time, send_src, send_idx + copy),
                    ),
                    emit_key,
                    src_shard,
                    dst_shard_index,
                    msg,
                )
                self.shards[src_shard].outputs.append(record)
                dst_shard.inputs.append(record)
                if dst_shard.base is not None:
                    dst_shard.enqueue_base(record)
                self.stats.routed += 1
                lvt = dst_shard.front.lvt
                if lvt is not None and record.key <= lvt:
                    # Straggler: arrived in the shard's executed past.
                    self.stats.stragglers += 1
                    current = stragglers.get(dst_shard_index)
                    if current is None or record.key < current:
                        stragglers[dst_shard_index] = record.key
                else:
                    record.inject(dst_shard.front.machine)
        return stragglers

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------

    def _rollback(self, stragglers: dict[int, EventKey], gvt: float) -> None:
        """Cascading rollback: annihilation fixpoint, then replays."""
        targets = dict(stragglers)
        changed = True
        while changed:
            changed = False
            for index in list(targets):
                target = targets[index]
                for record in self.shards[index].outputs:
                    if record.state == _ANNIHILATED or record.emit_key < target:
                        continue
                    executed = record.annihilate()
                    self.stats.annihilated += 1
                    if executed:
                        # Anti-message against an already-executed
                        # delivery: its consumer rolls back too.
                        current = targets.get(record.dst_shard)
                        if current is None or record.key < current:
                            targets[record.dst_shard] = record.key
                            changed = True
        for index, target in targets.items():
            self._restore(self.shards[index], target)
            self.stats.rollbacks += 1

    def _restore(self, shard: _Shard, target: EventKey) -> None:
        """Restore ``shard`` to just before ``target`` via coast-forward.

        Delegates to :meth:`_Shard.restore` (shared with the process
        backend's workers), charging the coast-forward replays to stats.
        """
        self.stats.replayed += shard.restore(
            target, lambda: self._build_replica(shard, suppress=True)
        )

    def _advance_bases(self, gvt: float, cadence: int = 1) -> None:
        """Advance every base replica through the committed prefix.

        Deliveries below GVT can never be annihilated (a rollback target
        always lies strictly above GVT), so the base may consume them
        permanently.  The per-round event budget bounds how much history
        a freshly rebuilt base replays in one round; when the pacer
        skipped rounds, ``cadence`` scales the budget to compensate.
        """
        limit: EventKey = (gvt, _PRIORITY_CEILING, 0)
        for shard in self.shards:
            if shard.base is None:
                continue
            budget = cadence * max(_BASE_CATCHUP_FLOOR, 4 * shard.round_fired)
            self.stats.replayed += shard.advance_base(limit, budget)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def machines(self) -> list[Any]:
        """The live (front) replica machines, by shard index."""
        return [shard.front.machine for shard in self.shards]

    @property
    def owner_of(self) -> tuple[int, ...]:
        return self.plan.owner

    @property
    def system_name(self) -> str:
        return self.shards[0].front.system.name

    @property
    def elapsed(self) -> float:
        """The final clock: time of the last event executed anywhere."""
        return max(shard.front.machine.sim.now for shard in self.shards)

    def node(self, node_id: int) -> Any:
        """Node ``node_id``'s handle from its owning replica."""
        return self.shards[self.plan.owner[node_id]].front.machine.nodes[node_id]

    @property
    def nodes(self) -> list[Any]:
        """All node handles, each from its owning replica."""
        return [self.node(node_id) for node_id in range(self.n_nodes)]

    def merged_metrics(self) -> Any:
        """A MachineMetrics view merging every node's owning replica."""
        from repro.metrics.collector import MachineMetrics

        merged = MachineMetrics(self.n_nodes)
        merged.nodes = [
            self.node(node_id).metrics for node_id in range(self.n_nodes)
        ]
        merged.elapsed = self.elapsed
        return merged

    def state_hash(self) -> str:
        """Canonical hash of the merged final state (parity comparator)."""
        from repro.sim.statehash import state_hash

        return state_hash(self.machines, self.plan.owner)

    def verify(self) -> None:
        """Post-run checks: quiescence and global mutual exclusion."""
        for shard in self.shards:
            shard.front.machine.sim.check_quiescent()
        checkers = [
            shard.front.machine.checker
            for shard in self.shards
            if shard.front.machine.checker is not None
        ]
        for checker in checkers:
            checker.verify_no_occupancy()
        spans: list[tuple[str, float, float, int]] = []
        for checker in checkers:
            for span in checker.spans:
                spans.append((span.lock, span.enter, span.exit, span.node))
        check_merged_spans(spans)
