"""Multi-process shard execution backend for the Time Warp kernel.

:mod:`repro.sim.shards` runs every shard replica cooperatively inside
one Python process — bit-identical to serial, but with zero hardware
parallelism (BENCH_kernel.json's ``sharded`` rows record the in-process
backend's wall-clock *slowdown* honestly, as ``overhead_vs_serial``).
This module attaches real processes along
the seam that kernel was built around: replicas only ever communicate
through routed delivery records, so each :class:`~repro.sim.shards._Shard`
can live in its own ``multiprocessing`` worker while a coordinator
drives the exact same GVT round loop.

Round protocol
--------------

One duplex pipe per worker; one batched message each way per round::

    coordinator                                worker (one per shard)
    -----------                                ----------------------
    ("round", gvt, horizon,
     injects, annihilates,          ----->     1. annihilate keys
     restore_target,                           2. coast-forward restore
     advance, cadence)                         3. inject new deliveries
                                               4. base catch-up (paced)
                                               5. drain run_window(horizon)
                                    <-----     ("round", outbox, lvt,
                                                peek, fired, replayed)

All cross-shard records routed to one worker in one round travel in a
single pickled payload (``injects``), and the whole reply — outbox,
local virtual time, heap peek, counters — comes back in one message:
per-round IPC cost is O(workers), not O(messages).

The coordinator mirrors :meth:`ShardedSimulator._route_round` and
``_rollback`` verbatim, with one inference replacing shared state: a
master record counts as *executed* iff it was shipped, not annihilated,
and its key is at or below the destination's reported LVT.  That is
sound because injection always precedes the drain within a round and a
replica fires deliveries in key order.

Why determinism survives
------------------------

A shard's final state is a pure function of its factory and the
injected delivery sequence (see "Determinism and parity" in
:mod:`repro.sim.shards`).  The coordinator stamps delivery keys from
the same ``(arrival, band, send-order token)`` scheme, routes records
in the same globally sorted order, and applies the same
straggler/annihilation fixpoint — so both backends inject the same
records with the same keys, and the merged final state hashes
bit-identical to a serial run whatever the round timing of the workers.

GVT here is the minimum over worker heap peeks, not-yet-shipped
delivery arrivals, and pending restore targets.  Annihilations only
remove events and restores only re-add events at or above their target,
so the estimate is conservative (never above the true GVT) — and an
under-estimated GVT is always safe: it only shrinks the optimism
window and defers fossil collection.

Fallback
--------

:func:`make_sharded_kernel` is the backend resolver.  Environmental
impossibility (no ``fork`` start method, a daemonic parent such as a
sweep worker, spawn failure) degrades to the in-process kernel with a
one-line ``[shards]`` notice; semantic errors (unshardable system,
zero lookahead) raise :class:`~repro.errors.ShardingError` exactly as
the in-process kernel would.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
from typing import Any, Callable

from repro.errors import ShardingError
from repro.net.message import Message
from repro.sim.kernel import EventKey
from repro.sim.shards import (
    DEFAULT_WINDOW_FACTOR,
    ShardFactory,
    ShardPlan,
    ShardStats,
    ShardedSimulator,
    WindowPacer,
    _ANNIHILATED,
    _BASE_CATCHUP_FLOOR,
    _DELIVERED,
    _DELIVERY_PRIORITY,
    _Delivery,
    _PRIORITY_CEILING,
    _Shard,
    build_replica,
    check_merged_spans,
    min_cross_latency,
)

#: Backend names accepted by :func:`make_sharded_kernel`.
BACKEND_INPROC = "inproc"
BACKEND_PROCESS = "process"
SHARD_BACKENDS = (BACKEND_INPROC, BACKEND_PROCESS)


def _notice(message: str) -> None:
    print(f"[shards] {message}", file=sys.stderr)


def process_backend_unavailable() -> str | None:
    """Why the process backend cannot run here, or ``None`` if it can.

    Workers are forked, not spawned: replica factories close over
    workload configs and generator-driven process bodies that cannot be
    pickled, and ``fork`` inherits them for free.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return "fork start method unavailable on this platform"
    if multiprocessing.current_process().daemon:
        return "daemonic parent (sweep worker) cannot spawn shard processes"
    return None


def make_sharded_kernel(
    factory: ShardFactory,
    plan: ShardPlan,
    policy: str = "optimistic",
    window_factor: float = DEFAULT_WINDOW_FACTOR,
    backend: str | None = None,
) -> Any:
    """Build a sharded kernel on the requested backend.

    ``backend=None`` resolves via ``REPRO_SHARD_BACKEND`` (default
    ``inproc``).  The process backend degrades to in-process — with a
    one-line stderr notice — when the environment cannot support it;
    semantic sharding errors raise as usual.  The returned kernel
    exposes ``backend`` (``"inproc"`` or ``"process"``) for honest
    reporting by benchmarks and smoke gates.
    """
    if backend is None:
        from repro.experiments.runner import default_shard_backend

        backend = default_shard_backend()
    if backend not in SHARD_BACKENDS:
        raise ShardingError(
            f"unknown shard backend {backend!r}; use "
            f"{BACKEND_INPROC!r} or {BACKEND_PROCESS!r}"
        )
    if backend == BACKEND_PROCESS:
        reason = process_backend_unavailable()
        if reason is None:
            try:
                return ProcessShardedSimulator(
                    factory, plan, policy=policy, window_factor=window_factor
                )
            except (OSError, PermissionError) as exc:
                reason = f"worker spawn failed: {exc}"
        _notice(f"process backend unavailable ({reason}); falling back to inproc")
    return ShardedSimulator(
        factory, plan, policy=policy, window_factor=window_factor
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _picklable_locals(values: dict[str, Any]) -> dict[str, Any]:
    """The subset of a node's scratch locals that can cross the pipe."""
    safe: dict[str, Any] = {}
    for key, value in values.items():
        try:
            pickle.dumps(value)
        except Exception:
            continue
        safe[key] = value
    return safe


def _worker_main(
    conn: Any,
    factory: ShardFactory,
    owner: tuple[int, ...],
    index: int,
    policy: str,
) -> None:
    """One shard's event loop: obey round commands until finalized."""
    try:
        owned = frozenset(
            node for node, shard_index in enumerate(owner) if shard_index == index
        )
        shard = _Shard(index, owned)
        shard.front = build_replica(factory, owned, suppress=False)
        if policy == "optimistic":
            shard.base = build_replica(factory, owned, suppress=True)
        machine = shard.front.machine
        queue = machine.sim._queue
        conn.send(
            (
                "ok",
                {
                    "n_nodes": machine.n_nodes,
                    "system_name": shard.front.system.name,
                    "lookahead": min_cross_latency(machine, owner),
                    "peek": queue.peek_time() if queue else None,
                },
            )
        )
    except BaseException as exc:
        conn.send(("error", type(exc).__name__, str(exc)))
        return
    #: Every delivery ever shipped here, by key (annihilation lookups).
    records: dict[EventKey, _Delivery] = {}
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "round":
                (_, gvt, horizon, injects, annihilate_keys,
                 restore_target, advance, cadence) = cmd
                replayed = 0
                for key in annihilate_keys:
                    records[key].annihilate()
                if restore_target is not None:
                    replayed += shard.restore(
                        restore_target,
                        lambda: build_replica(factory, owned, suppress=True),
                    )
                front = shard.front
                for record in injects:
                    records[record.key] = record
                    shard.inputs.append(record)
                    if shard.base is not None:
                        shard.enqueue_base(record)
                    record.inject(front.machine)
                if advance and shard.base is not None:
                    budget = cadence * max(
                        _BASE_CATCHUP_FLOOR, 4 * shard.round_fired
                    )
                    replayed += shard.advance_base(
                        (gvt, _PRIORITY_CEILING, 0), budget
                    )
                fired = front.drain(horizon)
                shard.round_fired = fired
                outbox = list(front.router.outbox)
                front.router.outbox.clear()
                queue = front.machine.sim._queue
                peek = queue.peek_time() if queue else None
                conn.send(("round", outbox, front.lvt, peek, fired, replayed))
            elif op == "finalize":
                conn.send(("finalize", _finalize_payload(shard)))
                return
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol bug
                raise ShardingError(f"unknown worker command {op!r}")
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except Exception:  # pragma: no cover - pipe already gone
            pass


def _finalize_payload(shard: _Shard) -> dict[str, Any]:
    """Everything the coordinator needs after the run, in plain data."""
    from repro.sim.statehash import _group_state, _node_state

    machine = shard.front.machine
    owned = sorted(shard.owned)
    quiescent_error: str | None = None
    try:
        machine.sim.check_quiescent()
    except Exception as exc:
        quiescent_error = f"{type(exc).__name__}: {exc}"
    occupancy_error: str | None = None
    spans: list[tuple[str, float, float, int]] = []
    if machine.checker is not None:
        try:
            machine.checker.verify_no_occupancy()
        except Exception as exc:
            occupancy_error = f"{type(exc).__name__}: {exc}"
        spans = [
            (span.lock, span.enter, span.exit, span.node)
            for span in machine.checker.spans
        ]
    suppressed = shard.front.router.suppressed
    if shard.base is not None:
        suppressed += shard.base.router.suppressed
    return {
        "now": machine.sim.now,
        "nodes": {node: _node_state(machine, node) for node in owned},
        "groups": {
            name: _group_state(machine, name)
            for name in machine.groups
            if machine.groups[name].root in shard.owned
        },
        "locals": {
            node: _picklable_locals(machine.nodes[node].locals)
            for node in owned
        },
        "metrics": {node: machine.nodes[node].metrics for node in owned},
        "spans": spans,
        "quiescent_error": quiescent_error,
        "occupancy_error": occupancy_error,
        "suppressed": suppressed,
    }


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _StoreView:
    """Read-only stand-in for a node's LocalStore, from shipped state."""

    __slots__ = ("_slots",)

    def __init__(self, slots: dict[str, tuple[Any, int]]) -> None:
        self._slots = slots

    def read(self, name: str) -> Any:
        return self._slots[name][0]


class _NodeView:
    """Read-only stand-in for a NodeHandle, from shipped worker state."""

    __slots__ = ("id", "locals", "metrics", "store")

    def __init__(
        self,
        node_id: int,
        locals_: dict[str, Any],
        metrics: Any,
        store: _StoreView,
    ) -> None:
        self.id = node_id
        self.locals = locals_
        self.metrics = metrics
        self.store = store

    def __repr__(self) -> str:
        return f"_NodeView({self.id})"


class _WorkerHandle:
    """Coordinator-side bookkeeping for one shard worker."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "peek",
        "lvt",
        "outbox",
        "outputs",
        "pending_inject",
        "pending_annihilate",
        "pending_restore",
    )

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: Head-of-heap time from the last reply (None = drained dry).
        self.peek: float | None = None
        #: Last executed key from the last reply (local virtual time).
        self.lvt: EventKey | None = None
        #: Raw outbox entries from the last reply, pre-routing.
        self.outbox: list[tuple] = []
        #: Master records this shard emitted (annihilation fixpoint;
        #: fossil-collected below GVT like the in-process kernel).
        self.outputs: list[_Delivery] = []
        #: Routed records awaiting shipment next round.
        self.pending_inject: list[_Delivery] = []
        #: Keys of shipped records to cancel next round.
        self.pending_annihilate: list[EventKey] = []
        #: Coast-forward target to apply next round, if any.
        self.pending_restore: EventKey | None = None


class ProcessShardedSimulator:
    """Drives one forked worker per shard through the GVT round loop.

    API-compatible with :class:`~repro.sim.shards.ShardedSimulator` for
    everything the workloads, campaign trials, and benchmarks consume:
    ``run``/``verify``/``state_hash``/``merged_metrics``/``node``/
    ``nodes``/``elapsed``/``stats``/``on_gvt``/``system_name``.  Final
    node and group state crosses the pipe once, at finalize, as the
    same canonical dicts :mod:`repro.sim.statehash` builds — so the
    assembled payload (and therefore the hash) is bit-identical to the
    in-process and serial kernels'.
    """

    backend = BACKEND_PROCESS

    def __init__(
        self,
        factory: ShardFactory,
        plan: ShardPlan,
        policy: str = "optimistic",
        window_factor: float = DEFAULT_WINDOW_FACTOR,
    ) -> None:
        if policy not in ("conservative", "optimistic"):
            raise ShardingError(
                f"unknown sync policy {policy!r}; use 'conservative' or 'optimistic'"
            )
        if window_factor < 1.0:
            raise ShardingError(
                f"window_factor must be >= 1 (got {window_factor})"
            )
        self.factory = factory
        self.plan = plan
        self.policy = policy
        self.stats = ShardStats()
        #: Optional observer called with each round's GVT estimate.
        self.on_gvt: Callable[[float], None] | None = None
        self._finished = False
        self._finalized: list[dict[str, Any]] | None = None
        self._node_views: dict[int, _NodeView] = {}
        self._workers: list[_WorkerHandle] = []
        context = multiprocessing.get_context("fork")
        try:
            for index in range(plan.n_shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, factory, plan.owner, index, policy),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append(_WorkerHandle(index, process, parent_conn))
            infos = []
            for worker in self._workers:
                info = self._recv(worker)[1]
                worker.peek = info["peek"]
                infos.append(info)
        except BaseException:
            self._shutdown()
            raise
        self.n_nodes = infos[0]["n_nodes"]
        self.system_name = infos[0]["system_name"]
        self.lookahead = infos[0]["lookahead"]
        if self.lookahead <= 0.0:
            self._shutdown()
            raise ShardingError(
                "zero cross-shard lookahead (hop_latency=0 or co-located "
                "shards): sharding cannot make progress; run serial"
            )
        self.window = (
            self.lookahead
            if policy == "conservative"
            else self.lookahead * window_factor
        )
        self.pacer = WindowPacer(self.lookahead, self.window)

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------

    def _recv(self, worker: _WorkerHandle) -> tuple:
        try:
            reply = worker.conn.recv()
        except EOFError:
            raise ShardingError(
                f"shard {worker.index} worker died mid-run"
            ) from None
        if reply[0] == "error":
            raise ShardingError(
                f"shard {worker.index} worker failed: {reply[1]}: {reply[2]}"
            )
        return reply

    def _shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.close()
            except Exception:  # pragma: no cover - already closed
                pass
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join(timeout=5)

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------

    def _gvt(self) -> float | None:
        """Conservative GVT: worker peeks, unshipped arrivals, restores."""
        best: float | None = None
        for worker in self._workers:
            if worker.peek is not None and (best is None or worker.peek < best):
                best = worker.peek
            for record in worker.pending_inject:
                if record.state != _ANNIHILATED and (
                    best is None or record.key[0] < best
                ):
                    best = record.key[0]
            if worker.pending_restore is not None and (
                best is None or worker.pending_restore[0] < best
            ):
                best = worker.pending_restore[0]
        return best

    def run(self, max_rounds: int | None = None) -> float:
        """Drive all workers to completion; returns the final clock."""
        if self._finished:
            raise ShardingError("sharded run already finished")
        optimistic = self.policy == "optimistic"
        pacer = self.pacer
        try:
            while True:
                gvt = self._gvt()
                if gvt is None:
                    break
                if self.on_gvt is not None:
                    self.on_gvt(gvt)
                self.stats.rounds += 1
                if max_rounds is not None and self.stats.rounds > max_rounds:
                    raise ShardingError(
                        f"exceeded max_rounds={max_rounds}; likely a livelock"
                    )
                advance = optimistic and pacer.should_advance()
                horizon: EventKey = (gvt + self.window, -_PRIORITY_CEILING, 0)
                for worker in self._workers:
                    injects = [
                        record
                        for record in worker.pending_inject
                        if record.state != _ANNIHILATED
                    ]
                    for record in injects:
                        record.state = _DELIVERED
                    worker.conn.send(
                        (
                            "round",
                            gvt,
                            horizon,
                            injects,
                            worker.pending_annihilate,
                            worker.pending_restore,
                            advance,
                            pacer.cadence,
                        )
                    )
                    worker.pending_inject = []
                    worker.pending_annihilate = []
                    worker.pending_restore = None
                for worker in self._workers:
                    _, outbox, lvt, peek, fired, replayed = self._recv(worker)
                    worker.outbox = outbox
                    worker.lvt = lvt
                    worker.peek = peek
                    self.stats.executed += fired
                    self.stats.replayed += replayed
                stragglers = self._route_round()
                if stragglers:
                    if not optimistic:
                        raise ShardingError(
                            "straggler under the conservative policy: the "
                            "lookahead bound was violated (internal error)"
                        )
                    self._rollback(stragglers)
                if optimistic:
                    pacer.note_round(bool(stragglers))
                    self.window = pacer.window
                self._fossil_collect(gvt)
            self._finalize()
        finally:
            self._shutdown()
        self._finished = True
        return self.elapsed

    def _route_round(self) -> dict[int, EventKey]:
        """Stamp keys, queue injections, find stragglers — mirrors
        :meth:`ShardedSimulator._route_round` over shipped outboxes."""
        entries: list[tuple[float, tuple, int, Message, int, EventKey]] = []
        for worker in self._workers:
            if worker.outbox:
                for msg, arrival, copies, token, emit_key in worker.outbox:
                    entries.append(
                        (arrival, token, worker.index, msg, copies, emit_key)
                    )
                worker.outbox = []
        if not entries:
            return {}
        entries.sort(key=lambda entry: entry[:2])
        stragglers: dict[int, EventKey] = {}
        owner = self.plan.owner
        for arrival, token, src_shard, msg, copies, emit_key in entries:
            dst_index = owner[msg.dst]
            dst = self._workers[dst_index]
            send_time, send_src, send_idx = token
            for copy in range(copies):
                record = _Delivery(
                    (
                        arrival,
                        _DELIVERY_PRIORITY,
                        (send_time, send_src, send_idx + copy),
                    ),
                    emit_key,
                    src_shard,
                    dst_index,
                    msg,
                )
                self._workers[src_shard].outputs.append(record)
                dst.pending_inject.append(record)
                self.stats.routed += 1
                lvt = dst.lvt
                if lvt is not None and record.key <= lvt:
                    # Straggler: arrived in the shard's executed past.
                    self.stats.stragglers += 1
                    current = stragglers.get(dst_index)
                    if current is None or record.key < current:
                        stragglers[dst_index] = record.key
        return stragglers

    def _rollback(self, stragglers: dict[int, EventKey]) -> None:
        """Annihilation fixpoint over master records, then directives.

        "Executed" is inferred rather than observed: a record was
        executed iff it was shipped, not annihilated, and its key is at
        or below the destination's post-drain LVT (injection precedes
        the drain; replicas fire deliveries in key order).
        """
        targets = dict(stragglers)
        changed = True
        while changed:
            changed = False
            for index in list(targets):
                target = targets[index]
                for record in self._workers[index].outputs:
                    if record.state == _ANNIHILATED or record.emit_key < target:
                        continue
                    shipped = record.state == _DELIVERED
                    dst = self._workers[record.dst_shard]
                    executed = (
                        shipped
                        and dst.lvt is not None
                        and record.key <= dst.lvt
                    )
                    record.state = _ANNIHILATED
                    self.stats.annihilated += 1
                    if shipped:
                        # The worker holds this record (pending event or
                        # executed input); cancel it before any restore.
                        dst.pending_annihilate.append(record.key)
                    if executed:
                        current = targets.get(record.dst_shard)
                        if current is None or record.key < current:
                            targets[record.dst_shard] = record.key
                            changed = True
        for index, target in targets.items():
            worker = self._workers[index]
            if worker.pending_restore is None or target < worker.pending_restore:
                worker.pending_restore = target
            self.stats.rollbacks += 1

    def _fossil_collect(self, gvt: float) -> None:
        for worker in self._workers:
            outputs = worker.outputs
            if outputs and any(record.emit_key[0] <= gvt for record in outputs):
                worker.outputs = [
                    record for record in outputs if record.emit_key[0] > gvt
                ]

    def _finalize(self) -> None:
        for worker in self._workers:
            worker.conn.send(("finalize",))
        payloads = []
        for worker in self._workers:
            payloads.append(self._recv(worker)[1])
        self._finalized = payloads
        self.stats.suppressed = sum(p["suppressed"] for p in payloads)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _payloads(self) -> list[dict[str, Any]]:
        if self._finalized is None:
            raise ShardingError("sharded run has not finished")
        return self._finalized

    @property
    def owner_of(self) -> tuple[int, ...]:
        return self.plan.owner

    @property
    def elapsed(self) -> float:
        """The final clock: time of the last event executed anywhere."""
        return max(payload["now"] for payload in self._payloads())

    def node(self, node_id: int) -> _NodeView:
        """Node ``node_id``'s read-only view from its owning worker."""
        view = self._node_views.get(node_id)
        if view is None:
            payload = self._payloads()[self.plan.owner[node_id]]
            state = payload["nodes"][node_id]
            view = _NodeView(
                node_id,
                payload["locals"][node_id],
                payload["metrics"][node_id],
                _StoreView(state["store"]),
            )
            self._node_views[node_id] = view
        return view

    @property
    def nodes(self) -> list[_NodeView]:
        return [self.node(node_id) for node_id in range(self.n_nodes)]

    def merged_metrics(self) -> Any:
        from repro.metrics.collector import MachineMetrics

        merged = MachineMetrics(self.n_nodes)
        merged.nodes = [
            self.node(node_id).metrics for node_id in range(self.n_nodes)
        ]
        merged.elapsed = self.elapsed
        return merged

    def state_hash(self) -> str:
        """Canonical hash of the merged final state (parity comparator).

        Workers ship the exact per-node / per-group dicts
        :func:`repro.sim.statehash.state_payload` would read in-process,
        so assembling them reproduces the serial payload bit-for-bit.
        """
        from repro.sim.statehash import hash_payload

        payloads = self._payloads()
        nodes: dict[int, Any] = {}
        groups: dict[str, Any] = {}
        for payload in payloads:
            nodes.update(payload["nodes"])
            groups.update(payload["groups"])
        return hash_payload(
            {
                "n_nodes": self.n_nodes,
                "clock": self.elapsed,
                "nodes": nodes,
                "groups": groups,
            }
        )

    def verify(self) -> None:
        """Post-run checks: quiescence and global mutual exclusion."""
        spans: list[tuple[str, float, float, int]] = []
        for index, payload in enumerate(self._payloads()):
            if payload["quiescent_error"] is not None:
                raise ShardingError(
                    f"shard {index}: {payload['quiescent_error']}"
                )
            if payload["occupancy_error"] is not None:
                raise ShardingError(
                    f"shard {index}: {payload['occupancy_error']}"
                )
            spans.extend(tuple(span) for span in payload["spans"])
        check_merged_spans(spans)
