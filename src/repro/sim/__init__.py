"""Discrete-event simulation kernel.

The kernel is deliberately small and deterministic: a binary-heap event
queue (:mod:`repro.sim.event`), a simulator that drains it
(:mod:`repro.sim.kernel`), generator-based simulated processes
(:mod:`repro.sim.process`), waitable primitives
(:mod:`repro.sim.waiters`), seeded random streams (:mod:`repro.sim.rng`),
and an event tracer (:mod:`repro.sim.trace`).

Two runs of the same model with the same seed produce identical event
orders, which the reproduction relies on for regression tests.
"""

from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.trace import NullTracer, TraceRecord, Tracer
from repro.sim.waiters import Future, Signal

__all__ = [
    "Event",
    "EventQueue",
    "Future",
    "NullTracer",
    "Process",
    "RngStreams",
    "Signal",
    "Simulator",
    "TraceRecord",
    "Tracer",
]
