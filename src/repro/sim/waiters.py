"""Waitable primitives for simulated processes.

Processes wait by *yielding* one of these objects:

* :class:`Future` — a one-shot value; every waiter is resumed with the
  value once :meth:`Future.resolve` is called.  Waiting on an already
  resolved future resumes immediately.
* :class:`Signal` — a broadcast condition; each :meth:`Signal.fire` wakes
  the waiters registered at that moment with the fired payload.  Waiters
  that register later wait for the *next* fire.

Both deliver the payload as the value of the ``yield`` expression.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError


class Future:
    """A one-shot value that processes can wait for."""

    __slots__ = ("_callbacks", "_resolved", "_value", "name")

    def __init__(self, name: str = "future") -> None:
        self.name = name
        self._resolved = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise SimulationError(f"future {self.name!r} read before resolve")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Set the value and wake every waiter.  May only happen once."""
        if self._resolved:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._resolved = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` on resolve (immediately if resolved)."""
        if self._resolved:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Signal:
    """A broadcast event that can fire many times.

    Each :meth:`fire` wakes exactly the waiters registered before the
    fire; the payload becomes each waiter's ``yield`` value.
    """

    __slots__ = ("_waiters", "fire_count", "name")

    def __init__(self, name: str = "signal") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback`` to be invoked on the next fire only."""
        self._waiters.append(callback)

    def remove_callback(self, callback: Callable[[Any], None]) -> bool:
        """Deregister a callback; returns True if it was registered."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            return False
        return True

    def fire(self, payload: Any = None) -> int:
        """Wake all currently registered waiters; return how many."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(payload)
        return len(waiters)
