"""Deterministic named random streams.

Every consumer of randomness in a simulation asks for a stream by name
(``sim.rng.stream("workload")``).  Stream seeds are derived from the
master seed and the name, so adding a new consumer never perturbs the
random sequence seen by existing consumers — a property the regression
benchmarks rely on.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of this one's."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork/{name}".encode("utf-8")
        ).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
