"""Network topologies.

The paper's evaluation assumes a **square mesh torus** of point-to-point
links.  :class:`MeshTorus` places ``n`` processors row-major on the
smallest near-square grid that holds them; grid positions beyond ``n``
act as pure switches, so every network size (including the paper's
2^k + 1 sizes such as 129) keeps a near-square diameter.

All topologies expose the same small interface: the number of nodes,
each node's physical neighbours, and the hop count of the shortest path
between two nodes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from functools import lru_cache

from repro.errors import TopologyError


class Topology(ABC):
    """Abstract interconnect graph over nodes ``0 .. n_nodes-1``."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise TopologyError(f"topology needs at least one node: {n_nodes}")
        self.n_nodes = n_nodes
        self._diameter: int | None = None

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(
                f"node {node} out of range for {self.n_nodes}-node topology"
            )

    @abstractmethod
    def neighbors(self, node: int) -> tuple[int, ...]:
        """Processor nodes one hop away from ``node``."""

    @abstractmethod
    def hops(self, a: int, b: int) -> int:
        """Length in physical hops of the shortest path from ``a`` to ``b``."""

    def diameter(self) -> int:
        """The largest shortest-path distance between any node pair.

        The O(n²) all-pairs scan runs once; later calls return the
        cached value (topologies are immutable after construction).
        """
        if self._diameter is None:
            self._diameter = self._diameter_uncached()
        return self._diameter

    def _diameter_uncached(self) -> int:
        """The brute-force all-pairs diameter (regression reference)."""
        return max(
            self.hops(a, b)
            for a in range(self.n_nodes)
            for b in range(self.n_nodes)
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_nodes={self.n_nodes})"


class MeshTorus(Topology):
    """A near-square 2-D mesh with wrap-around (torus) links.

    Processors occupy the first ``n_nodes`` positions of a
    ``rows x cols`` grid in row-major order, with
    ``rows = round(sqrt(n))`` and ``cols = ceil(n / rows)``.  Positions
    past ``n_nodes`` contain no processor but their switches still route,
    so distances are computed on the full grid.
    """

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes)
        rows = max(1, round(math.sqrt(n_nodes)))
        cols = math.ceil(n_nodes / rows)
        self.rows = rows
        self.cols = cols
        #: Precomputed (row, col) per node; grids are small enough that
        #: materializing the table beats recomputing divmod per lookup.
        self._coords: tuple[tuple[int, int], ...] = tuple(
            divmod(node, cols) for node in range(n_nodes)
        )
        #: Memoized hop counts keyed ``(a, b)``.  Only validated pairs
        #: are ever inserted, so a cache hit implies in-range arguments.
        self._hops_cache: dict[tuple[int, int], int] = {}

    def coords(self, node: int) -> tuple[int, int]:
        """Grid (row, col) of a processor node."""
        self._check(node)
        return self._coords[node]

    def _axis_hops(self, a: int, b: int, size: int) -> int:
        direct = abs(a - b)
        return min(direct, size - direct)

    def hops(self, a: int, b: int) -> int:
        key = (a, b)
        cached = self._hops_cache.get(key)
        if cached is not None:
            return cached
        ra, ca = self.coords(a)
        rb, cb = self.coords(b)
        result = self._axis_hops(ra, rb, self.rows) + self._axis_hops(ca, cb, self.cols)
        self._hops_cache[key] = result
        return result

    def neighbors(self, node: int) -> tuple[int, ...]:
        row, col = self.coords(node)
        result = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr = (row + dr) % self.rows
            nc = (col + dc) % self.cols
            other = nr * self.cols + nc
            if other != node and other < self.n_nodes:
                result.append(other)
        # Deduplicate (wrap-around can repeat a neighbour on tiny grids).
        return tuple(dict.fromkeys(result))


class Ring(Topology):
    """A bidirectional ring."""

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check(node)
        if self.n_nodes == 1:
            return ()
        left = (node - 1) % self.n_nodes
        right = (node + 1) % self.n_nodes
        return tuple(dict.fromkeys((left, right)))

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        direct = abs(a - b)
        return min(direct, self.n_nodes - direct)


class Star(Topology):
    """Node 0 is a hub connected to every other node."""

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check(node)
        if node == 0:
            return tuple(range(1, self.n_nodes))
        return (0,)

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if a == 0 or b == 0:
            return 1
        return 2


class FullyConnected(Topology):
    """Every node pair is directly linked (idealized network)."""

    def neighbors(self, node: int) -> tuple[int, ...]:
        self._check(node)
        return tuple(i for i in range(self.n_nodes) if i != node)

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 1


_TOPOLOGIES = {
    "mesh_torus": MeshTorus,
    "ring": Ring,
    "star": Star,
    "fully_connected": FullyConnected,
}


@lru_cache(maxsize=256)
def make_topology(kind: str, n_nodes: int) -> Topology:
    """Build a topology by name (``mesh_torus`` is the paper's network)."""
    try:
        cls = _TOPOLOGIES[kind]
    except KeyError:
        known = ", ".join(sorted(_TOPOLOGIES))
        raise TopologyError(f"unknown topology {kind!r}; known: {known}") from None
    return cls(n_nodes)
