"""Simulated interconnect substrate.

Provides the square-mesh-torus topology the paper evaluates on (plus ring,
star, and fully-connected alternatives for testing), BFS spanning trees
for group multicast, and a :class:`~repro.net.network.Network` that
delivers messages with the paper's delay model (200 ns per hop plus
1 Gb/s link serialization) while preserving FIFO order per channel.
"""

from repro.net.message import Message
from repro.net.multicast import MulticastTree
from repro.net.network import ChannelStats, Network
from repro.net.spanning_tree import SpanningTree, build_bfs_tree
from repro.net.topology import (
    FullyConnected,
    MeshTorus,
    Ring,
    Star,
    Topology,
    make_topology,
)

__all__ = [
    "ChannelStats",
    "FullyConnected",
    "MeshTorus",
    "Message",
    "MulticastTree",
    "Network",
    "Ring",
    "SpanningTree",
    "Star",
    "Topology",
    "build_bfs_tree",
    "make_topology",
]
