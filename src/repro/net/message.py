"""Messages carried by the simulated network.

Higher layers (the DSM memory substrate, lock protocols) subclass or
instantiate :class:`Message` with a ``kind`` tag; the network only needs
source, destination, and size to compute delays and statistics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.params import DEFAULT_PACKET_BYTES

_message_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """One network message.

    Attributes:
        src: Sending node id.
        dst: Receiving node id.
        kind: Protocol tag, e.g. ``"update"``, ``"lock_request"``.
        payload: Arbitrary protocol data (not interpreted by the network).
        size_bytes: Wire size used for serialization delay.
        msg_id: Unique id assigned at construction (for tracing).
        sent_at: Stamped by the network when the message enters a channel.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    size_bytes: int = DEFAULT_PACKET_BYTES
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float = float("nan")

    def __str__(self) -> str:
        return (
            f"Message#{self.msg_id}({self.kind} {self.src}->{self.dst}, "
            f"{self.size_bytes}B)"
        )
