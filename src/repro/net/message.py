"""Messages carried by the simulated network.

Higher layers (the DSM memory substrate, lock protocols) subclass or
instantiate :class:`Message` with a ``kind`` tag; the network only needs
source, destination, and size to compute delays and statistics.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.params import DEFAULT_PACKET_BYTES

_message_ids = itertools.count(1)
_next_message_id = _message_ids.__next__
_NAN = float("nan")


class Message:
    """One network message.

    A hand-written ``__slots__`` class rather than a dataclass: one
    instance is allocated per send on the hottest protocol path, and the
    plain ``__init__`` costs roughly half of the generated one.

    Attributes:
        src: Sending node id.
        dst: Receiving node id.
        kind: Protocol tag, e.g. ``"update"``, ``"lock_request"``.
        payload: Arbitrary protocol data (not interpreted by the network).
        size_bytes: Wire size used for serialization delay.
        msg_id: Unique id assigned at construction (for tracing).
        sent_at: Stamped by the network when the message enters a channel.
    """

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes", "msg_id", "sent_at")

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Any = None,
        size_bytes: int = DEFAULT_PACKET_BYTES,
        msg_id: int | None = None,
        sent_at: float = _NAN,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes
        self.msg_id = _next_message_id() if msg_id is None else msg_id
        self.sent_at = sent_at

    def __getstate__(self) -> tuple:
        """Explicit slot tuple: slot-stable pickling for the process
        shard backend (and ~2x cheaper than the generic slots protocol
        on the per-round IPC path)."""
        return (
            self.src,
            self.dst,
            self.kind,
            self.payload,
            self.size_bytes,
            self.msg_id,
            self.sent_at,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.src,
            self.dst,
            self.kind,
            self.payload,
            self.size_bytes,
            self.msg_id,
            self.sent_at,
        ) = state

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src}, dst={self.dst}, kind={self.kind!r}, "
            f"payload={self.payload!r}, size_bytes={self.size_bytes}, "
            f"msg_id={self.msg_id}, sent_at={self.sent_at})"
        )

    def __str__(self) -> str:
        return (
            f"Message#{self.msg_id}({self.kind} {self.src}->{self.dst}, "
            f"{self.size_bytes}B)"
        )


def fire_train(train: tuple) -> None:
    """Deliver one packet train from a single heap event.

    ``train`` is ``(handler, messages)``: the resolved per-kind delivery
    callable for the destination and the tuple of :class:`Message`
    objects that share one arrival time on one FIFO channel.  The
    receiver sees exactly the per-message deliveries it would have seen
    unbatched, in the same (sequence) order — only the number of heap
    events differs.  Scheduled by :meth:`Network.send_fanout_train` as a
    ``(arrival, priority, seq, fire_train, train)`` heap entry.
    """
    handler = train[0]
    for msg in train[1]:
        handler(msg)
