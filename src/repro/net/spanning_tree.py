"""Spanning trees for group multicast.

The Sesame hardware implements "a reliable tree-based multicast protocol"
per sharing group: one root sequences, routes, and retransmits all
sharing messages.  :func:`build_bfs_tree` constructs the logical
distribution tree for a group: a shortest-path tree over the group
members rooted at the group root, where edge weights are physical hop
counts from the topology.

Because a direct root-to-member edge is always available at exactly the
metric distance, the tree preserves the key timing property the
simulation depends on: the tree-path distance from the root to every
member equals the topology's shortest-path distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.net.topology import Topology


@dataclass(slots=True)
class SpanningTree:
    """A rooted distribution tree over a set of member nodes.

    Attributes:
        root: The group root (sequencer / lock manager).
        parent: Map member -> parent member (root maps to itself).
        children: Map member -> tuple of child members.
        depth_hops: Map member -> physical hops from the root along the
            tree path.
    """

    root: int
    parent: dict[int, int]
    children: dict[int, tuple[int, ...]] = field(default_factory=dict)
    depth_hops: dict[int, int] = field(default_factory=dict)

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self.parent))

    def path_to_root(self, member: int) -> list[int]:
        """Members on the tree path from ``member`` up to the root."""
        if member not in self.parent:
            raise TopologyError(f"node {member} is not in the tree")
        path = [member]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
            if len(path) > len(self.parent) + 1:
                raise TopologyError("cycle detected in spanning tree")
        return path

    def validate(self, topology: Topology) -> None:
        """Check tree invariants; raises :class:`TopologyError` if broken."""
        if self.parent.get(self.root) != self.root:
            raise TopologyError("root must be its own parent")
        for member in self.parent:
            self.path_to_root(member)  # raises on cycles / disconnection
        for member, depth in self.depth_hops.items():
            metric = topology.hops(self.root, member)
            if depth < metric:
                raise TopologyError(
                    f"tree distance {depth} to node {member} beats the "
                    f"metric shortest path {metric}"
                )


def build_bfs_tree(
    topology: Topology,
    root: int,
    members: tuple[int, ...] | list[int],
) -> SpanningTree:
    """Build the group distribution tree rooted at ``root``.

    Runs Dijkstra over the complete graph on ``members`` with hop-count
    edge weights, breaking ties in favour of fewer tree edges and then
    lower node ids so tree construction is deterministic.
    """
    member_set = set(members)
    member_set.add(root)
    ordered = sorted(member_set)
    if root not in member_set:
        raise TopologyError(f"root {root} must be a member")
    for node in ordered:
        if not 0 <= node < topology.n_nodes:
            raise TopologyError(f"member {node} not in {topology!r}")

    # Dijkstra state: (distance, tree-edge count, node id) keeps ordering
    # total and deterministic.
    dist: dict[int, int] = {root: 0}
    edges: dict[int, int] = {root: 0}
    parent: dict[int, int] = {root: root}
    done: set[int] = set()
    frontier: list[tuple[int, int, int]] = [(0, 0, root)]

    while frontier:
        d, e, node = heapq.heappop(frontier)
        if node in done:
            continue
        done.add(node)
        for other in ordered:
            if other in done:
                continue
            cand = d + topology.hops(node, other)
            cand_edges = e + 1
            best = dist.get(other)
            if (
                best is None
                or cand < best
                or (cand == best and cand_edges < edges[other])
            ):
                dist[other] = cand
                edges[other] = cand_edges
                parent[other] = node
                heapq.heappush(frontier, (cand, cand_edges, other))

    missing = member_set - done
    if missing:
        raise TopologyError(f"members unreachable from root: {sorted(missing)}")

    children: dict[int, list[int]] = {node: [] for node in ordered}
    for node in ordered:
        if node != root:
            children[parent[node]].append(node)

    return SpanningTree(
        root=root,
        parent=parent,
        children={node: tuple(kids) for node, kids in children.items()},
        depth_hops=dist,
    )


def build_relay_tree(
    topology: Topology,
    root: int,
    members: "tuple[int, ...] | list[int]",
    fanout: int,
) -> SpanningTree:
    """Build a bounded-degree relay tree for hierarchical multicast.

    Unlike :func:`build_bfs_tree` (where the root fans out directly to
    every member), no node forwards to more than ``fanout`` children:
    non-root members are ordered by (metric hops from the root, node id)
    and fill a ``fanout``-ary tree level by level, so the members
    nearest the root become the relay sub-roots.  Tree-path distances
    may exceed the metric shortest path — that is the deliberate
    trade: bounded per-node send work in exchange for extra hops.
    """
    if fanout < 1:
        raise TopologyError(f"relay fanout must be >= 1, got {fanout}")
    member_set = set(members)
    member_set.add(root)
    ordered = sorted(member_set)
    for node in ordered:
        if not 0 <= node < topology.n_nodes:
            raise TopologyError(f"member {node} not in {topology!r}")

    nonroot = sorted(
        (node for node in ordered if node != root),
        key=lambda node: (topology.hops(root, node), node),
    )
    parent: dict[int, int] = {root: root}
    children: dict[int, list[int]] = {node: [] for node in ordered}
    depth: dict[int, int] = {root: 0}
    # Assignment order doubles as relay order: the first members
    # attached (nearest the root) are the first to receive children.
    slots: list[int] = [root]
    cursor = 0
    for node in nonroot:
        while len(children[slots[cursor]]) >= fanout:
            cursor += 1
        relay = slots[cursor]
        parent[node] = relay
        children[relay].append(node)
        depth[node] = depth[relay] + topology.hops(relay, node)
        slots.append(node)

    return SpanningTree(
        root=root,
        parent=parent,
        children={node: tuple(kids) for node, kids in children.items()},
        depth_hops=depth,
    )
