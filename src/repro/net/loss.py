"""Message-loss injection.

The Sesame interfaces implement "a *reliable* tree-based multicast
protocol ... to route, to sequence, and to retransmit all hidden sharing
messages" — reliability is part of the hardware's contract.  To test the
retransmission machinery (and to let experiments study lossy fabrics), a
:class:`LossModel` can be attached to the network: it drops a seeded
random fraction of the *sequenced apply* traffic, which the receivers'
gap detection then recovers via NACKs to the group root.

Only multicast apply packets are dropped by default: the paper's
recovery story is about the distribution tree.  Control traffic (origin
-> root updates, NACKs, retransmissions) rides reliable channels.
"""

from __future__ import annotations

import random

from repro.errors import NetworkError
from repro.net.message import Message

#: Message kinds subject to loss by default.
DEFAULT_LOSSY_KINDS = frozenset({"gwc.apply"})

#: Root-failover control traffic (election queries and evidence
#: replies).  Reliable by default like all control traffic; experiments
#: opt in via ``lossy_failover=True`` to exercise the query resend path.
#: Resent queries/replies carry ``retransmit=True`` and stay exempt, so
#: recovery is still bounded.
FAILOVER_CONTROL_KINDS = frozenset({"failover.query", "failover.reply"})


class LossModel:
    """Seeded random dropper for selected message kinds."""

    def __init__(
        self,
        rate: float,
        rng: random.Random,
        lossy_kinds: frozenset[str] = DEFAULT_LOSSY_KINDS,
        lossy_failover: bool = False,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1): {rate}")
        self.rate = rate
        self.rng = rng
        if lossy_failover:
            lossy_kinds = frozenset(lossy_kinds) | FAILOVER_CONTROL_KINDS
        self.lossy_kinds = lossy_kinds
        #: Count of messages dropped (diagnostics / tests).
        self.dropped = 0

    def should_drop(self, msg: Message) -> bool:
        if self.rate <= 0.0 or msg.kind not in self.lossy_kinds:
            return False
        # A node's loopback to itself never crosses a link — and the
        # root cannot NACK itself, so dropping it would be unrecoverable.
        if msg.src == msg.dst:
            return False
        # Never drop a retransmission: the paper's tree protocol treats
        # recovery traffic as reliable, and tests need bounded recovery.
        if getattr(msg.payload, "retransmit", False):
            return False
        if self.rng.random() < self.rate:
            self.dropped += 1
            return True
        return False
