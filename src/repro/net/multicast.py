"""Reliable, sequenced group multicast from the group root.

The group root is the sequencing arbiter for all shared writes in its
group.  :class:`MulticastTree` sends each sequenced packet from the root
toward every member along the group's spanning tree.  Delivery to a
member takes the tree-path wire time; FIFO channels plus monotonically
increasing sequence numbers give every member the same total order —
which is precisely the group write consistency guarantee.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.net.network import Network
from repro.net.spanning_tree import (
    SpanningTree,
    build_bfs_tree,
    build_relay_tree,
)


class MulticastTree:
    """Root-sequenced multicast over a sharing group's spanning tree.

    With ``fanout=None`` (the default) the root fans out directly to
    every member — the original Sesame model.  With a ``fanout`` the
    tree is a bounded-degree relay tree: the root sends only to its
    tree children, and each member forwards sequenced applies on to its
    own children (hierarchical multicast; see
    ``NodeInterface._relay_apply``).
    """

    def __init__(
        self,
        network: Network,
        root: int,
        members: tuple[int, ...],
        start_seq: int = 0,
        fanout: int | None = None,
    ) -> None:
        self.network = network
        self.root = root
        self.fanout = fanout
        if fanout is None:
            self.tree: SpanningTree = build_bfs_tree(
                network.topology, root, members
            )
            #: Per-multicast direct targets: every member (or every
            #: member minus the root).
            self._fanout_targets = self.tree.members
            self._nonroot_targets = tuple(
                member for member in self.tree.members if member != root
            )
        else:
            self.tree = build_relay_tree(network.topology, root, members, fanout)
            # Relay mode: the root only touches its own tree children;
            # members forward to theirs on delivery.
            kids = self.tree.children.get(root, ())
            self._fanout_targets = (root, *kids)
            self._nonroot_targets = kids
        #: Members minus the root, for NACK retransmits and heartbeats
        #: which always go direct (tail-loss recovery must not depend on
        #: a possibly-crashed relay).
        self._nonroot_members = tuple(
            member for member in self.tree.members if member != root
        )
        #: Next group-global sequence number.  A failover successor's
        #: tree starts where the reconstruction quorum left off rather
        #: than at zero (see :mod:`repro.faults.failover`).
        self._next_seq = start_seq

    def children_of(self, node: int) -> tuple[int, ...]:
        """Relay children of ``node`` ( () in direct-fanout mode)."""
        if self.fanout is None:
            return ()
        return self.tree.children.get(node, ())

    @property
    def members(self) -> tuple[int, ...]:
        return self.tree.members

    def next_sequence(self) -> int:
        """Allocate the next group-global sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def multicast(
        self,
        kind: str,
        payload: object,
        size_bytes: int,
        include_root: bool = True,
    ) -> None:
        """Send one packet from the root to every member.

        The same payload object is shared across per-member messages;
        receivers must treat it as read-only.

        Args:
            kind: Message kind tag.
            payload: Protocol payload delivered to each member.
            size_bytes: Wire size of each per-member message.
            include_root: Whether the root delivers the packet to itself
                as well (it does for data echoes; it already acted on lock
                state locally).
        """
        targets = self._fanout_targets if include_root else self._nonroot_targets
        self.network.send_fanout(self.root, targets, kind, payload, size_bytes)

    def multicast_train(
        self,
        kind: str,
        payloads: "list[object] | tuple[object, ...]",
        sizes: "list[int] | tuple[int, ...]",
        include_root: bool = True,
    ) -> None:
        """Send several back-to-back packets to every member as a train.

        Logically identical to calling :meth:`multicast` once per
        ``(payload, size)`` entry, in order — same per-packet arrival
        times, stats, and delivery order — but consecutive packets whose
        FIFO-clamped arrivals coincide share one heap event per member
        (see :meth:`Network.send_fanout_train`).  This is how the root
        ships a sequenced burst of writes without multiplying simulator
        events by the burst length.
        """
        targets = self._fanout_targets if include_root else self._nonroot_targets
        self.network.send_fanout_train(self.root, targets, kind, payloads, sizes)
