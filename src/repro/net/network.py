"""Point-to-point message delivery with the paper's delay model.

A :class:`Network` owns the topology and the cost parameters.  Sending a
message from ``a`` to ``b`` costs::

    hops(a, b) * hop_latency  +  size_bytes / link_bandwidth

Channels are FIFO: the network never delivers message *m2* sent after
*m1* on the same ``(src, dst)`` channel before *m1* arrives, even if *m2*
is smaller.  Group write consistency's sequencing guarantee is built on
this property, exactly as Sesame builds it on ordered hardware links.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.params import MachineParams
from repro.sim.kernel import Simulator

#: Handler signature for delivered messages.
Handler = Callable[[Message], None]


@dataclass(slots=True)
class ChannelStats:
    """Aggregate traffic counters kept by the network."""

    messages: int = 0
    bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: Messages received per node — the load metric that exposes
    #: hot-spots such as an overloaded global root.
    inbound: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    outbound: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def note(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.size_bytes
        self.by_kind[msg.kind] += 1
        self.outbound[msg.src] += 1
        self.inbound[msg.dst] += 1

    def hottest_receiver(self) -> tuple[int, int]:
        """(node, message count) of the most-loaded receiver."""
        if not self.inbound:
            return (-1, 0)
        node = max(self.inbound, key=lambda n: self.inbound[n])
        return (node, self.inbound[node])


class Network:
    """Delivers :class:`Message` objects between attached node handlers."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        params: MachineParams,
        loss_model: "LossModel | None" = None,  # noqa: F821
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.params = params
        self.loss_model = loss_model
        self.stats = ChannelStats()
        self._handlers: dict[int, Handler] = {}
        #: Last scheduled arrival per (src, dst) channel, for FIFO clamping.
        self._last_arrival: dict[tuple[int, int], float] = {}

    def attach(self, node: int, handler: Handler) -> None:
        """Register the delivery handler for ``node`` (one per node)."""
        if node in self._handlers:
            raise NetworkError(f"node {node} already has a handler attached")
        if not 0 <= node < self.topology.n_nodes:
            raise NetworkError(f"node {node} not in topology {self.topology!r}")
        self._handlers[node] = handler

    def delay(self, src: int, dst: int, size_bytes: int) -> float:
        """Raw transfer delay for a message, before FIFO clamping."""
        hops = self.topology.hops(src, dst)
        return self.params.wire_time(size_bytes, hops)

    def send(self, msg: Message) -> float:
        """Inject ``msg``; returns its scheduled arrival time.

        Local sends (``src == dst``) are delivered with zero wire delay but
        still go through the event queue so handler re-entrancy is
        impossible.
        """
        if msg.dst not in self._handlers:
            raise NetworkError(f"no handler attached for destination {msg.dst}")
        msg.sent_at = self.sim.now
        self.stats.note(msg)

        arrival = self.sim.now + self.delay(msg.src, msg.dst, msg.size_bytes)
        if self.loss_model is not None and self.loss_model.should_drop(msg):
            if self.sim.tracer.enabled:
                self.sim.tracer.record(
                    self.sim.now, "net.dropped", msg=str(msg), arrival=arrival
                )
            return arrival
        channel = (msg.src, msg.dst)
        previous = self._last_arrival.get(channel)
        if previous is not None and arrival < previous:
            arrival = previous
        self._last_arrival[channel] = arrival

        handler = self._handlers[msg.dst]
        self.sim.at(arrival, lambda: handler(msg))
        if self.sim.tracer.enabled:
            self.sim.tracer.record(
                self.sim.now,
                "net.send",
                msg=str(msg),
                arrival=arrival,
            )
        return arrival
