"""Point-to-point message delivery with the paper's delay model.

A :class:`Network` owns the topology and the cost parameters.  Sending a
message from ``a`` to ``b`` costs::

    hops(a, b) * hop_latency  +  size_bytes / link_bandwidth

Channels are FIFO: the network never delivers message *m2* sent after
*m1* on the same ``(src, dst)`` channel before *m1* arrives, even if *m2*
is smaller.  Group write consistency's sequencing guarantee is built on
this property, exactly as Sesame builds it on ordered hardware links.

The send path is performance-critical (every protocol message crosses
it), so the per-pair hop latency is memoized, delivery is scheduled by
pushing a ``(arrival, priority, seq, handler, msg)`` entry directly
onto the simulator's event heap (no closure or handle allocation per
send), and the tracer check is a cached boolean rather than a property
call.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable

from repro.errors import NetworkError
from repro.net.message import Message, fire_train
from repro.net.topology import Topology
from repro.params import MachineParams
from repro.sim.event import PRIORITY_ARRIVAL_BAND
from repro.sim.kernel import Simulator

#: Handler signature for delivered messages.
Handler = Callable[[Message], None]


@dataclass(slots=True)
class ChannelStats:
    """Aggregate traffic counters kept by the network."""

    messages: int = 0
    bytes: int = 0
    #: Messages removed before delivery — by the loss model or by a
    #: fault injector.  Dropped messages still count as sent traffic
    #: (``messages`` / ``bytes`` / ``outbound``) but never as received
    #: load.  The per-cause split lives in ``loss_dropped`` /
    #: ``fault_dropped``.
    dropped: int = 0
    #: Drops charged to the random :class:`~repro.net.loss.LossModel`.
    loss_dropped: int = 0
    #: Drops charged to a fault injector (crashed endpoint / partition).
    fault_dropped: int = 0
    #: Messages whose delivery a fault injector postponed.
    fault_delayed: int = 0
    #: Extra delivery copies created by duplicate faults.
    fault_duplicated: int = 0
    #: Root-failover counters: apply/heartbeat packets fenced out by
    #: members because they carried a superseded sequencer epoch,
    #: origin writes and lock requests re-issued toward a new root
    #: after its election, and completed root failovers.
    stale_epoch_discards: int = 0
    rerouted_requests: int = 0
    failovers: int = 0
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: Messages received per node — the load metric that exposes
    #: hot-spots such as an overloaded global root.
    inbound: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    outbound: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: Messages dropped per destination node (loss + fault causes).
    dropped_inbound: dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def note(self, msg: Message, delivered: bool = True) -> None:
        self.messages += 1
        self.bytes += msg.size_bytes
        self.by_kind[msg.kind] += 1
        self.outbound[msg.src] += 1
        if delivered:
            self.inbound[msg.dst] += 1
        else:
            self.dropped += 1
            self.dropped_inbound[msg.dst] += 1

    def hottest_receiver(self) -> tuple[int, int]:
        """(node, message count) of the most-loaded receiver."""
        if not self.inbound:
            return (-1, 0)
        node = max(self.inbound, key=lambda n: self.inbound[n])
        return (node, self.inbound[node])


class Network:
    """Delivers :class:`Message` objects between attached node handlers."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        params: MachineParams,
        loss_model: "LossModel | None" = None,  # noqa: F821
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.params = params
        self.loss_model = loss_model
        self.stats = ChannelStats()
        self._handlers: dict[int, Handler] = {}
        #: Optional per-node kind resolvers (see :meth:`attach`) and the
        #: lazily filled ``(dst, kind) -> delivery callable`` cache they
        #: feed.  Resolution collapses the per-message dispatch chain to
        #: one dict lookup in :meth:`send`.
        self._resolvers: dict[int, Callable[[str], Handler]] = {}
        self._direct: dict[tuple[int, str], Handler] = {}
        #: Last scheduled arrival per (src, dst) channel, for FIFO clamping.
        self._last_arrival: dict[tuple[int, int], float] = {}
        #: Memoized ``hops * hop_latency`` per (src, dst) pair, so the
        #: delay model is a dict lookup plus one serialization division.
        self._base_latency: dict[tuple[int, int], float] = {}
        self._link_bandwidth = params.link_bandwidth
        self._hop_latency = params.hop_latency
        #: Deliveries are fire-and-forget (nothing cancels an in-flight
        #: message) and the arrival time is provably >= now, so sends
        #: push ``(arrival, prio, seq, handler, msg)`` entries straight
        #: onto the event heap: no Event handle, no past-check, and no
        #: per-send ``partial`` allocation.
        self._queue = sim._queue
        #: Optional fault injector (see :mod:`repro.faults.injector`).
        #: ``None`` on the hot path keeps fault support free for normal
        #: runs: one identity check per send.
        self._injector: "FaultInjector | None" = None  # noqa: F821
        #: Optional shard router (see :mod:`repro.sim.shards`).  When
        #: installed, sends addressed to a node this replica does not
        #: own divert to the router's outbox instead of the local heap,
        #: and intra-shard arrivals are keyed in the arrival band (see
        #: :data:`~repro.sim.event.PRIORITY_ARRIVAL_BAND`) so same-time
        #: arrivals order identically to a serial run.  ``None`` costs
        #: one identity check per send, exactly like the injector hook.
        self._router: "ShardRouter | None" = None  # noqa: F821
        #: Per-source-node send counters, used only under a shard
        #: router: the third element of each arrival-band ordering
        #: token.  Deterministic replay of a replica reproduces the
        #: exact same counter values.
        self._node_send_seq: dict[int, int] = {}

    def install_injector(self, injector: "FaultInjector") -> None:  # noqa: F821
        """Hook a fault injector into the send and delivery paths.

        At most one injector per network.  Installing clears the
        ``(dst, kind)`` delivery cache so future resolutions wrap the
        handler in the injector's delivery guard, which drops in-flight
        messages addressed to a node that crashed after they were sent.
        """
        if self._injector is not None:
            raise NetworkError("a fault injector is already installed")
        self._injector = injector
        self._direct.clear()

    def install_shard_router(self, router: "ShardRouter") -> None:  # noqa: F821
        """Hook a shard router into the send path (one per network).

        Cross-shard sends — ``msg.dst`` outside the router's owned node
        set — are classified after the full delay model has run (base
        latency, serialization, loss, faults, FIFO clamping), so a
        diverted message carries exactly the arrival time the serial
        kernel would have scheduled it at.  The receiving replica counts
        the inbound load; the sender only counts outbound, keeping the
        merged per-node stats identical to a serial run.
        """
        if self._router is not None:
            raise NetworkError("a shard router is already installed")
        self._router = router

    def attach(
        self,
        node: int,
        handler: Handler,
        resolver: Callable[[str], Handler] | None = None,
    ) -> None:
        """Register the delivery handler for ``node`` (one per node).

        Args:
            node: Destination node id.
            handler: Generic per-message delivery callable.
            resolver: Optional ``resolver(kind) -> callable`` giving the
                final per-kind delivery target, letting the network skip
                the handler's internal dispatch on every message.  Only
                valid when dispatch is stateless per message (e.g. no
                serialized interface-service queueing).
        """
        if node in self._handlers:
            raise NetworkError(f"node {node} already has a handler attached")
        if not 0 <= node < self.topology.n_nodes:
            raise NetworkError(f"node {node} not in topology {self.topology!r}")
        self._handlers[node] = handler
        if resolver is not None:
            self._resolvers[node] = resolver

    def _resolve_direct(self, dst: int, kind: str) -> Handler:
        """Fill the ``(dst, kind)`` delivery cache (slow path, once)."""
        resolver = self._resolvers.get(dst)
        if resolver is not None:
            fn = resolver(kind)
        else:
            fn = self._handlers.get(dst)
            if fn is None:
                raise NetworkError(f"no handler attached for destination {dst}")
        injector = self._injector
        if injector is not None:
            fn = injector.guard_delivery(dst, fn)
        self._direct[(dst, kind)] = fn
        return fn

    def delay(self, src: int, dst: int, size_bytes: int) -> float:
        """Raw transfer delay for a message, before FIFO clamping."""
        key = (src, dst)
        base = self._base_latency.get(key)
        if base is None:
            base = self.topology.hops(src, dst) * self._hop_latency
            self._base_latency[key] = base
        return base + size_bytes / self._link_bandwidth

    def send(self, msg: Message) -> float:
        """Inject ``msg``; returns its scheduled arrival time.

        Local sends (``src == dst``) are delivered with zero wire delay but
        still go through the event queue so handler re-entrancy is
        impossible.
        """
        dst = msg.dst
        kind = msg.kind
        handler = self._direct.get((dst, kind))
        if handler is None:
            handler = self._resolve_direct(dst, kind)
        sim = self.sim
        now = sim._now
        msg.sent_at = now

        src = msg.src
        size_bytes = msg.size_bytes
        stats = self.stats
        stats.messages += 1
        stats.bytes += size_bytes
        stats.by_kind[kind] += 1
        stats.outbound[src] += 1

        # Inlined self.delay(): one dict probe plus the serialization
        # division, with the per-pair hop latency memoized on first use.
        key = (src, dst)
        base = self._base_latency.get(key)
        if base is None:
            base = self.topology.hops(src, dst) * self._hop_latency
            self._base_latency[key] = base
        arrival = now + (base + size_bytes / self._link_bandwidth)
        if self.loss_model is not None and self.loss_model.should_drop(msg):
            stats.dropped += 1
            stats.loss_dropped += 1
            stats.dropped_inbound[dst] += 1
            if sim.trace_enabled:
                sim.tracer.record(now, "net.dropped", msg=str(msg), arrival=arrival)
            return arrival
        copies = 1
        clamp_fifo = True
        injector = self._injector
        if injector is not None:
            verdict = injector.on_send(msg)
            if verdict is not None:
                extra_delay, copies, clamp_fifo = verdict
                if copies == 0:
                    # Crashed endpoint or partition-crossing message.
                    stats.dropped += 1
                    stats.fault_dropped += 1
                    stats.dropped_inbound[dst] += 1
                    if sim.trace_enabled:
                        sim.tracer.record(
                            now, "fault.dropped", msg=str(msg), arrival=arrival
                        )
                    return arrival
                if extra_delay > 0.0:
                    arrival += extra_delay
                    stats.fault_delayed += 1
                if copies > 1:
                    stats.fault_duplicated += copies - 1
        if clamp_fifo:
            last_arrival = self._last_arrival
            previous = last_arrival.get(key)
            if previous is not None and arrival < previous:
                arrival = previous
            last_arrival[key] = arrival
        router = self._router
        if router is not None:
            # Sharded replica: every arrival — intra- or cross-shard —
            # is keyed in the arrival band by a (send time, src, per-src
            # send index) token.  The token reproduces the serial
            # kernel's ordering, where a delivery's sequence number is
            # allocated at send time, while staying independent of any
            # replica-local counter — so a front replica and its
            # replaying base stamp identical keys, and arrivals from
            # different shards order consistently at equal times.
            seq_map = self._node_send_seq
            idx = seq_map.get(src, 0)
            seq_map[src] = idx + copies
            if dst not in router.owned:
                # Cross-shard: the owning replica delivers (and counts
                # the inbound load); this replica only recorded the send.
                router.emit(msg, arrival, copies, (now, src, idx))
                if sim.trace_enabled:
                    sim.tracer.record(
                        now, "net.shard_route", msg=str(msg), arrival=arrival
                    )
                return arrival
            stats.inbound[dst] += copies
            queue = self._queue
            heap = queue._heap
            for offset in range(copies):
                heappush(
                    heap,
                    (
                        arrival,
                        PRIORITY_ARRIVAL_BAND,
                        (now, src, idx + offset),
                        handler,
                        msg,
                    ),
                )
            queue._live += copies
            if sim.trace_enabled:
                sim.tracer.record(now, "net.send", msg=str(msg), arrival=arrival)
            return arrival
        stats.inbound[dst] += copies

        # Inlined EventQueue.push_call (one entry per delivery copy).
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + copies
        heappush(queue._heap, (arrival, 0, seq, handler, msg))
        if copies > 1:
            heap = queue._heap
            for offset in range(1, copies):
                heappush(heap, (arrival, 0, seq + offset, handler, msg))
        queue._live += copies
        if sim.trace_enabled:
            sim.tracer.record(now, "net.send", msg=str(msg), arrival=arrival)
        return arrival

    def send_fanout(
        self,
        src: int,
        targets: tuple[int, ...],
        kind: str,
        payload: object,
        size_bytes: int,
    ) -> None:
        """Send one payload from ``src`` to every target (multicast path).

        Semantically identical to building and :meth:`send`-ing one
        :class:`Message` per target, but with the per-message constants
        (stats counters, serialization delay, clock, heap) hoisted out
        of the loop.  Loss-model, fault-injection, and tracing runs take
        the plain :meth:`send` path so per-message drop decisions and
        trace records stay exactly as before.
        """
        sim = self.sim
        if (
            self.loss_model is not None
            or self._injector is not None
            or self._router is not None
            or sim.trace_enabled
        ):
            for dst in targets:
                self.send(Message(src, dst, kind, payload, size_bytes))
            return
        now = sim._now
        n = len(targets)
        stats = self.stats
        stats.messages += n
        stats.bytes += size_bytes * n
        stats.by_kind[kind] += n
        stats.outbound[src] += n
        inbound = stats.inbound
        direct = self._direct
        base_latency = self._base_latency
        last_arrival = self._last_arrival
        serial = size_bytes / self._link_bandwidth
        queue = self._queue
        heap = queue._heap
        seq = queue._next_seq
        for dst in targets:
            handler = direct.get((dst, kind))
            if handler is None:
                handler = self._resolve_direct(dst, kind)
            msg = Message(src, dst, kind, payload, size_bytes)
            msg.sent_at = now
            key = (src, dst)
            base = base_latency.get(key)
            if base is None:
                base = self.topology.hops(src, dst) * self._hop_latency
                base_latency[key] = base
            arrival = now + (base + serial)
            inbound[dst] += 1
            previous = last_arrival.get(key)
            if previous is not None and arrival < previous:
                arrival = previous
            last_arrival[key] = arrival
            heappush(heap, (arrival, 0, seq, handler, msg))
            seq += 1
        queue._next_seq = seq
        queue._live += n

    def send_fanout_train(
        self,
        src: int,
        targets: tuple[int, ...],
        kind: str,
        payloads: "list[object] | tuple[object, ...]",
        sizes: "list[int] | tuple[int, ...]",
    ) -> None:
        """Send a train of payloads from ``src`` to every target.

        Semantically identical to calling :meth:`send_fanout` once per
        ``(payload, size)`` entry, in entry order: every logical message
        keeps its own :class:`Message` object, stats counters, and FIFO-
        clamped arrival time, and each destination's handler is invoked
        once per message in sequence order.  The difference is purely
        mechanical — consecutive messages on one channel whose clamped
        arrivals coincide ride ONE heap event (a packet train, see
        :func:`~repro.net.message.fire_train`) instead of one event
        each.  Messages sent back-to-back at the same instant on a FIFO
        channel arrive together whenever no later message is larger
        than the running maximum, so a k-burst of same-size updates
        collapses to a single delivery event per member.

        Loss-model, fault-injection, and tracing runs take the plain
        :meth:`send` path (in the same entry-major order the unbatched
        engine would produce) so per-message drop decisions and trace
        records stay exactly as before.
        """
        n_entries = len(payloads)
        if n_entries == 1:
            self.send_fanout(src, targets, kind, payloads[0], sizes[0])
            return
        sim = self.sim
        if (
            self.loss_model is not None
            or self._injector is not None
            or self._router is not None
            or sim.trace_enabled
        ):
            for payload, size in zip(payloads, sizes):
                for dst in targets:
                    self.send(Message(src, dst, kind, payload, size))
            return
        now = sim._now
        n_targets = len(targets)
        total = n_entries * n_targets
        stats = self.stats
        stats.messages += total
        stats.bytes += sum(sizes) * n_targets
        stats.by_kind[kind] += total
        stats.outbound[src] += total
        inbound = stats.inbound
        direct = self._direct
        base_latency = self._base_latency
        last_arrival = self._last_arrival
        inv_bandwidth = 1.0 / self._link_bandwidth
        serials = [size * inv_bandwidth for size in sizes]
        queue = self._queue
        heap = queue._heap
        seq = queue._next_seq
        pushed = 0
        for dst in targets:
            handler = direct.get((dst, kind))
            if handler is None:
                handler = self._resolve_direct(dst, kind)
            key = (src, dst)
            base = base_latency.get(key)
            if base is None:
                base = self.topology.hops(src, dst) * self._hop_latency
                base_latency[key] = base
            depart = now + base
            previous = last_arrival.get(key)
            # Build maximal segments of consecutive messages sharing one
            # clamped arrival; each segment is one heap entry.
            segment: list[Message] = []
            segment_arrival = -1.0
            for i in range(n_entries):
                arrival = depart + serials[i]
                if previous is not None and arrival < previous:
                    arrival = previous
                previous = arrival
                msg = Message(src, dst, kind, payloads[i], sizes[i])
                msg.sent_at = now
                if arrival == segment_arrival:
                    segment.append(msg)
                    continue
                if segment:
                    pushed += 1
                    if len(segment) == 1:
                        heappush(
                            heap, (segment_arrival, 0, seq, handler, segment[0])
                        )
                    else:
                        heappush(
                            heap,
                            (
                                segment_arrival,
                                0,
                                seq,
                                fire_train,
                                (handler, tuple(segment)),
                            ),
                        )
                    seq += 1
                segment = [msg]
                segment_arrival = arrival
            if segment:
                pushed += 1
                if len(segment) == 1:
                    heappush(heap, (segment_arrival, 0, seq, handler, segment[0]))
                else:
                    heappush(
                        heap,
                        (segment_arrival, 0, seq, fire_train, (handler, tuple(segment))),
                    )
                seq += 1
            last_arrival[key] = previous
            inbound[dst] += n_entries
        queue._next_seq = seq
        queue._live += pushed
