"""Shared experiment plumbing: scales, sweeps, and expectations.

The paper's sweeps run 1024 tasks on up to 129 processors; that is
minutes of wall-clock in a pure-Python simulator, too slow for a unit
test loop.  Experiments therefore support two scales:

* ``quick`` — reduced sizes, used by default in tests and benchmarks;
* ``full``  — the paper's sizes, enabled with ``REPRO_FULL=1`` (used to
  produce the numbers recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

SCALE_QUICK = "quick"
SCALE_FULL = "full"

#: Environment variable that switches benchmarks to paper scale.
FULL_ENV = "REPRO_FULL"


def sweep_scale() -> str:
    """The active scale, from the ``REPRO_FULL`` environment variable."""
    return SCALE_FULL if os.environ.get(FULL_ENV, "") not in ("", "0") else SCALE_QUICK


def network_sizes_fig2(scale: str | None = None) -> tuple[int, ...]:
    """Figure 2's network sizes: powers of two plus one."""
    scale = scale or sweep_scale()
    if scale == SCALE_FULL:
        return (3, 5, 9, 17, 33, 65, 129)
    return (3, 5, 9, 17)


def total_tasks_fig2(scale: str | None = None) -> int:
    scale = scale or sweep_scale()
    return 1024 if scale == SCALE_FULL else 128


def network_sizes_fig8(scale: str | None = None) -> tuple[int, ...]:
    """Figure 8's network sizes: powers of two, 2..128."""
    scale = scale or sweep_scale()
    if scale == SCALE_FULL:
        return (2, 4, 8, 16, 32, 64, 128)
    return (2, 4, 8, 16)


def data_size_fig8(scale: str | None = None) -> int:
    scale = scale or sweep_scale()
    return 1024 if scale == SCALE_FULL else 128


@dataclass(frozen=True, slots=True)
class PaperExpectation:
    """A qualitative claim from the paper that a sweep must reproduce."""

    claim: str
    holds: bool

    def __str__(self) -> str:
        marker = "OK " if self.holds else "FAIL"
        return f"[{marker}] {self.claim}"
