"""Multi-seed replication and summary statistics.

The simulator is deterministic per seed; workloads with randomized
timing (the synthetic contention generator, lossy-network runs) are
replicated across seeds and summarized as mean, standard deviation, and
a Student-t 95% confidence interval.  Deterministic workloads replicate
to identical values — the CI collapses to a point, which doubles as a
regression check on determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ExperimentError


@dataclass(frozen=True, slots=True)
class ReplicatedMetric:
    """Summary of one metric across replicated runs."""

    name: str
    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    values: tuple[float, ...]

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.6g} +/- {self.ci_half_width:.3g} "
            f"(95% CI, n={self.n})"
        )


def _t_critical(dof: int) -> float:
    """Two-sided 95% Student-t critical value."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.975, dof))
    except ImportError:  # pragma: no cover - scipy is available in CI
        # Conservative fallback table for small dof, else normal approx.
        table = {1: 12.71, 2: 4.30, 3: 3.18, 4: 2.78, 5: 2.57, 6: 2.45,
                 7: 2.36, 8: 2.31, 9: 2.26, 10: 2.23}
        return table.get(dof, 1.96)


def summarize(name: str, values: Iterable[float]) -> ReplicatedMetric:
    """Mean / std / 95% CI of a sample of replicated measurements."""
    data = tuple(float(v) for v in values)
    if not data:
        raise ExperimentError(f"metric {name!r}: no replications")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return ReplicatedMetric(
            name=name, n=1, mean=mean, std=0.0, ci_low=mean, ci_high=mean,
            values=data,
        )
    var = sum((v - mean) ** 2 for v in data) / (n - 1)
    std = math.sqrt(var)
    half = _t_critical(n - 1) * std / math.sqrt(n)
    return ReplicatedMetric(
        name=name,
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        values=data,
    )


def replicate(
    run: Callable[[int], float],
    seeds: Iterable[int] = range(5),
    name: str = "metric",
) -> ReplicatedMetric:
    """Run ``run(seed)`` for each seed and summarize the results."""
    return summarize(name, (run(seed) for seed in seeds))


def replicate_many(
    run: Callable[[int], dict[str, float]],
    seeds: Iterable[int] = range(5),
) -> dict[str, ReplicatedMetric]:
    """Replicate a run that reports several metrics at once."""
    collected: dict[str, list[float]] = {}
    for seed in seeds:
        for key, value in run(seed).items():
            collected.setdefault(key, []).append(value)
    return {key: summarize(key, values) for key, values in collected.items()}
