"""Experiments: one module per paper figure, plus ablations.

Each experiment module exposes a ``run_*`` function that sweeps the
relevant parameter (consistency system, network size, threshold, ...),
returns structured rows, and can render the same series the paper's
figure reports via :func:`repro.metrics.report.format_table`.

The benchmark harness in ``benchmarks/`` calls these with reduced sizes
by default; set the environment variable ``REPRO_FULL=1`` to run the
paper-scale sweeps (1024 tasks, up to 129 processors).
"""

from repro.experiments.burst import BurstRow, run_burst_sweep
from repro.experiments.common import SCALE_FULL, SCALE_QUICK, sweep_scale
from repro.experiments.figure1 import Figure1Row, run_figure1
from repro.experiments.figure2 import Figure2Row, run_figure2
from repro.experiments.figure8 import Figure8Row, run_figure8

__all__ = [
    "BurstRow",
    "Figure1Row",
    "Figure2Row",
    "Figure8Row",
    "SCALE_FULL",
    "SCALE_QUICK",
    "run_burst_sweep",
    "run_figure1",
    "run_figure2",
    "run_figure8",
    "sweep_scale",
]
