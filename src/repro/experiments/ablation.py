"""Ablations for the design choices DESIGN.md calls out.

* :func:`run_threshold_sweep` (A1) — how the optimism threshold trades
  rollback waste against hidden lock latency, under low and high
  contention.  The paper's example threshold is 0.30.
* :func:`run_echo_blocking_ablation` (A2) — what goes wrong without the
  Figure 6 hardware blocking filter (see
  :func:`repro.workloads.scenarios.run_double_write`).
* :func:`run_lock_protocol_shootout` (A3) — all registered consistency
  systems on the shared-counter kernel.
* :func:`run_force_modes` — forcing the optimistic runner always-on /
  always-off isolates the value of the usage-frequency history.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SweepExecutor
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.counter import CounterConfig, run_counter
from repro.workloads.scenarios import DoubleWriteConfig, run_double_write


@dataclass(frozen=True, slots=True)
class ThresholdRow:
    """One optimism threshold's outcome under a given contention level."""

    threshold: float
    think_time: float
    elapsed: float
    attempts: int
    successes: int
    rollbacks: int
    regular: int
    wasted: float


def _threshold_point(
    point: tuple[float, float, int, int, MachineParams],
) -> ThresholdRow:
    """One (think_time, threshold) cell (module-level: picklable)."""
    think, threshold, n_nodes, increments_per_node, params = point
    result = run_counter(
        CounterConfig(
            system="gwc_optimistic",
            n_nodes=n_nodes,
            increments_per_node=increments_per_node,
            think_time=think,
            params=params,
            threshold=threshold,
        )
    )
    assert result.extra["correct"], "counter lost updates"
    return ThresholdRow(
        threshold=threshold,
        think_time=think,
        elapsed=result.elapsed,
        attempts=result.counter("opt.attempts"),
        successes=result.counter("opt.successes"),
        rollbacks=result.counter("opt.rollbacks"),
        regular=result.counter("opt.regular_path"),
        wasted=result.metrics.total_wasted(),
    )


def run_threshold_sweep(
    thresholds: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.9, 1.0),
    think_times: tuple[float, ...] = (2e-6, 50e-6),
    n_nodes: int = 6,
    increments_per_node: int = 16,
    params: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
) -> list[ThresholdRow]:
    """A1: sweep the optimism threshold under two contention levels.

    Small ``think_time`` means heavy contention (optimism should be
    suppressed by the history); large means light contention (optimism
    should win).  Threshold 0.0 forces every request down the regular
    path once any usage has ever been seen; 1.0 never suppresses.
    """
    points = [
        (think, threshold, n_nodes, increments_per_node, params)
        for think in think_times
        for threshold in thresholds
    ]
    return SweepExecutor(jobs).map(_threshold_point, points)


def render_threshold(rows: list[ThresholdRow]) -> str:
    return format_table(
        [
            "think (us)",
            "threshold",
            "elapsed (us)",
            "attempts",
            "successes",
            "rollbacks",
            "regular",
            "wasted (us)",
        ],
        [
            [
                row.think_time * 1e6,
                row.threshold,
                row.elapsed * 1e6,
                row.attempts,
                row.successes,
                row.rollbacks,
                row.regular,
                row.wasted * 1e6,
            ]
            for row in rows
        ],
        title="Ablation A1: optimism threshold sweep",
    )


@dataclass(frozen=True, slots=True)
class ShootoutRow:
    """One lock protocol / consistency system on the counter kernel."""

    system: str
    elapsed: float
    correct: bool
    remote_attempts: int


def _protocol_point(point: tuple[str, int, int, float, MachineParams]) -> ShootoutRow:
    """One consistency system's counter run (module-level: picklable)."""
    system, n_nodes, increments_per_node, think_time, params = point
    result = run_counter(
        CounterConfig(
            system=system,
            n_nodes=n_nodes,
            increments_per_node=increments_per_node,
            think_time=think_time,
            params=params,
        )
    )
    return ShootoutRow(
        system=system,
        elapsed=result.elapsed,
        correct=result.extra["correct"],
        remote_attempts=0,
    )


def run_lock_protocol_shootout(
    systems: tuple[str, ...] = ("gwc", "gwc_optimistic", "entry", "release"),
    n_nodes: int = 8,
    increments_per_node: int = 8,
    think_time: float = 20e-6,
    params: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
) -> list[ShootoutRow]:
    """A3a: every consistency system runs the same counter kernel."""
    points = [
        (system, n_nodes, increments_per_node, think_time, params)
        for system in systems
    ]
    return SweepExecutor(jobs).map(_protocol_point, points)


def _primitive_point(point: tuple[str, int, int, float, MachineParams]) -> ShootoutRow:
    """One lock primitive's bench run (module-level: picklable)."""
    from repro.workloads.lock_bench import LockBenchConfig, run_lock_bench

    protocol, n_nodes, increments_per_node, think_time, params = point
    result = run_lock_bench(
        LockBenchConfig(
            protocol=protocol,
            n_nodes=n_nodes,
            increments_per_node=increments_per_node,
            think_time=think_time,
            params=params,
        )
    )
    return ShootoutRow(
        system=protocol,
        elapsed=result.elapsed,
        correct=result.extra["correct"],
        remote_attempts=result.extra.get("remote_attempts", 0),
    )


def run_lock_primitive_shootout(
    n_nodes: int = 6,
    increments_per_node: int = 8,
    think_time: float = 10e-6,
    params: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
) -> list[ShootoutRow]:
    """A3b: the paper's locks vs. the cited TAS/TTAS/MCS baselines."""
    from repro.workloads.lock_bench import PROTOCOLS

    points = [
        (protocol, n_nodes, increments_per_node, think_time, params)
        for protocol in PROTOCOLS
    ]
    return SweepExecutor(jobs).map(_primitive_point, points)


def render_shootout(rows: list[ShootoutRow]) -> str:
    return format_table(
        ["protocol", "elapsed (us)", "correct", "remote attempts"],
        [
            [row.system, row.elapsed * 1e6, row.correct, row.remote_attempts]
            for row in rows
        ],
        title="Ablation A3: lock protocol shoot-out (counter kernel)",
    )


def run_echo_blocking_ablation(rounds: int = 6, n_nodes: int = 8):
    """A2: the double-write hazard with and without the Figure 6 filter.

    Returns ``(with_filter, without_filter)`` workload results; the
    filtered run must be correct, and the unfiltered run demonstrates
    the corruption the paper's hardware blocking mechanism prevents
    (or, at minimum, that the filter is load-bearing: it drops echoes).
    """
    with_filter = run_double_write(
        DoubleWriteConfig(rounds=rounds, n_nodes=n_nodes, echo_blocking=True)
    )
    without_filter = run_double_write(
        DoubleWriteConfig(rounds=rounds, n_nodes=n_nodes, echo_blocking=False)
    )
    return with_filter, without_filter


def run_force_modes(
    n_nodes: int = 6,
    increments_per_node: int = 12,
    think_time: float = 4e-6,
    params: MachineParams = PAPER_PARAMS,
):
    """History value: adaptive vs always-optimistic vs always-regular.

    Under contention, always-optimistic wastes work on rollbacks and
    always-regular hides nothing; the history should land near the
    better of the two.  Returns ``{mode: WorkloadResult}``.
    """
    from repro.workloads.base import build_machine, finish
    from repro.workloads.counter import COUNTER, GROUP, LOCK, _increment_body, _worker
    from repro.core.section import Section

    results = {}
    for mode in ("adaptive", "optimistic", "regular"):
        force = None if mode == "adaptive" else mode
        machine, system = build_machine(
            "gwc_optimistic", n_nodes, params=params, force=force
        )
        machine.create_group(GROUP)
        machine.declare_variable(GROUP, COUNTER, 0, mutex_lock=LOCK)
        machine.declare_lock(GROUP, LOCK, protects=(COUNTER,))
        section = Section(
            lock=LOCK,
            body=_increment_body,
            shared_reads=(COUNTER,),
            shared_writes=(COUNTER,),
        )
        config = CounterConfig(
            system="gwc_optimistic",
            n_nodes=n_nodes,
            increments_per_node=increments_per_node,
            think_time=think_time,
            params=params,
        )
        for node in machine.nodes:
            node.locals["_update_time"] = config.update_time
            node.locals["_checker"] = machine.checker
            machine.spawn(
                _worker(node, system, config, section), name=f"force-{node.id}"
            )
        results[mode] = finish(machine, system)
        if machine.checker is not None:
            machine.checker.verify_chain(COUNTER, 0)
    return results
