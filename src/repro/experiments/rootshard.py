"""Root-sharding sweep: serial-vs-sharded parity and per-root load.

A Figure-8-class network-size sweep for the sharded-root sequencer
(PR 10).  Each point runs the :mod:`repro.workloads.rootshard` workload
twice on the same machine shape and seed:

1. **serial baseline** — one root sequences the whole family, and
2. **sharded** — ``roots`` partitions (optionally with hierarchical
   relay multicast), re-partitioning online once the injected hot key
   has skewed the observed per-root load.

The parity bar is the semantic shared-state hash
(:func:`repro.sim.statehash.shared_state_hash`): both runs must drive
every member to the same final value for every variable and return
every lock to FREE.  The load bar is the acceptance criterion from the
issue: after the online re-partition, the hottest root's sequenced-
write share stays within 2x the mean root's share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.experiments.common import PaperExpectation
from repro.experiments.runner import SweepExecutor
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.rootshard import RootShardConfig, run_rootshard

#: Acceptance bar: hottest root <= 2x the mean root, post-rebalance.
MAX_OVER_MEAN_BAR = 2.0


@dataclass(frozen=True, slots=True)
class RootShardRow:
    """One network size's serial-vs-sharded comparison."""

    n_nodes: int
    roots: int
    fanout: int | None
    parity: bool
    serial_hash: str
    sharded_hash: str
    load_before: tuple[int, ...]
    load_after: tuple[int, ...]
    #: max-root share over mean-root share, measured after the online
    #: re-partition (the < 2.0 acceptance bar); 0.0 when not rebalanced.
    max_over_mean_after: float
    migration_moves: int
    locks_transferred: int
    migration_discards: int
    relayed_applies: int
    serial_elapsed: float
    sharded_elapsed: float


def point_config(
    n_nodes: int,
    roots: int,
    fanout: int | None,
    seed: int,
    topology: str,
    params: MachineParams,
    rebalance: bool = True,
) -> RootShardConfig:
    """The per-point workload shape, constant across network sizes.

    The write counts do not scale with ``n_nodes`` — the member count
    itself scales the multicast cost, which is what the sweep measures.
    The hot key writes at ~8x the cold rate for the same wall-clock
    span, so observed per-unit load is stationary and LPT re-planning
    from it predicts the residual load it is balancing.
    """
    return RootShardConfig(
        n_nodes=n_nodes,
        roots=roots,
        fanout=fanout,
        hot_rounds=320,
        hot_think=5e-7,
        cold_units=16,
        cold_rounds=40,
        think_time=4e-6,
        n_locks=4,
        n_lockers=min(16, n_nodes),
        increments=4,
        rebalance=rebalance,
        rebalance_frac=0.35,
        seed=seed,
        topology=topology,
        params=params,
    )


def _rootshard_point(
    point: tuple[int, int, "int | None", int, str, MachineParams, bool]
) -> RootShardRow:
    """One network size, serial then sharded (module-level: picklable)."""
    n_nodes, roots, fanout, seed, topology, params, rebalance = point
    serial = run_rootshard(
        point_config(
            n_nodes, 1, None, seed, topology, params, rebalance=False
        )
    )
    sharded = run_rootshard(
        point_config(
            n_nodes, roots, fanout, seed, topology, params,
            rebalance=rebalance,
        )
    )
    for result in (serial, sharded):
        if not result.extra["correct"]:
            raise WorkloadError(
                f"rootshard at n={n_nodes} roots={result.extra['roots']}: "
                "wrong final values"
            )
    ratio = sharded.extra["max_over_mean_after"]
    return RootShardRow(
        n_nodes=n_nodes,
        roots=roots,
        fanout=fanout,
        parity=serial.extra["shared_hash"] == sharded.extra["shared_hash"],
        serial_hash=serial.extra["shared_hash"],
        sharded_hash=sharded.extra["shared_hash"],
        load_before=tuple(sharded.extra["load_before"] or ()),
        load_after=tuple(sharded.extra["load_after"] or ()),
        max_over_mean_after=ratio if ratio is not None else 0.0,
        migration_moves=len(sharded.extra["migration_moves"] or {}),
        locks_transferred=sharded.extra["locks_transferred"],
        migration_discards=sharded.extra["migration_discards"],
        relayed_applies=sharded.extra["relayed_applies"],
        serial_elapsed=serial.elapsed,
        sharded_elapsed=sharded.elapsed,
    )


def run_rootshard_sweep(
    sizes: tuple[int, ...] = (16, 64, 256, 1024),
    roots: int = 4,
    fanout: int | None = 8,
    seed: int = 0,
    topology: str = "mesh_torus",
    params: MachineParams = PAPER_PARAMS,
    rebalance: bool = True,
    jobs: int | None = None,
) -> list[RootShardRow]:
    """Sweep network sizes; each point is serial baseline vs sharded."""
    executor = SweepExecutor(jobs)
    points = [
        (n_nodes, roots, fanout, seed, topology, params, rebalance)
        for n_nodes in sizes
    ]
    return executor.map(_rootshard_point, points)


def expectations(rows: list[RootShardRow]) -> list[PaperExpectation]:
    """The sweep's acceptance claims, checked against the rows."""
    rebalanced = [row for row in rows if row.load_after]
    checks = [
        PaperExpectation(
            "sharded final state matches the serial baseline at every size",
            all(row.parity for row in rows),
        ),
        PaperExpectation(
            "every run returned its locks to FREE with correct finals "
            "(enforced per point)",
            True,
        ),
        PaperExpectation(
            "online re-partitioning moved the hot unit at every "
            "rebalanced point",
            all(row.migration_moves > 0 for row in rebalanced),
        ),
        PaperExpectation(
            "post-rebalance max-root share <= 2x mean-root share "
            + str([round(row.max_over_mean_after, 2) for row in rebalanced]),
            all(
                row.max_over_mean_after <= MAX_OVER_MEAN_BAR
                for row in rebalanced
            ),
        ),
    ]
    if any(row.fanout is not None for row in rows):
        checks.append(
            PaperExpectation(
                "hierarchical multicast relayed applies at every "
                "tree-mode point",
                all(
                    row.relayed_applies > 0
                    for row in rows
                    if row.fanout is not None and row.n_nodes > 2
                ),
            )
        )
    return checks


def render(rows: list[RootShardRow]) -> str:
    return format_table(
        [
            "CPUs",
            "roots",
            "fanout",
            "parity",
            "max/mean after",
            "moves",
            "relayed",
        ],
        [
            [
                row.n_nodes,
                row.roots,
                row.fanout if row.fanout is not None else "direct",
                "yes" if row.parity else "NO",
                round(row.max_over_mean_after, 3),
                row.migration_moves,
                row.relayed_applies,
            ]
            for row in rows
        ],
        title="Sharded roots: serial parity and per-root load",
    )
