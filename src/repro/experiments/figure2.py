"""Figure 2 — speedup for task management vs. network size.

Regenerates the figure's three series: the zero-network-delay maximum,
Sesame GWC with eagersharing, and the "fast" entry consistency
comparator, over networks of 2^k + 1 processors.

Paper numbers at full scale: "Sesame reaches a peak speedup of 84.1 from
129 processors. ... For entry consistency, peak speedup is only 22.5
from 33 processors.  GWC gives 3.7 times faster performance."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PaperExpectation,
    network_sizes_fig2,
    total_tasks_fig2,
)
from repro.experiments.runner import (
    SweepExecutor,
    clamp_oversubscription,
    default_shard_backend,
    default_shards,
)
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue


@dataclass(frozen=True, slots=True)
class Figure2Row:
    """One network size's speedups across the figure's series."""

    n_nodes: int
    max_speedup: float
    gwc: float
    entry: float


def _figure2_point(
    point: tuple[int, int, float, float, MachineParams, int, str, "str | None"],
) -> Figure2Row:
    """One network size's three series (module-level: picklable)."""
    (
        n_nodes,
        total_tasks,
        task_time,
        produce_ratio,
        params,
        shards,
        policy,
        backend,
    ) = point
    base = dict(
        n_nodes=n_nodes,
        total_tasks=total_tasks,
        task_time=task_time,
        produce_ratio=produce_ratio,
    )
    # Sharding applies to the GWC series only: the ideal series uses
    # zero delays (no cross-shard lookahead) and entry consistency is
    # not message-pure; both fall back to serial anyway, so request it
    # only where it can run.
    ideal = run_task_queue(
        TaskQueueConfig(system="gwc", params=params.zero_delay(), **base)
    )
    gwc = run_task_queue(
        TaskQueueConfig(
            system="gwc",
            params=params,
            shards=shards,
            shard_policy=policy,
            shard_backend=backend,
            **base,
        )
    )
    entry = run_task_queue(TaskQueueConfig(system="entry", params=params, **base))
    for result in (ideal, gwc, entry):
        if not result.extra["all_executed"]:
            raise AssertionError(
                f"{result.system} at n={n_nodes}: not all tasks executed"
            )
    return Figure2Row(
        n_nodes=n_nodes,
        max_speedup=ideal.speedup,
        gwc=gwc.speedup,
        entry=entry.speedup,
    )


def run_figure2(
    sizes: tuple[int, ...] | None = None,
    total_tasks: int | None = None,
    task_time: float = 200e-6,
    produce_ratio: float = 1.0 / 128.0,
    params: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
    shards: int | None = None,
    shard_policy: str = "optimistic",
    shard_backend: str | None = None,
) -> list[Figure2Row]:
    """Sweep network sizes for the GWC and entry consistency series.

    The "maximum speedup possible if network delays were zero" line is
    produced by running the same GWC workload with a zero-delay
    parameter set, exactly as the paper defines it.

    Each network size is an independent simulation point; ``jobs``
    (default: the ``REPRO_JOBS`` env var) fans them across worker
    processes without changing any result.  ``shards`` (default: the
    ``REPRO_SHARDS`` env var) runs each GWC point under the sharded
    kernel on ``shard_backend`` (default: ``REPRO_SHARD_BACKEND``) —
    results are bit-identical to serial by construction.
    """
    sizes = sizes if sizes is not None else network_sizes_fig2()
    total_tasks = total_tasks if total_tasks is not None else total_tasks_fig2()
    shards = default_shards() if shards is None else max(1, int(shards))
    backend = (
        default_shard_backend() if shard_backend is None else shard_backend
    )
    executor = SweepExecutor(jobs)
    executor.jobs = clamp_oversubscription(executor.jobs, shards, backend)
    points = [
        (
            n_nodes,
            total_tasks,
            task_time,
            produce_ratio,
            params,
            shards,
            shard_policy,
            backend,
        )
        for n_nodes in sizes
    ]
    return executor.map(_figure2_point, points)


def expectations(rows: list[Figure2Row]) -> list[PaperExpectation]:
    """Figure 2's qualitative claims, checked against the sweep."""
    last = rows[-1]
    gwc_peak = max(row.gwc for row in rows)
    entry_peak = max(row.entry for row in rows)
    entry_peak_n = max(rows, key=lambda r: r.entry).n_nodes
    gwc_peak_n = max(rows, key=lambda r: r.gwc).n_nodes
    checks = [
        PaperExpectation(
            "GWC speedup stays at or below the zero-delay maximum",
            all(row.gwc <= row.max_speedup * 1.001 for row in rows),
        ),
        PaperExpectation(
            "GWC outperforms entry consistency at the largest network",
            last.gwc > last.entry,
        ),
        PaperExpectation(
            "GWC beats entry consistency at every size",
            all(row.gwc > row.entry for row in rows),
        ),
    ]
    # Entry consistency's collapse only shows once networks pass its
    # handoff-bound peak (the paper's 33); check those claims only when
    # the sweep reaches that scale.
    if rows[-1].n_nodes >= 65:
        checks.append(
            PaperExpectation(
                "GWC's peak speedup is well above entry consistency's "
                "(paper: 3.7x; shape check: >= 1.5x)",
                gwc_peak >= 1.5 * entry_peak,
            )
        )
        checks.append(
            PaperExpectation(
                "entry consistency peaks at a smaller network than GWC "
                "(paper: 33 vs 129)",
                entry_peak_n < gwc_peak_n,
            )
        )
    return checks


def render(rows: list[Figure2Row]) -> str:
    return format_table(
        ["CPUs", "max (no delay)", "Sesame GWC", "entry consistency"],
        [[row.n_nodes, row.max_speedup, row.gwc, row.entry] for row in rows],
        title="Figure 2: speedup for task management",
    )


def chart(rows: list[Figure2Row]) -> str:
    """The figure's three series as an ASCII chart (log-2 x axis)."""
    from repro.metrics.ascii_chart import render_chart

    return render_chart(
        {
            "max": [(r.n_nodes, r.max_speedup) for r in rows],
            "Sesame GWC": [(r.n_nodes, r.gwc) for r in rows],
            "entry": [(r.n_nodes, r.entry) for r in rows],
        },
        title="Figure 2: speedup for task management",
        logx=True,
    )
