"""Figure 8 — mutex methods: network power vs. number of CPUs.

Regenerates the figure's four series on the linear-pipeline workload:

1. the zero-delay maximum (1.89 for 2+ CPUs at a 1/8 mutex ratio),
2. optimistic GWC locking (paper: 1.68 @ 2 CPUs, 1.15 @ 128),
3. regular (non-optimistic) GWC locking (paper: 1.53 @ 2, 1.03 @ 128),
4. entry consistency (paper: 0.81 @ 2, 0.64 @ 128).

Summary claims: "execution with optimistic synchronization can be 1.1
times faster than with non-optimistic locking under group write
consistency and 2.1 times faster than with entry consistency."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PaperExpectation,
    data_size_fig8,
    network_sizes_fig8,
)
from repro.experiments.runner import (
    SweepExecutor,
    clamp_oversubscription,
    default_shard_backend,
    default_shards,
)
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.pipeline import PipelineConfig, run_pipeline


@dataclass(frozen=True, slots=True)
class Figure8Row:
    """One network size's power across the figure's series."""

    n_nodes: int
    max_power: float
    optimistic: float
    gwc: float
    entry: float
    rollbacks: int


def _figure8_point(
    point: tuple[
        int, int, float, float, int, int, MachineParams, int, str, "str | None"
    ],
) -> Figure8Row:
    """One network size's four series (module-level: picklable)."""
    (
        n_nodes,
        data_size,
        local_time,
        mutex_ratio,
        item_bytes,
        block_bytes,
        params,
        shards,
        policy,
        backend,
    ) = point
    base = dict(
        n_nodes=n_nodes,
        data_size=data_size,
        local_time=local_time,
        mutex_ratio=mutex_ratio,
        item_bytes=item_bytes,
        block_bytes=block_bytes,
    )
    # Sharding applies to the two GWC-family series; the zero-delay
    # ideal (no cross-shard lookahead) and entry consistency (not
    # message-pure) fall back to serial regardless.
    ideal = run_pipeline(
        PipelineConfig(system="gwc", params=params.zero_delay(), **base)
    )
    optimistic = run_pipeline(
        PipelineConfig(
            system="gwc_optimistic",
            params=params,
            shards=shards,
            shard_policy=policy,
            shard_backend=backend,
            **base,
        )
    )
    gwc = run_pipeline(
        PipelineConfig(
            system="gwc",
            params=params,
            shards=shards,
            shard_policy=policy,
            shard_backend=backend,
            **base,
        )
    )
    entry = run_pipeline(PipelineConfig(system="entry", params=params, **base))
    for result in (ideal, optimistic, gwc, entry):
        if not result.extra["acc_correct"]:
            raise AssertionError(
                f"{result.system} at n={n_nodes}: wrong accumulator value"
            )
    return Figure8Row(
        n_nodes=n_nodes,
        max_power=ideal.speedup,
        optimistic=optimistic.speedup,
        gwc=gwc.speedup,
        entry=entry.speedup,
        rollbacks=optimistic.extra["rollbacks"],
    )


def run_figure8(
    sizes: tuple[int, ...] | None = None,
    data_size: int | None = None,
    local_time: float = 10e-6,
    mutex_ratio: float = 8.0,
    item_bytes: int = 64,
    block_bytes: int = 64,
    params: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
    shards: int | None = None,
    shard_policy: str = "optimistic",
    shard_backend: str | None = None,
) -> list[Figure8Row]:
    """Sweep network sizes for the four Figure 8 series.

    Each network size is an independent simulation point; ``jobs``
    (default: the ``REPRO_JOBS`` env var) fans them across worker
    processes without changing any result.  ``shards`` (default: the
    ``REPRO_SHARDS`` env var) runs the GWC-family points under the
    sharded kernel on ``shard_backend`` (default:
    ``REPRO_SHARD_BACKEND``) — results are bit-identical to serial by
    construction.
    """
    sizes = sizes if sizes is not None else network_sizes_fig8()
    data_size = data_size if data_size is not None else data_size_fig8()
    shards = default_shards() if shards is None else max(1, int(shards))
    backend = (
        default_shard_backend() if shard_backend is None else shard_backend
    )
    executor = SweepExecutor(jobs)
    executor.jobs = clamp_oversubscription(executor.jobs, shards, backend)
    points = [
        (
            n_nodes,
            data_size,
            local_time,
            mutex_ratio,
            item_bytes,
            block_bytes,
            params,
            shards,
            shard_policy,
            backend,
        )
        for n_nodes in sizes
    ]
    return executor.map(_figure8_point, points)


def expectations(rows: list[Figure8Row]) -> list[PaperExpectation]:
    """Figure 8's qualitative claims, checked against the sweep."""
    first, last = rows[0], rows[-1]
    checks = [
        PaperExpectation(
            "the zero-delay maximum is about 1.89 at every size",
            all(abs(row.max_power - 1.89) < 0.08 for row in rows),
        ),
        PaperExpectation(
            "optimistic > non-optimistic GWC > entry at every size",
            all(row.optimistic > row.gwc > row.entry for row in rows),
        ),
        PaperExpectation(
            "no rollbacks occur (the pipeline has no lock contention)",
            all(row.rollbacks == 0 for row in rows),
        ),
        PaperExpectation(
            "optimistic over non-optimistic is about 1.1x at 2 CPUs "
            f"(measured {first.optimistic / first.gwc:.2f})",
            1.0 < first.optimistic / first.gwc < 1.35,
        ),
        PaperExpectation(
            "optimistic over entry is about 2.1x at 2 CPUs "
            f"(measured {first.optimistic / first.entry:.2f})",
            first.optimistic / first.entry > 1.4,
        ),
        PaperExpectation(
            "power declines as the network grows (longer lock trips)",
            last.optimistic < first.optimistic and last.gwc < first.gwc,
        ),
    ]
    return checks


def render(rows: list[Figure8Row]) -> str:
    return format_table(
        ["CPUs", "max (no delay)", "optimistic", "non-opt GWC", "entry"],
        [
            [row.n_nodes, row.max_power, row.optimistic, row.gwc, row.entry]
            for row in rows
        ],
        title="Figure 8: mutex methods (network power in CPUs)",
    )


def chart(rows: list[Figure8Row]) -> str:
    """The figure's four series as an ASCII chart (log-2 x axis)."""
    from repro.metrics.ascii_chart import render_chart

    return render_chart(
        {
            "max": [(r.n_nodes, r.max_power) for r in rows],
            "optimistic": [(r.n_nodes, r.optimistic) for r in rows],
            "non-opt GWC": [(r.n_nodes, r.gwc) for r in rows],
            "entry": [(r.n_nodes, r.entry) for r in rows],
        },
        title="Figure 8: mutex methods (network power in CPUs)",
        logx=True,
    )
