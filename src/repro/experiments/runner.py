"""Parallel execution of independent simulation sweep points.

Every experiment sweep in this repo is embarrassingly parallel: each
(network size, protocol, parameter) point builds its own machine from a
fixed seed and shares nothing with its neighbours.  The
:class:`SweepExecutor` fans such points across ``multiprocessing``
workers while keeping the results **deterministic**: results come back
in submission order, and each point's simulation is bit-identical to a
serial run because all randomness is derived from the point's own seed.

Usage::

    executor = SweepExecutor(jobs=4)          # or jobs=None -> REPRO_JOBS
    rows = executor.map(_point_fn, points)    # order == points order

Worker functions must be module-level (picklable) and take exactly one
argument (pack tuples/dataclasses as needed).  With ``jobs <= 1`` the
executor degrades to a plain serial loop with zero multiprocessing
overhead, which is also the fallback wherever a pool cannot be created
(e.g. sandboxed interpreters without ``fork``/semaphores).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ExperimentError

#: Environment variable selecting the default worker count.
JOBS_ENV = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (absent/empty/invalid -> 1)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ExperimentError(
            f"{JOBS_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, jobs)


class SweepExecutor:
    """Maps a function over independent sweep points, possibly in parallel.

    Args:
        jobs: Worker process count.  ``None`` reads ``REPRO_JOBS`` (and
            defaults to 1 — serial — when unset); values below 2 mean
            serial execution in-process.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def __repr__(self) -> str:
        return f"SweepExecutor(jobs={self.jobs})"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(item) for item in items]``, fanned across workers.

        Result order always matches ``items`` order, so parallel output
        is byte-identical to serial output for deterministic ``fn``.
        """
        points: Sequence[T] = list(items)
        workers = min(self.jobs, len(points))
        if workers <= 1:
            return [fn(item) for item in points]
        try:
            ctx = self._context()
            with ctx.Pool(processes=workers) as pool:
                return pool.map(fn, points)
        except (OSError, PermissionError):
            # No usable multiprocessing primitives in this environment;
            # degrade to the serial path rather than failing the sweep.
            return [fn(item) for item in points]

    @staticmethod
    def _context() -> Any:
        """Prefer fork (cheap, inherits the warmed interpreter)."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
