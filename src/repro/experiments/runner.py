"""Parallel execution of independent simulation sweep points.

Every experiment sweep in this repo is embarrassingly parallel: each
(network size, protocol, parameter) point builds its own machine from a
fixed seed and shares nothing with its neighbours.  The
:class:`SweepExecutor` fans such points across ``multiprocessing``
workers while keeping the results **deterministic**: results come back
in submission order, and each point's simulation is bit-identical to a
serial run because all randomness is derived from the point's own seed.

Usage::

    executor = SweepExecutor(jobs=4)          # or jobs=None -> REPRO_JOBS
    rows = executor.map(_point_fn, points)    # order == points order

Worker functions must be module-level (picklable) and take exactly one
argument (pack tuples/dataclasses as needed).  With ``jobs <= 1`` the
executor degrades to a plain serial loop with zero multiprocessing
overhead, which is also the fallback wherever a pool cannot be created
(e.g. sandboxed interpreters without ``fork``/semaphores).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ExperimentError

#: Environment variable selecting the default worker count.
JOBS_ENV = "REPRO_JOBS"
#: Environment variable selecting the default shard count for workloads
#: that support the sharded kernel (see :mod:`repro.sim.shards`).
SHARDS_ENV = "REPRO_SHARDS"
#: Environment variable selecting the default shard execution backend
#: (``inproc`` or ``process``; see :mod:`repro.sim.procshards`).
BACKEND_ENV = "REPRO_SHARD_BACKEND"

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (absent/empty/invalid -> 1)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ExperimentError(
            f"{JOBS_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, jobs)


def default_shards() -> int:
    """Shard count from ``REPRO_SHARDS`` (absent/empty -> 1, serial)."""
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        shards = int(raw)
    except ValueError:
        raise ExperimentError(
            f"{SHARDS_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, shards)


def default_shard_backend() -> str:
    """Shard backend from ``REPRO_SHARD_BACKEND`` (absent -> ``inproc``)."""
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if not raw:
        return "inproc"
    if raw not in ("inproc", "process"):
        raise ExperimentError(
            f"{BACKEND_ENV} must be 'inproc' or 'process', got {raw!r}"
        )
    return raw


def clamp_oversubscription(
    jobs: int,
    shards: int,
    backend: str,
    available: int | None = None,
) -> int:
    """Clamp sweep ``jobs`` so jobs x shard-workers fits the CPU count.

    Only bites when the *process* shard backend is in play: each sweep
    worker would fork ``shards`` shard workers of its own, so running
    ``jobs`` sweep points concurrently costs ``jobs * shards`` processes.
    (In practice the shard backend also degrades to in-process inside a
    daemonic sweep worker, so the clamp mostly prevents pointless fan-out
    rather than a fork bomb — but either way it should not be silent.)
    Returns the adjusted job count, announcing any change with the
    standard one-line ``[sweep]`` notice.
    """
    if backend != "process" or jobs <= 1 or shards <= 1:
        return jobs
    if available is None:
        available = os.cpu_count() or 1
    if jobs * shards <= available:
        return jobs
    clamped = max(1, available // shards)
    SweepExecutor._notice(
        f"{jobs} jobs x {shards} shard processes oversubscribes "
        f"{available} CPU(s); clamping to {clamped} job(s)"
    )
    return clamped


class SweepExecutor:
    """Maps a function over independent sweep points, possibly in parallel.

    Args:
        jobs: Worker process count.  ``None`` reads ``REPRO_JOBS`` (and
            defaults to 1 — serial — when unset); values below 2 mean
            serial execution in-process.
    """

    def __init__(self, jobs: int | None = None) -> None:
        requested = default_jobs() if jobs is None else max(1, int(jobs))
        available = os.cpu_count() or 1
        if requested > 1 and requested > available:
            # More workers than CPUs never helps these CPU-bound sweeps
            # (forked workers just time-slice); say so once instead of
            # silently over- or under-delivering.
            self._notice(
                f"requested {requested} jobs but only {available} CPU(s) "
                f"available; running {min(requested, available)}"
            )
            requested = available
        self.jobs = requested

    def __repr__(self) -> str:
        return f"SweepExecutor(jobs={self.jobs})"

    @staticmethod
    def _notice(message: str) -> None:
        print(f"[sweep] {message}", file=sys.stderr)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(item) for item in items]``, fanned across workers.

        Result order always matches ``items`` order, so parallel output
        is byte-identical to serial output for deterministic ``fn``.
        """
        points: Sequence[T] = list(items)
        workers = min(self.jobs, len(points))
        if workers <= 1:
            return [fn(item) for item in points]
        try:
            ctx = self._context()
            with ctx.Pool(processes=workers) as pool:
                return pool.map(fn, points)
        except (OSError, PermissionError) as exc:
            # No usable multiprocessing primitives in this environment;
            # degrade to the serial path rather than failing the sweep —
            # but never silently (the jobs-N-slower-than-serial footgun).
            self._notice(
                f"multiprocessing unavailable ({exc.__class__.__name__}); "
                f"running {len(points)} point(s) serially"
            )
            return [fn(item) for item in points]

    @staticmethod
    def _context() -> Any:
        """Prefer fork (cheap, inherits the warmed interpreter)."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
