"""Figure 1 — the three-CPU locking comparison.

Regenerates the figure's qualitative content as a table: total time for
three successive mutually exclusive accesses, per-CPU completion times,
and per-CPU idle time, under Sesame GWC (plus its optimistic variant),
entry consistency, and weak/release consistency.

The paper's claim: "Sesame GWC is better than entry, weak, or release
consistency, for this example", with weak/release the slowest because
lock release is blocked until updates reach all nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PaperExpectation
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.contention import ContentionConfig, run_contention

#: Systems in the order the figure presents them (optimistic added as
#: the Section 4 extension of part (a)).
FIGURE1_SYSTEMS = ("gwc", "gwc_optimistic", "entry", "release")


@dataclass(frozen=True, slots=True)
class Figure1Row:
    """One consistency model's outcome in the Figure 1 scenario."""

    system: str
    completion_time: float
    cpu1_done: float
    cpu2_done: float
    cpu3_done: float
    final_value: int


def run_figure1(
    update_time: float = 4e-6,
    cpu2_delay: float = 10e-6,
    params: MachineParams = PAPER_PARAMS,
    systems: tuple[str, ...] = FIGURE1_SYSTEMS,
) -> list[Figure1Row]:
    """Run the Figure 1 scenario under every consistency model."""
    rows = []
    for system in systems:
        result = run_contention(
            ContentionConfig(
                system=system,
                update_time=update_time,
                cpu2_delay=cpu2_delay,
                params=params,
            )
        )
        done = result.extra["done_times"]
        rows.append(
            Figure1Row(
                system=system,
                completion_time=result.extra["completion_time"],
                cpu1_done=done[0],
                cpu2_done=done[1],
                cpu3_done=done[2],
                final_value=result.extra["final_value"],
            )
        )
    return rows


def expectations(rows: list[Figure1Row]) -> list[PaperExpectation]:
    """The paper's Figure 1 ordering claims, checked against the rows."""
    by_system = {row.system: row for row in rows}
    gwc = by_system["gwc"].completion_time
    entry = by_system["entry"].completion_time
    release = by_system["release"].completion_time
    checks = [
        PaperExpectation(
            "GWC completes the three exclusive accesses before entry "
            "consistency",
            gwc < entry,
        ),
        PaperExpectation(
            "entry consistency completes before weak/release consistency",
            entry < release,
        ),
        PaperExpectation(
            "all three updates were applied under every model",
            all(row.final_value == 3 for row in rows),
        ),
    ]
    if "gwc_optimistic" in by_system:
        checks.append(
            PaperExpectation(
                "optimistic GWC is at least as fast as regular GWC",
                by_system["gwc_optimistic"].completion_time <= gwc + 1e-12,
            )
        )
    return checks


def render(rows: list[Figure1Row]) -> str:
    """The figure as a printable table (times in microseconds)."""
    return format_table(
        ["system", "total (us)", "cpu1 done", "cpu2 done", "cpu3 done"],
        [
            [
                row.system,
                row.completion_time * 1e6,
                row.cpu1_done * 1e6,
                row.cpu2_done * 1e6,
                row.cpu3_done * 1e6,
            ]
            for row in rows
        ],
        title="Figure 1: three contending critical sections (3 CPUs)",
    )
