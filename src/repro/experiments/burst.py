"""Write-burst sensitivity: sharing traffic vs. burst size.

The Sesame hardware "transmits groups of writes atomically" — Group
Write Consistency is named for it.  The simulator's
``MachineParams.write_burst`` knob models that hardware feature: ``1``
(the paper-calibrated default) forwards every eagerly shared write as
its own origin->root packet, ``k > 1`` combines up to ``k`` consecutive
plain writes into one multi-write update, and ``0`` combines without
bound, flushing only at synchronization boundaries.

This experiment sweeps the burst size over the write-heavy producer
workload and reports the messages on the wire for each setting.  Every
run must converge to the **identical** final shared-memory state and
pass the same lock-safety checks as the unbatched baseline — combining
changes when writes become remotely visible, never what they converge
to.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.burst_writer import BurstWriterConfig, run_burst_writer

#: Default burst sizes swept (0 = unbounded).
DEFAULT_SIZES = (1, 2, 4, 8, 0)


@dataclass(frozen=True, slots=True)
class BurstRow:
    """Traffic measured at one burst size."""

    burst: int
    #: Plain one-write origin->root packets.
    update_messages: int
    #: Multi-write origin->root packets.
    burst_messages: int
    #: Their sum: every origin->root sharing message on the wire.
    origin_messages: int
    #: All messages on the wire (applies, lock traffic, everything).
    total_messages: int
    total_bytes: int
    #: Origin->root message reduction vs the burst=1 baseline.
    reduction: float
    elapsed: float


def run_burst_sweep(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    n_nodes: int = 8,
    rounds: int = 8,
    writes_per_round: int = 16,
    params: MachineParams = PAPER_PARAMS,
) -> list[BurstRow]:
    """Sweep ``write_burst`` and measure wire traffic at each size.

    Raises :class:`ExperimentError` if any run fails its correctness
    checks or diverges from the burst=1 final memory image — the sweep
    doubles as an end-to-end equivalence test.
    """
    if not sizes:
        raise ExperimentError("need at least one burst size")
    rows: list[BurstRow] = []
    reference_image = None
    baseline_origin = None
    for burst in sizes:
        config = BurstWriterConfig(
            n_nodes=n_nodes,
            rounds=rounds,
            writes_per_round=writes_per_round,
            params=dataclasses.replace(params, write_burst=burst),
        )
        result = run_burst_writer(config)
        extra = result.extra
        if not extra["acc_correct"] or not extra["image_correct"]:
            raise ExperimentError(
                f"burst={burst}: wrong final shared state "
                f"(acc={extra['final_acc']})"
            )
        if extra["pending_burst_writes"]:
            raise ExperimentError(
                f"burst={burst}: {extra['pending_burst_writes']} writes "
                "never flushed"
            )
        if reference_image is None:
            reference_image = extra["image"]
        elif extra["image"] != reference_image:
            raise ExperimentError(
                f"burst={burst}: final memory image diverges from burst=1"
            )
        origin = extra["update_messages"] + extra["burst_messages"]
        if baseline_origin is None:
            baseline_origin = origin
        rows.append(
            BurstRow(
                burst=burst,
                update_messages=extra["update_messages"],
                burst_messages=extra["burst_messages"],
                origin_messages=origin,
                total_messages=extra["total_messages"],
                total_bytes=extra["total_bytes"],
                reduction=baseline_origin / origin if origin else float("inf"),
                elapsed=result.elapsed,
            )
        )
    return rows


def render(rows: list[BurstRow]) -> str:
    return format_table(
        [
            "burst",
            "update msgs",
            "burst msgs",
            "origin msgs",
            "total msgs",
            "total bytes",
            "reduction",
        ],
        [
            [
                "unbounded" if row.burst == 0 else row.burst,
                row.update_messages,
                row.burst_messages,
                row.origin_messages,
                row.total_messages,
                row.total_bytes,
                f"{row.reduction:.2f}x",
            ]
            for row in rows
        ],
        title="Write-burst sensitivity: messages on the wire vs burst size",
    )
