"""Grouping ablation: per-group roots vs. one overloaded global root.

Section 1.2 of the paper: "Group write consistency could also guarantee
ordering between overlapping groups ... However ... combining
overlapping groups into one global group can prevent scaling in large
networks by overloading the global root and greatly reducing
performance."  (A single global group is also how total store ordering's
"centralized memory write arbitrator" behaves — which the paper calls
"not viable for large distributed memories".)

This experiment runs K independent lock-protected counters on N nodes
in two configurations:

* **split** — K sharing groups, each with its own root spread across the
  machine (the Sesame design);
* **merged** — everything in one global group rooted at node 0 (the
  TSO-arbitrator strawman).

With a non-zero interface service time the merged configuration's root
must process every update, grant, and echo in the machine; the split
configuration distributes that load over K roots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.node import NodeHandle
from repro.core.section import Section, SectionContext
from repro.errors import ExperimentError
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams

from dataclasses import replace


@dataclass(frozen=True, slots=True)
class GroupingConfig:
    """Parameters for the grouping ablation."""

    n_nodes: int = 16
    #: Independent counters/locks; nodes are partitioned over them.
    n_partitions: int = 4
    increments_per_node: int = 8
    think_time: float = 4e-6
    update_time: float = 0.5e-6
    #: Interface processing time per message (must be > 0 for the root
    #: bottleneck to exist at all).
    interface_service_time: float = 0.5e-6
    params: MachineParams = PAPER_PARAMS
    seed: int = 0


def _counter_body(ctx: SectionContext):
    var = ctx.node.locals["_var"]
    value = ctx.read(var)
    yield from ctx.compute(ctx.node.locals["_update_time"])
    if ctx.aborted:
        return
    ctx.write(var, value + 1)


def run_grouping(config: GroupingConfig, merged: bool) -> dict[str, float]:
    """Run one configuration; returns elapsed time and root load."""
    if config.n_nodes % config.n_partitions != 0:
        raise ExperimentError(
            f"{config.n_partitions} partitions must divide {config.n_nodes} nodes"
        )
    params = replace(
        config.params, interface_service_time=config.interface_service_time
    )
    checker = MutualExclusionChecker()
    machine = DSMMachine(
        n_nodes=config.n_nodes,
        params=params,
        seed=config.seed,
        checker=checker,
    )
    per_group = config.n_nodes // config.n_partitions
    partitions = [
        tuple(range(p * per_group, (p + 1) * per_group))
        for p in range(config.n_partitions)
    ]

    sections = {}
    for p, members in enumerate(partitions):
        var = f"counter_{p}"
        lock = f"lock_{p}"
        if merged:
            group = "global"
            if p == 0:
                machine.create_group(group, root=0)
        else:
            group = f"g{p}"
            machine.create_group(group, members=members, root=members[0])
        machine.declare_variable(group, var, 0, mutex_lock=lock)
        machine.declare_lock(group, lock, protects=(var,))
        sections[p] = Section(
            lock=lock,
            body=_counter_body,
            shared_reads=(var,),
            shared_writes=(var,),
            label=f"grouping-{p}",
        )

    system = make_system("gwc", machine)

    def worker(node: NodeHandle, partition: int):
        node.locals["_var"] = f"counter_{partition}"
        node.locals["_update_time"] = config.update_time
        for _ in range(config.increments_per_node):
            yield from node.busy(config.think_time, kind="useful")
            yield from system.run_section(node, sections[partition])

    for p, members in enumerate(partitions):
        for node_id in members:
            machine.spawn(
                worker(machine.nodes[node_id], p), name=f"w{node_id}"
            )
    elapsed = machine.run()
    machine.sim.check_quiescent()
    checker.verify_no_occupancy()

    for p, members in enumerate(partitions):
        expected = per_group * config.increments_per_node
        holder = machine.nodes[members[0]]
        if holder.store.read(f"counter_{p}") != expected:
            raise ExperimentError(
                f"partition {p}: lost updates "
                f"({holder.store.read(f'counter_{p}')} != {expected})"
            )

    stats = machine.network.stats
    hot_node, hot_load = stats.hottest_receiver()
    return {
        "elapsed": elapsed,
        "messages": float(stats.messages),
        "hottest_node": float(hot_node),
        "hottest_load": float(hot_load),
        "merged": float(merged),
    }


@dataclass(frozen=True, slots=True)
class GroupingRow:
    n_nodes: int
    split_elapsed: float
    merged_elapsed: float

    @property
    def slowdown(self) -> float:
        return self.merged_elapsed / self.split_elapsed


def run_grouping_sweep(
    sizes: tuple[int, ...] = (8, 16, 32),
    partitions_per_size: int = 4,
    config: GroupingConfig = GroupingConfig(),
) -> list[GroupingRow]:
    """Sweep machine sizes; the merged/split gap must widen with size."""
    rows = []
    for n_nodes in sizes:
        sized = replace(
            config, n_nodes=n_nodes, n_partitions=partitions_per_size
        )
        split = run_grouping(sized, merged=False)
        merged = run_grouping(sized, merged=True)
        rows.append(
            GroupingRow(
                n_nodes=n_nodes,
                split_elapsed=split["elapsed"],
                merged_elapsed=merged["elapsed"],
            )
        )
    return rows


def render(rows: list[GroupingRow]) -> str:
    return format_table(
        ["CPUs", "split roots (us)", "global root (us)", "slowdown"],
        [
            [
                row.n_nodes,
                row.split_elapsed * 1e6,
                row.merged_elapsed * 1e6,
                row.slowdown,
            ]
            for row in rows
        ],
        title="Grouping ablation: per-group roots vs one global root",
    )
