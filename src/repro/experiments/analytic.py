"""Closed-form performance model for the Figure 8 pipeline.

The pipeline's steady state is a single token circulating a ring: each
hop's critical path is

    Period_i = A + lock_delay_i + M + token_transit_i

so the network power is ``(A + M + C) / mean_i(Period_i)``.  The pieces
come straight from the machine parameters and the topology:

* ``lock_delay`` — the request/grant round trip between the node and
  the group root; the **optimistic** protocol overlaps it with the
  mutex section, leaving ``max(0, RT - M)`` exposed (§4: "in the best
  case, lock permission will have arrived before the computation
  finishes");
* ``token_transit`` — the eagershared data item's two legs, node → root
  → successor.

Predicting the simulated curves to within a few percent from this
four-term formula is the strongest evidence the simulator measures what
the paper's model says it should.  (Entry consistency is deliberately
not modelled here: its behaviour is dominated by queueing at the
demand-fetch hot-spot, which has no simple closed form — that is
rather the point the paper makes about demand-driven protocols.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.report import format_table
from repro.net.topology import make_topology
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.pipeline import PipelineConfig, run_pipeline


@dataclass(frozen=True, slots=True)
class AnalyticRow:
    """Predicted vs. simulated network power at one machine size."""

    n_nodes: int
    predicted_gwc: float
    simulated_gwc: float
    predicted_optimistic: float
    simulated_optimistic: float

    @property
    def gwc_error(self) -> float:
        return abs(self.predicted_gwc - self.simulated_gwc) / self.simulated_gwc

    @property
    def optimistic_error(self) -> float:
        return (
            abs(self.predicted_optimistic - self.simulated_optimistic)
            / self.simulated_optimistic
        )


def predict_power(
    config: PipelineConfig,
    optimistic: bool,
    params: MachineParams = PAPER_PARAMS,
) -> float:
    """Predict the pipeline's network power from the four-term model."""
    topology = make_topology(config.topology, config.n_nodes)
    a = config.local_time
    m = config.mutex_time
    packet = params.packet_bytes
    token_bytes = packet + config.item_bytes
    root = 0

    periods = []
    for node in range(config.n_nodes):
        succ = (node + 1) % config.n_nodes
        d_node = topology.hops(node, root)
        d_succ = topology.hops(root, succ)
        round_trip = params.wire_time(packet, d_node) + params.wire_time(
            packet, d_node
        )
        if optimistic:
            # The request overlaps the section; only the excess shows.
            # Saving/restoring the (word-sized) rollback set adds its
            # memory cost.
            save = 2 * params.memory_time(8 * 2)
            lock_delay = max(0.0, round_trip - m) + save
        else:
            lock_delay = round_trip
        token_transit = params.wire_time(token_bytes, d_node) + params.wire_time(
            token_bytes, d_succ
        )
        periods.append(a + m + lock_delay + token_transit)

    mean_period = sum(periods) / len(periods)
    return (2 * a + m) / mean_period


def run_analytic_validation(
    sizes: tuple[int, ...] = (2, 4, 8, 16, 32),
    data_size: int = 128,
    params: MachineParams = PAPER_PARAMS,
) -> list[AnalyticRow]:
    """Compare the closed form against full simulations."""
    rows = []
    for n_nodes in sizes:
        config = PipelineConfig(n_nodes=n_nodes, data_size=data_size, params=params)
        sim_gwc = run_pipeline(
            PipelineConfig(system="gwc", n_nodes=n_nodes, data_size=data_size,
                           params=params)
        )
        sim_opt = run_pipeline(
            PipelineConfig(system="gwc_optimistic", n_nodes=n_nodes,
                           data_size=data_size, params=params)
        )
        rows.append(
            AnalyticRow(
                n_nodes=n_nodes,
                predicted_gwc=predict_power(config, optimistic=False, params=params),
                simulated_gwc=sim_gwc.speedup,
                predicted_optimistic=predict_power(
                    config, optimistic=True, params=params
                ),
                simulated_optimistic=sim_opt.speedup,
            )
        )
    return rows


def render(rows: list[AnalyticRow]) -> str:
    return format_table(
        [
            "CPUs",
            "GWC predicted",
            "GWC simulated",
            "err %",
            "opt predicted",
            "opt simulated",
            "err %",
        ],
        [
            [
                row.n_nodes,
                row.predicted_gwc,
                row.simulated_gwc,
                row.gwc_error * 100,
                row.predicted_optimistic,
                row.simulated_optimistic,
                row.optimistic_error * 100,
            ]
            for row in rows
        ],
        title="Analytic model vs. simulation (Figure 8 pipeline)",
    )
