"""Parameter-sensitivity sweeps for the optimistic-locking advantage.

The paper's conclusion: "For very large systems, the disparity between
group write consistency and the other models will be significantly
larger, since network delays will be much longer than local update
times", and §4: "In huge networks, safe preposting of shared changes is
usually the major source of benefit from optimistic locking."

These sweeps quantify both statements on the Figure 8 pipeline: hold
the workload fixed, scale one network cost, and watch the optimistic
protocol's absolute saving grow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.runner import SweepExecutor
from repro.metrics.report import format_table
from repro.params import PAPER_PARAMS, MachineParams
from repro.workloads.pipeline import PipelineConfig, run_pipeline


@dataclass(frozen=True, slots=True)
class SensitivityRow:
    """One network-cost setting's outcome."""

    parameter: str
    value: float
    optimistic_power: float
    gwc_power: float
    entry_power: float

    @property
    def optimistic_gain(self) -> float:
        return self.optimistic_power / self.gwc_power


def run_hop_latency_sweep(
    hops: tuple[float, ...] = (100e-9, 200e-9, 400e-9, 800e-9),
    n_nodes: int = 16,
    data_size: int = 128,
    base: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
) -> list[SensitivityRow]:
    """Scale the per-hop switching latency (the paper's 200 ns)."""
    points = [
        ("hop_latency_ns", hop * 1e9, n_nodes, data_size,
         replace(base, hop_latency=hop))
        for hop in hops
    ]
    return SweepExecutor(jobs).map(_measure_point, points)


def run_bandwidth_sweep(
    gbits: tuple[float, ...] = (4.0, 1.0, 0.25),
    n_nodes: int = 16,
    data_size: int = 128,
    base: MachineParams = PAPER_PARAMS,
    jobs: int | None = None,
) -> list[SensitivityRow]:
    """Scale the link bandwidth (the paper's 1 Gb/s) downward."""
    points = [
        ("link_gbit", gbit, n_nodes, data_size,
         replace(base, link_bandwidth_bits=gbit * 1e9))
        for gbit in gbits
    ]
    return SweepExecutor(jobs).map(_measure_point, points)


def _measure_point(
    point: tuple[str, float, int, int, MachineParams],
) -> SensitivityRow:
    """One network-cost setting (module-level: picklable)."""
    return _measure(*point)


def _measure(
    parameter: str,
    value: float,
    n_nodes: int,
    data_size: int,
    params: MachineParams,
) -> SensitivityRow:
    base = dict(n_nodes=n_nodes, data_size=data_size, params=params)
    optimistic = run_pipeline(PipelineConfig(system="gwc_optimistic", **base))
    gwc = run_pipeline(PipelineConfig(system="gwc", **base))
    entry = run_pipeline(PipelineConfig(system="entry", **base))
    for result in (optimistic, gwc, entry):
        assert result.extra["acc_correct"]
    return SensitivityRow(
        parameter=parameter,
        value=value,
        optimistic_power=optimistic.speedup,
        gwc_power=gwc.speedup,
        entry_power=entry.speedup,
    )


def render(rows: list[SensitivityRow]) -> str:
    return format_table(
        [rows[0].parameter if rows else "value", "optimistic", "non-opt GWC",
         "entry", "opt/non-opt"],
        [
            [row.value, row.optimistic_power, row.gwc_power, row.entry_power,
             row.optimistic_gain]
            for row in rows
        ],
        title="Sensitivity: network power vs. network cost (Fig. 8 pipeline)",
    )
