"""Benchmark: regenerate Figure 8 (mutex methods, network power).

Prints the four series — zero-delay maximum (1.89), optimistic GWC,
non-optimistic GWC, and entry consistency — and asserts the figure's
claims, including the paper's summary ratios (optimistic about 1.1x the
regular GWC lock and about 2x entry consistency at 2 CPUs).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure8
from repro.experiments.common import SCALE_FULL, sweep_scale


def test_bench_figure8(once):
    rows = once(figure8.run_figure8)
    checks = figure8.expectations(rows)
    table = figure8.render(rows)
    summary = "\n".join(str(c) for c in checks)
    scale = sweep_scale()
    emit("figure8", f"(scale: {scale})\n{table}\n\n{figure8.chart(rows)}\n\n{summary}", rows=rows)
    assert all(c.holds for c in checks), summary
    if scale == SCALE_FULL:
        first, last = rows[0], rows[-1]
        # Paper end points: optimistic 1.68 -> 1.15, GWC 1.53 -> 1.03,
        # entry 0.81 -> 0.64.  Bands keep the shape without demanding
        # the authors' exact cost constants.
        assert 1.5 < first.optimistic < 1.8
        assert 1.4 < first.gwc < 1.7
        assert first.entry < 1.0
        assert last.optimistic < first.optimistic
        assert last.gwc < first.gwc
        assert last.optimistic > last.gwc > last.entry
