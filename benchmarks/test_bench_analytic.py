"""Benchmark: analytic model vs. simulation for the Figure 8 pipeline.

The four-term closed form (local compute + mutex + exposed lock delay +
token transit) must predict the simulator's network power within a few
percent at every machine size — validating that the simulation measures
exactly the quantities the paper's protocol analysis reasons about.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.analytic import render, run_analytic_validation


def test_bench_analytic_validation(once):
    rows = once(run_analytic_validation)
    emit("analytic_validation", render(rows), rows=rows)
    for row in rows:
        assert row.gwc_error < 0.03, (row.n_nodes, row.gwc_error)
        assert row.optimistic_error < 0.03, (row.n_nodes, row.optimistic_error)
    # The model also reproduces the optimistic advantage itself.
    for row in rows:
        assert row.predicted_optimistic > row.predicted_gwc
