"""Benchmark: regenerate Figure 2 (task-management speedup vs size).

Prints the three series of the figure — the zero-delay maximum, Sesame
GWC, and entry consistency — and asserts the figure's shape claims.
At ``REPRO_FULL=1`` this runs the paper's sizes (3..129 CPUs, 1024
tasks); by default a reduced sweep.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure2
from repro.experiments.common import SCALE_FULL, sweep_scale


def test_bench_figure2(once):
    rows = once(figure2.run_figure2)
    checks = figure2.expectations(rows)
    table = figure2.render(rows)
    summary = "\n".join(str(c) for c in checks)
    scale = sweep_scale()
    emit("figure2", f"(scale: {scale})\n{table}\n\n{figure2.chart(rows)}\n\n{summary}", rows=rows)
    assert all(c.holds for c in checks), summary
    if scale == SCALE_FULL:
        gwc_peak = max(row.gwc for row in rows)
        entry_peak = max(row.entry for row in rows)
        # Paper: 84.1 vs 22.5 (3.7x).  Shape bound: at least 2x and the
        # entry peak in the paper's ballpark.
        assert gwc_peak / entry_peak > 2.0
        assert 15 < entry_peak < 35
        assert gwc_peak > 45
