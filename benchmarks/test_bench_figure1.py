"""Benchmark: regenerate Figure 1 (the three-CPU locking comparison).

Prints the completion/idle table for GWC, optimistic GWC, entry, and
weak/release consistency, and asserts the figure's ordering claims.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure1


def test_bench_figure1(once):
    rows = once(figure1.run_figure1)
    checks = figure1.expectations(rows)
    table = figure1.render(rows)
    summary = "\n".join(str(c) for c in checks)
    emit("figure1", f"{table}\n\n{summary}", rows=rows)
    assert all(c.holds for c in checks), summary


def test_bench_figure1_longer_sections(once):
    """The ordering must be robust to the critical-section length."""
    rows = once(figure1.run_figure1, 12e-6, 25e-6)
    by_system = {row.system: row.completion_time for row in rows}
    assert by_system["gwc"] < by_system["entry"] < by_system["release"]
    assert by_system["gwc_optimistic"] <= by_system["gwc"] * 1.001
