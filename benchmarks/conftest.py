"""Shared benchmark plumbing.

Benchmarks run each figure's sweep once per benchmark round (simulations
are deterministic; repeating them only measures the host machine), print
the same rows/series the paper's figure reports, and archive the table
under ``benchmarks/results/``.

Set ``REPRO_FULL=1`` to run at the paper's scale (1024 tasks, up to
129 processors); the default quick scale keeps CI fast while preserving
every qualitative claim that can be observed at small sizes.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str, rows=None) -> None:
    """Print a result table and archive it under benchmarks/results/.

    When dataclass ``rows`` are supplied, a machine-readable CSV is
    archived alongside the text table.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if rows:
        from repro.metrics.export import to_csv

        (RESULTS_DIR / f"{name}.csv").write_text(to_csv(rows))


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
