"""Benchmarks: the DESIGN.md ablations.

A1 — optimism-threshold sweep under light and moderate contention;
A2 — the Figure 6 echo-blocking filter on/off;
A3 — lock-protocol shoot-outs (consistency systems and raw primitives).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.ablation import (
    render_shootout,
    render_threshold,
    run_echo_blocking_ablation,
    run_force_modes,
    run_lock_primitive_shootout,
    run_lock_protocol_shootout,
    run_threshold_sweep,
)
from repro.metrics.report import format_table


def test_bench_ablation_threshold(once):
    rows = once(
        run_threshold_sweep,
        thresholds=(0.0, 0.1, 0.3, 0.5, 1.0),
        think_times=(15e-6, 50e-6),
    )
    emit("ablation_threshold", render_threshold(rows))
    # At light contention (50us think) a permissive threshold must not
    # be slower than the fully conservative one.
    light = [row for row in rows if row.think_time == 50e-6]
    by_threshold = {row.threshold: row.elapsed for row in light}
    assert by_threshold[0.3] <= by_threshold[0.0] * 1.02


def test_bench_ablation_echo_blocking(once):
    with_filter, without_filter = once(run_echo_blocking_ablation)
    table = format_table(
        ["echo blocking", "correct", "chain intact", "echoes dropped"],
        [
            [
                "on (Figure 6)",
                with_filter.extra["correct"],
                with_filter.extra["chain_ok"],
                with_filter.extra["echoes_dropped"],
            ],
            [
                "off (ablation)",
                without_filter.extra["correct"],
                without_filter.extra["chain_ok"],
                without_filter.extra["echoes_dropped"],
            ],
        ],
        title="Ablation A2: hardware blocking filter",
    )
    emit("ablation_echo_blocking", table)
    assert with_filter.extra["correct"]
    assert not without_filter.extra["correct"]


def test_bench_lock_systems(once):
    rows = once(run_lock_protocol_shootout)
    emit("ablation_lock_systems", render_shootout(rows))
    assert all(row.correct for row in rows)


def test_bench_lock_primitives(once):
    rows = once(run_lock_primitive_shootout)
    emit("ablation_lock_primitives", render_shootout(rows))
    assert all(row.correct for row in rows)
    by_protocol = {row.system: row for row in rows}
    # The paper's queue-based GWC lock outperforms spinning baselines.
    assert by_protocol["gwc_queue"].elapsed <= by_protocol["tas"].elapsed
    assert by_protocol["ttas"].remote_attempts < by_protocol["tas"].remote_attempts


def test_bench_force_modes(once):
    results = once(run_force_modes)
    table = format_table(
        ["mode", "elapsed (us)", "rollbacks", "successes"],
        [
            [
                mode,
                r.elapsed * 1e6,
                r.counter("opt.rollbacks"),
                r.counter("opt.successes"),
            ]
            for mode, r in results.items()
        ],
        title="Ablation: usage-history value (adaptive vs forced modes)",
    )
    emit("ablation_force_modes", table)
    elapsed = {mode: r.elapsed for mode, r in results.items()}
    best_fixed = min(elapsed["optimistic"], elapsed["regular"])
    assert elapsed["adaptive"] <= best_fixed * 1.25
