"""Benchmark: seed-replicated measurements with confidence intervals.

Randomized workloads (synthetic contention, lossy fabrics) are measured
across seeds; the archived table reports mean ± 95% CI, making the
library's numbers reportable the way a systems paper would.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.replication import replicate_many
from repro.metrics.report import format_table
from repro.workloads.synthetic import SyntheticConfig, run_synthetic


def _one_seed(seed: int) -> dict[str, float]:
    result = run_synthetic(
        SyntheticConfig(
            system="gwc_optimistic", n_nodes=6, sections_per_node=10, seed=seed
        )
    )
    assert result.extra["correct"]
    return {
        "elapsed_us": result.elapsed * 1e6,
        "rollbacks": float(result.counter("opt.rollbacks")),
        "optimistic_successes": float(result.counter("opt.successes")),
        "wasted_us": result.metrics.total_wasted() * 1e6,
    }


def test_bench_replicated_synthetic(once):
    metrics = once(replicate_many, _one_seed, seeds=range(8))
    table = format_table(
        ["metric", "mean", "std", "95% CI low", "95% CI high", "n"],
        [
            [m.name, m.mean, m.std, m.ci_low, m.ci_high, m.n]
            for m in metrics.values()
        ],
        title="Synthetic contention under optimistic locking (8 seeds)",
    )
    emit("replicated_synthetic", table)
    assert metrics["elapsed_us"].std > 0  # genuinely randomized
    # Under this contention level, optimism succeeds at least sometimes
    # in every seed's run.
    assert metrics["optimistic_successes"].ci_low >= 0
