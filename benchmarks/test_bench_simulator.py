"""Micro-benchmarks of the simulation substrate itself.

These are honest pytest-benchmark timing runs (many rounds) of the
hottest kernels: event scheduling, process context switching, network
delivery, and the end-to-end event rate of a busy GWC machine.  They
exist so performance regressions in the substrate are visible without
re-running the full figure sweeps.
"""

from __future__ import annotations

from repro.core.machine import DSMMachine
from repro.sim.kernel import Simulator
from repro.workloads.counter import CounterConfig, run_counter


def test_bench_event_scheduling(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        for i in range(2000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.now

    result = benchmark(schedule_and_drain)
    assert result > 0


def test_bench_process_switching(benchmark):
    def ping_pong():
        sim = Simulator()

        def proc():
            for _ in range(500):
                yield 1e-6

        for i in range(4):
            sim.spawn(proc(), name=f"p{i}")
        sim.run()
        return sim.now

    benchmark(ping_pong)


def test_bench_eagersharing_throughput(benchmark):
    def shared_writes():
        machine = DSMMachine(n_nodes=9)
        machine.create_group("g")
        machine.declare_variable("g", "x", 0)

        def writer(node):
            for i in range(100):
                node.iface.share_write("x", i)
                yield 0.5e-6

        for node in machine.nodes:
            machine.spawn(writer(node), name=f"w{node.id}")
        machine.run()
        return machine.network.stats.messages

    messages = benchmark(shared_writes)
    assert messages > 0


def test_bench_counter_kernel(benchmark):
    def run():
        return run_counter(
            CounterConfig(system="gwc_optimistic", n_nodes=5, increments_per_node=5)
        )

    result = benchmark(run)
    assert result.extra["correct"]
