"""Benchmark: sensitivity of the optimistic advantage to network costs.

Quantifies the paper's conclusion that the GWC/optimistic advantage
grows as network delays grow relative to local update times.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.sensitivity import (
    render,
    run_bandwidth_sweep,
    run_hop_latency_sweep,
)


def test_bench_hop_latency_sensitivity(once):
    rows = once(run_hop_latency_sweep)
    emit("sensitivity_hop_latency", render(rows))
    # The optimistic-over-regular ratio grows with per-hop latency while
    # the lock round trip still fits under the mutex section, then
    # saturates: speculation can hide at most the section's own length
    # (the paper sizes M so the round trip "can initially be
    # overlapped").
    gains = [row.optimistic_gain for row in rows]
    assert gains[1] > gains[0], gains
    assert max(gains) >= gains[0]
    # And optimistic stays on top throughout.
    assert all(row.optimistic_power > row.gwc_power > row.entry_power
               for row in rows)


def test_bench_bandwidth_sensitivity(once):
    rows = once(run_bandwidth_sweep)
    emit("sensitivity_bandwidth", render(rows))
    assert all(row.optimistic_power > row.gwc_power for row in rows)
    # Scarcer bandwidth hurts everyone; ordering is preserved.
    powers = [row.optimistic_power for row in rows]
    assert powers == sorted(powers, reverse=True)