"""Kernel + sweep performance snapshot -> ``BENCH_kernel.json``.

Unlike the pytest-benchmark suites next door, this module produces a
single machine-readable snapshot of the numbers the performance work
targets:

* raw event-loop throughput (events/second),
* network delivery throughput (messages/second), point-to-point and
  packet-train batched (the train figure must be at least 1.5x the
  unbatched one — that is the headline of the batching work),
* quick-scale Figure 2 + Figure 8 sweep wall-clock, serial and with
  ``jobs=4`` workers,
* deterministic write-burst ablation rows (wire messages at burst
  1 / 8 / unbounded — simulation counts, not timings),
* sharded-kernel rows, one per execution backend (``inproc`` and
  ``process``), each with wall time, ``speedup_vs_serial`` /
  ``overhead_vs_serial``, rollback behaviour, and the serial-parity bit,
* the speedup over the pre-optimization seed baseline,
* a host fingerprint (CPU model + core count) so snapshots from
  different machines are never diffed against each other by accident.

Run ``make bench-json`` to (re)generate ``BENCH_kernel.json`` at the
repo root, and ``make perf-smoke`` to fail the build if the quick
Figure 8 sweep has regressed more than 25% against the recorded
snapshot.  Timings are warm best-of-N ``perf_counter`` measurements, so
the snapshot is stable enough to diff across commits on one host.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernel.json"

#: Quick-scale Figure 2 + Figure 8 combined wall-clock of the seed tree
#: (commit b98eba4, before the kernel fast path), measured with the same
#: warm best-of-3 protocol on the reference 1-CPU CI host.  Absolute
#: seconds are host-specific; the recorded speedups are the ratio of two
#: measurements taken back-to-back on that host.
SEED_COMBINED_SERIAL_S = 1.373

#: How hard perf-smoke clamps down: fail when quick Figure 8 takes more
#: than ``1 + PERF_SMOKE_TOLERANCE`` times the recorded snapshot.
PERF_SMOKE_TOLERANCE = 0.25


def _best_of(fn, rounds: int = 3) -> float:
    """Warm best-of-``rounds`` wall-clock of ``fn()`` in seconds."""
    fn()  # warm caches, imports, and allocator pools
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_events_per_sec(total_events: int = 200_000) -> float:
    """Raw event-loop throughput: self-rescheduling no-arg callbacks."""
    from repro.sim.kernel import Simulator

    def drain() -> None:
        sim = Simulator()
        remaining = [total_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_fn(1e-6, tick)

        sim.schedule_fn(0.0, tick)
        sim.run()

    return total_events / _best_of(drain)


def measure_messages_per_sec(
    n_nodes: int = 8, total_messages: int = 100_000
) -> float:
    """Network delivery throughput on a mesh with real routing costs."""
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.net.topology import make_topology
    from repro.params import PAPER_PARAMS
    from repro.sim.kernel import Simulator

    def drain() -> None:
        sim = Simulator()
        net = Network(sim, make_topology("mesh_torus", n_nodes), PAPER_PARAMS)
        for node in range(n_nodes):
            net.attach(node, lambda msg: None)
        sent = [0]

        def pump() -> None:
            src = sent[0] % n_nodes
            net.send(Message(src=src, dst=(src + 1) % n_nodes, kind="bench.msg"))
            sent[0] += 1
            if sent[0] < total_messages:
                sim.schedule_fn(0.0, pump)

        sim.schedule_fn(0.0, pump)
        sim.run()

    return total_messages / _best_of(drain)


def measure_messages_per_sec_batched(
    n_nodes: int = 8, train_len: int = 16, total_messages: int = 100_000
) -> float:
    """Fanout delivery throughput with packet trains.

    The root repeatedly ships a ``train_len``-packet train to every
    other node — the shape of a sequenced write burst leaving a group
    root.  Each (member, train) pair costs one heap event instead of
    ``train_len``, which is where the batched figure's advantage over
    :func:`measure_messages_per_sec` comes from; the logical message
    count (and every ChannelStats counter) is identical to per-message
    sends.
    """
    from repro.net.network import Network
    from repro.net.topology import make_topology
    from repro.params import DEFAULT_PACKET_BYTES, PAPER_PARAMS
    from repro.sim.kernel import Simulator

    targets = tuple(range(1, n_nodes))
    rounds = max(1, total_messages // (train_len * len(targets)))
    delivered = rounds * train_len * len(targets)
    payloads = [None] * train_len
    sizes = [DEFAULT_PACKET_BYTES] * train_len

    def drain() -> None:
        sim = Simulator()
        net = Network(sim, make_topology("mesh_torus", n_nodes), PAPER_PARAMS)
        for node in range(n_nodes):
            net.attach(node, lambda msg: None)
        sent = [0]

        def pump() -> None:
            net.send_fanout_train(0, targets, "bench.train", payloads, sizes)
            sent[0] += 1
            if sent[0] < rounds:
                sim.schedule_fn(0.0, pump)

        sim.schedule_fn(0.0, pump)
        sim.run()

    return delivered / _best_of(drain)


def measure_burst_ablation() -> list[dict]:
    """Deterministic wire-message counts at burst 1 / 8 / unbounded.

    These are simulation counters, not wall-clock timings, so the rows
    are bit-stable across hosts — they document what the write-burst
    knob buys on the producer workload.
    """
    from repro.experiments.burst import run_burst_sweep

    rows = run_burst_sweep(sizes=(1, 8, 0), n_nodes=8, rounds=4, writes_per_round=16)
    return [
        {
            "burst": "unbounded" if row.burst == 0 else row.burst,
            "origin_messages": row.origin_messages,
            "total_messages": row.total_messages,
            "total_bytes": row.total_bytes,
            "reduction": row.reduction,
        }
        for row in rows
    ]


def measure_sharded_kernel() -> dict:
    """Sharded-kernel rows: per-backend wall time, rollbacks, parity.

    Runs the quick Figure 2 task queue serial, then under the 4-shard
    optimistic kernel once per execution backend (``inproc`` cooperative
    loops, ``process`` forked workers).  Each backend row carries its
    own ``speedup_vs_serial`` *and* the honest inverse
    ``overhead_vs_serial`` — on a single-CPU host the process backend
    pays fork + IPC on top of the replay cost and will not beat serial;
    the numbers say so instead of hiding it.  ``parity`` is the bit the
    whole design hangs on: every backend's state hash must equal the
    serial one.  ``effective`` records the backend that actually ran
    (``process`` falls back to ``inproc`` on hosts without fork).

    ``events_per_sec_serial`` divides the sharded kernel's executed
    delivery count by the *serial* wall time — the throughput the plain
    event loop achieves on the same logical delivery stream, which is
    the denominator every ``speedup_vs_serial`` figure implies.
    """
    from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

    base = dict(system="gwc", n_nodes=9, total_tasks=64)
    serial = run_task_queue(TaskQueueConfig(**base))
    serial_s = _best_of(lambda: run_task_queue(TaskQueueConfig(**base)))
    backends = []
    executed = 0
    for backend in ("inproc", "process"):
        latest: dict = {}

        def sharded() -> None:
            latest["result"] = run_task_queue(
                TaskQueueConfig(
                    **base,
                    shards=4,
                    shard_policy="optimistic",
                    shard_backend=backend,
                )
            )

        wall_s = _best_of(sharded)
        result = latest["result"]
        stats = result.extra["shard_stats"]
        executed = executed or stats["executed"]
        backends.append(
            {
                "backend": backend,
                "effective": result.extra["shard_backend"],
                "wall_s": round(wall_s, 4),
                "events_per_sec": round(stats["executed"] / wall_s),
                "rollbacks": stats["rollbacks"],
                "rollback_ratio": round(stats["rollback_ratio"], 4),
                "speedup_vs_serial": round(serial_s / wall_s, 2),
                "overhead_vs_serial": round(wall_s / serial_s, 2),
                "parity": result.extra["state_hash"]
                == serial.extra["state_hash"],
            }
        )
    return {
        "workload": "figure2 task queue (gwc, n=9, 64 tasks), 4 shards, optimistic",
        "serial_wall_s": round(serial_s, 4),
        "events_per_sec_serial": round(executed / serial_s),
        "backends": backends,
    }


def _cpu_model() -> str:
    """Best-effort CPU model string for the host fingerprint."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _quick_figure2() -> None:
    from repro.experiments.figure2 import run_figure2

    run_figure2()


def _quick_figure8() -> None:
    from repro.experiments.figure8 import run_figure8

    run_figure8()


def _quick_combined(jobs: int | None = None) -> None:
    from repro.experiments.figure2 import run_figure2
    from repro.experiments.figure8 import run_figure8

    run_figure2(jobs=jobs)
    run_figure8(jobs=jobs)


def collect_snapshot() -> dict:
    """Measure everything and return the BENCH_kernel.json payload."""
    events_per_sec = measure_events_per_sec()
    messages_per_sec = measure_messages_per_sec()
    messages_per_sec_batched = measure_messages_per_sec_batched()
    burst_ablation = measure_burst_ablation()
    sharded = measure_sharded_kernel()
    figure2_s = _best_of(_quick_figure2)
    figure8_s = _best_of(_quick_figure8)
    combined_serial_s = _best_of(_quick_combined)
    combined_jobs4_s = _best_of(lambda: _quick_combined(jobs=4))
    combined_best_s = min(combined_serial_s, combined_jobs4_s)
    return {
        "schema": 4,
        "generated_by": "benchmarks/test_perf_kernel.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "host": {
            "cpu_model": _cpu_model(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "kernel": {
            "events_per_sec": round(events_per_sec),
            "messages_per_sec": round(messages_per_sec),
            "messages_per_sec_batched": round(messages_per_sec_batched),
            "batched_speedup": round(messages_per_sec_batched / messages_per_sec, 2),
        },
        "burst_ablation": burst_ablation,
        "sharded": sharded,
        "sweeps": {
            "figure2_quick_s": round(figure2_s, 4),
            "figure8_quick_s": round(figure8_s, 4),
            "combined_serial_s": round(combined_serial_s, 4),
            "combined_jobs4_s": round(combined_jobs4_s, 4),
        },
        "baseline": {
            "seed_combined_serial_s": SEED_COMBINED_SERIAL_S,
            "note": (
                "seed baseline measured from the pre-optimization tree "
                "(commit b98eba4) with the same warm best-of-3 protocol "
                "on the reference host; speedups divide it by this "
                "host's measurements and are only comparable when both "
                "ran on similar hardware"
            ),
            "speedup_serial": round(SEED_COMBINED_SERIAL_S / combined_serial_s, 2),
            "speedup_combined": round(SEED_COMBINED_SERIAL_S / combined_best_s, 2),
        },
    }


def write_snapshot() -> dict:
    """Measure and atomically (re)write ``BENCH_kernel.json``.

    The write goes through the crash-safe goldens writer, so a snapshot
    on disk is always complete — never a truncated JSON a reader (or
    the ``bench_kernel`` golden surface, which hashes this file minus
    its volatile host/timing fields) could half-parse.
    """
    from repro.goldens.writer import atomic_write_text

    snapshot = collect_snapshot()
    atomic_write_text(BENCH_JSON, json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def perf_smoke() -> int:
    """Fail (non-zero) if quick Figure 8 regressed >25% vs the snapshot.

    Returns a process exit code so the Makefile target can gate CI.
    """
    if not BENCH_JSON.exists():
        print(f"perf-smoke: no {BENCH_JSON.name}; run 'make bench-json' first")
        return 2
    recorded = json.loads(BENCH_JSON.read_text())["sweeps"]["figure8_quick_s"]
    # Best-of-5 (vs the snapshot's best-of-3) so a transient load spike
    # on a shared host doesn't fail the gate.
    measured = _best_of(_quick_figure8, rounds=5)
    limit = recorded * (1.0 + PERF_SMOKE_TOLERANCE)
    verdict = "OK" if measured <= limit else "REGRESSION"
    print(
        f"perf-smoke: quick figure8 {measured:.3f}s vs recorded "
        f"{recorded:.3f}s (limit {limit:.3f}s) -> {verdict}"
    )
    return 0 if measured <= limit else 1


# ----------------------------------------------------------------------
# pytest entry points (plain tests; skipped by `pytest --benchmark-only`)
# ----------------------------------------------------------------------


def test_perf_snapshot_writes_bench_json():
    """Regenerate BENCH_kernel.json and sanity-check its contents."""
    snapshot = write_snapshot()
    assert snapshot["schema"] == 4
    assert snapshot["kernel"]["events_per_sec"] > 10_000
    assert snapshot["kernel"]["messages_per_sec"] > 10_000
    # The batching headline: train delivery must beat point-to-point
    # delivery by at least 1.5x on the same host.
    assert (
        snapshot["kernel"]["messages_per_sec_batched"]
        >= 1.5 * snapshot["kernel"]["messages_per_sec"]
    )
    # The ablation rows are simulation counts: burst sizes 1, 8, and
    # unbounded, with origin->root traffic strictly shrinking.
    ablation = snapshot["burst_ablation"]
    assert [row["burst"] for row in ablation] == [1, 8, "unbounded"]
    origins = [row["origin_messages"] for row in ablation]
    assert origins[0] > origins[1] > origins[2]
    # Schema-4 sharded rows: one row per backend, each with its own
    # wall time, speedup, and the non-negotiable parity bit.
    sharded = snapshot["sharded"]
    assert sharded["serial_wall_s"] > 0
    assert sharded["events_per_sec_serial"] > 1_000
    assert [row["backend"] for row in sharded["backends"]] == [
        "inproc",
        "process",
    ]
    for row in sharded["backends"]:
        assert row["parity"] is True
        assert row["effective"] in ("inproc", "process")
        assert row["events_per_sec"] > 100
        assert row["rollbacks"] >= 0
        assert 0.0 <= row["rollback_ratio"]
        assert row["speedup_vs_serial"] > 0
        assert row["overhead_vs_serial"] > 0
    assert snapshot["host"]["cpu_model"]
    assert snapshot["sweeps"]["combined_serial_s"] > 0
    assert BENCH_JSON.exists()
    print()
    print(json.dumps(snapshot, indent=2))


def shard_backend_gate(snapshot: dict) -> None:
    """Soft wall-clock gate on the process backend — prints, never fails.

    On a multi-core host the forked workers should keep the quick-scale
    sharded run within 2x of serial; on a 1-CPU host (like the reference
    CI box) fork + IPC + replay cannot win and the gate prints MISS.
    Informational either way: the hard guarantees (parity, tier-1
    tests) live elsewhere.
    """
    sharded = snapshot["sharded"]
    row = next(
        (r for r in sharded["backends"] if r["backend"] == "process"), None
    )
    if row is None:
        return
    limit = 2.0 * sharded["serial_wall_s"]
    verdict = "HIT" if row["wall_s"] <= limit else "MISS"
    print(
        f"shard-backend gate (soft): process backend {row['wall_s']:.3f}s "
        f"vs 2x serial {limit:.3f}s on {os.cpu_count()} CPU(s) "
        f"(effective={row['effective']}) -> {verdict}"
    )


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return perf_smoke()
    snapshot = write_snapshot()
    print(json.dumps(snapshot, indent=2))
    shard_backend_gate(snapshot)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
