"""Kernel + sweep performance snapshot -> ``BENCH_kernel.json``.

Unlike the pytest-benchmark suites next door, this module produces a
single machine-readable snapshot of the numbers the performance work
targets:

* raw event-loop throughput (events/second),
* network delivery throughput (messages/second),
* quick-scale Figure 2 + Figure 8 sweep wall-clock, serial and with
  ``jobs=4`` workers,
* the speedup over the pre-optimization seed baseline.

Run ``make bench-json`` to (re)generate ``BENCH_kernel.json`` at the
repo root, and ``make perf-smoke`` to fail the build if the quick
Figure 8 sweep has regressed more than 25% against the recorded
snapshot.  Timings are warm best-of-N ``perf_counter`` measurements, so
the snapshot is stable enough to diff across commits on one host.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernel.json"

#: Quick-scale Figure 2 + Figure 8 combined wall-clock of the seed tree
#: (commit b98eba4, before the kernel fast path), measured with the same
#: warm best-of-3 protocol on the reference 1-CPU CI host.  Absolute
#: seconds are host-specific; the recorded speedups are the ratio of two
#: measurements taken back-to-back on that host.
SEED_COMBINED_SERIAL_S = 1.373

#: How hard perf-smoke clamps down: fail when quick Figure 8 takes more
#: than ``1 + PERF_SMOKE_TOLERANCE`` times the recorded snapshot.
PERF_SMOKE_TOLERANCE = 0.25


def _best_of(fn, rounds: int = 3) -> float:
    """Warm best-of-``rounds`` wall-clock of ``fn()`` in seconds."""
    fn()  # warm caches, imports, and allocator pools
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_events_per_sec(total_events: int = 200_000) -> float:
    """Raw event-loop throughput: self-rescheduling no-arg callbacks."""
    from repro.sim.kernel import Simulator

    def drain() -> None:
        sim = Simulator()
        remaining = [total_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_fn(1e-6, tick)

        sim.schedule_fn(0.0, tick)
        sim.run()

    return total_events / _best_of(drain)


def measure_messages_per_sec(
    n_nodes: int = 8, total_messages: int = 100_000
) -> float:
    """Network delivery throughput on a mesh with real routing costs."""
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.net.topology import make_topology
    from repro.params import PAPER_PARAMS
    from repro.sim.kernel import Simulator

    def drain() -> None:
        sim = Simulator()
        net = Network(sim, make_topology("mesh_torus", n_nodes), PAPER_PARAMS)
        for node in range(n_nodes):
            net.attach(node, lambda msg: None)
        sent = [0]

        def pump() -> None:
            src = sent[0] % n_nodes
            net.send(Message(src=src, dst=(src + 1) % n_nodes, kind="bench.msg"))
            sent[0] += 1
            if sent[0] < total_messages:
                sim.schedule_fn(0.0, pump)

        sim.schedule_fn(0.0, pump)
        sim.run()

    return total_messages / _best_of(drain)


def _quick_figure2() -> None:
    from repro.experiments.figure2 import run_figure2

    run_figure2()


def _quick_figure8() -> None:
    from repro.experiments.figure8 import run_figure8

    run_figure8()


def _quick_combined(jobs: int | None = None) -> None:
    from repro.experiments.figure2 import run_figure2
    from repro.experiments.figure8 import run_figure8

    run_figure2(jobs=jobs)
    run_figure8(jobs=jobs)


def collect_snapshot() -> dict:
    """Measure everything and return the BENCH_kernel.json payload."""
    events_per_sec = measure_events_per_sec()
    messages_per_sec = measure_messages_per_sec()
    figure2_s = _best_of(_quick_figure2)
    figure8_s = _best_of(_quick_figure8)
    combined_serial_s = _best_of(_quick_combined)
    combined_jobs4_s = _best_of(lambda: _quick_combined(jobs=4))
    combined_best_s = min(combined_serial_s, combined_jobs4_s)
    return {
        "schema": 1,
        "generated_by": "benchmarks/test_perf_kernel.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "kernel": {
            "events_per_sec": round(events_per_sec),
            "messages_per_sec": round(messages_per_sec),
        },
        "sweeps": {
            "figure2_quick_s": round(figure2_s, 4),
            "figure8_quick_s": round(figure8_s, 4),
            "combined_serial_s": round(combined_serial_s, 4),
            "combined_jobs4_s": round(combined_jobs4_s, 4),
        },
        "baseline": {
            "seed_combined_serial_s": SEED_COMBINED_SERIAL_S,
            "note": (
                "seed baseline measured from the pre-optimization tree "
                "(commit b98eba4) with the same warm best-of-3 protocol "
                "on the reference host; speedups divide it by this "
                "host's measurements and are only comparable when both "
                "ran on similar hardware"
            ),
            "speedup_serial": round(SEED_COMBINED_SERIAL_S / combined_serial_s, 2),
            "speedup_combined": round(SEED_COMBINED_SERIAL_S / combined_best_s, 2),
        },
    }


def write_snapshot() -> dict:
    snapshot = collect_snapshot()
    BENCH_JSON.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def perf_smoke() -> int:
    """Fail (non-zero) if quick Figure 8 regressed >25% vs the snapshot.

    Returns a process exit code so the Makefile target can gate CI.
    """
    if not BENCH_JSON.exists():
        print(f"perf-smoke: no {BENCH_JSON.name}; run 'make bench-json' first")
        return 2
    recorded = json.loads(BENCH_JSON.read_text())["sweeps"]["figure8_quick_s"]
    # Best-of-5 (vs the snapshot's best-of-3) so a transient load spike
    # on a shared host doesn't fail the gate.
    measured = _best_of(_quick_figure8, rounds=5)
    limit = recorded * (1.0 + PERF_SMOKE_TOLERANCE)
    verdict = "OK" if measured <= limit else "REGRESSION"
    print(
        f"perf-smoke: quick figure8 {measured:.3f}s vs recorded "
        f"{recorded:.3f}s (limit {limit:.3f}s) -> {verdict}"
    )
    return 0 if measured <= limit else 1


# ----------------------------------------------------------------------
# pytest entry points (plain tests; skipped by `pytest --benchmark-only`)
# ----------------------------------------------------------------------


def test_perf_snapshot_writes_bench_json():
    """Regenerate BENCH_kernel.json and sanity-check its contents."""
    snapshot = write_snapshot()
    assert snapshot["kernel"]["events_per_sec"] > 10_000
    assert snapshot["kernel"]["messages_per_sec"] > 10_000
    assert snapshot["sweeps"]["combined_serial_s"] > 0
    assert BENCH_JSON.exists()
    print()
    print(json.dumps(snapshot, indent=2))


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return perf_smoke()
    snapshot = write_snapshot()
    print(json.dumps(snapshot, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
