"""Benchmark: the grouping ablation (per-group roots vs one global root).

Demonstrates the paper's Section 1.2 scaling warning: "combining
overlapping groups into one global group can prevent scaling in large
networks by overloading the global root and greatly reducing
performance" — the same reason a TSO-style centralized write arbitrator
"is not viable for large distributed memories".
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.grouping import render, run_grouping_sweep


def test_bench_grouping(once):
    rows = once(run_grouping_sweep)
    emit("grouping", render(rows))
    for row in rows:
        assert row.slowdown > 1.5, (
            f"global root not slower at {row.n_nodes} nodes: {row.slowdown}"
        )
    # The largest machine suffers the most total root load.
    assert rows[-1].merged_elapsed > rows[0].merged_elapsed
