# Convenience targets for the reproduction.

PY ?= python

.PHONY: install test chaos-smoke failover-smoke campaign-smoke shard-smoke sharded-root-smoke goldens verify-goldens bench bench-full bench-json perf-smoke profile examples figures all clean

install:
	$(PY) setup.py develop

test:
	PYTHONPATH=src $(PY) -m pytest tests/
	PYTHONPATH=src $(PY) -m repro chaos --smoke
	PYTHONPATH=src $(PY) -m repro chaos --scenario crash_root --seeds 3
	PYTHONPATH=src $(PY) -m repro campaign --smoke
	PYTHONPATH=src $(PY) -m repro sharded-root-smoke

# Deterministic fault-injection mini-matrix (< 30 s); part of `make test`.
chaos-smoke:
	PYTHONPATH=src $(PY) -m repro chaos --smoke

# Seeded root-kill matrix (GWC family x 3 seeds, byte-identical per
# seed); part of `make test`.  Kills each group root mid-critical-
# section and requires election + reconstruction to converge.
failover-smoke:
	PYTHONPATH=src $(PY) -m repro chaos --scenario crash_root --seeds 3

# Randomized fault-campaign smoke: seeded generated plans across the
# chaos profiles, live-checked by the invariant oracles (< 10 s);
# part of `make test`.
campaign-smoke:
	PYTHONPATH=src $(PY) -m repro campaign --smoke

# Shard-parity smoke: quick figure2/figure8 points under the sharded
# kernel (both sync policies) must hash bit-identical to serial runs.
shard-smoke:
	PYTHONPATH=src $(PY) -m repro shard-smoke
	PYTHONPATH=src $(PY) -m repro shard-smoke --shards 4

# Sharded-root parity smoke: serial vs root-sharded state hashes across
# partition counts, relay fanouts, and an online re-partition, on two
# (seed, topology) triples; part of `make test`.
sharded-root-smoke:
	PYTHONPATH=src $(PY) -m repro sharded-root-smoke

# Continuous-verify drift gate: regenerate every golden surface and
# compare bit-for-bit against the committed goldens/ tree.  Exit 0
# clean, 1 drift (with per-file / per-field report), 2 usage.
verify-goldens:
	PYTHONPATH=src $(PY) -m repro verify-goldens

# Rewrite the committed goldens after a reviewed semantic change.  The
# REPRO_REGEN_GOLDENS=1 kill-switch is mandatory; without it the target
# refuses (exit 2).  Commit the printed diff summary with the PR.
goldens:
	REPRO_REGEN_GOLDENS=1 PYTHONPATH=src $(PY) -m repro update-goldens

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PY) -m pytest benchmarks/ --benchmark-only -s

# Machine-readable perf snapshot (events/sec, messages/sec, quick sweep
# wall-clock, speedup vs the seed baseline) -> BENCH_kernel.json.
bench-json:
	PYTHONPATH=src $(PY) benchmarks/test_perf_kernel.py

# Fail if the quick Figure 8 sweep regressed >25% vs BENCH_kernel.json.
perf-smoke:
	PYTHONPATH=src $(PY) benchmarks/test_perf_kernel.py --smoke

# cProfile the quick Figure 2 + Figure 8 sweeps and print the top 20
# hot spots by cumulative time (see docs/REPRODUCING.md, Performance).
profile:
	PYTHONPATH=src $(PY) -c "\
	import cProfile, pstats; \
	from repro.experiments.figure2 import run_figure2; \
	from repro.experiments.figure8 import run_figure8; \
	p = cProfile.Profile(); \
	p.enable(); run_figure2(); run_figure8(); p.disable(); \
	pstats.Stats(p).sort_stats('cumulative').print_stats(20)"

examples:
	for script in examples/*.py; do echo "== $$script"; $(PY) $$script; done

figures:
	$(PY) -m repro figure1
	$(PY) -m repro figure2 --chart
	$(PY) -m repro figure8 --chart
	$(PY) -m repro figure7
	$(PY) -m repro grouping

all: test bench

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
