# Convenience targets for the reproduction.

PY ?= python

.PHONY: install test bench bench-full examples figures all clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PY) -m pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; $(PY) $$script; done

figures:
	$(PY) -m repro figure1
	$(PY) -m repro figure2 --chart
	$(PY) -m repro figure8 --chart
	$(PY) -m repro figure7
	$(PY) -m repro grouping

all: test bench

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
