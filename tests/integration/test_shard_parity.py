"""Sharded-kernel parity: bit-identical final state vs serial runs.

The sharded Time Warp kernel (:mod:`repro.sim.shards`) is only allowed
to exist because it changes *nothing* observable: every test here runs
the same workload serially and sharded and compares canonical state
hashes (:mod:`repro.sim.statehash`), across shard counts, both sync
policies, multiple topologies and seeds, and under deterministic fault
plans — including a node crash landing mid-optimism-window.
"""

from __future__ import annotations

import pytest

from repro.core.section import Section
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, crash, delay
from repro.workloads import counter as counter_wl
from repro.workloads.base import build_machine, finish, run_sharded
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

POLICIES = ("optimistic", "conservative")


def _tq(shards: int = 1, policy: str = "optimistic", **overrides):
    config = TaskQueueConfig(
        n_nodes=overrides.pop("n_nodes", 5),
        total_tasks=overrides.pop("total_tasks", 24),
        shards=shards,
        shard_policy=policy,
        **overrides,
    )
    return run_task_queue(config)


def _pipe(shards: int = 1, policy: str = "optimistic", **overrides):
    config = PipelineConfig(
        n_nodes=overrides.pop("n_nodes", 4),
        data_size=overrides.pop("data_size", 32),
        shards=shards,
        shard_policy=policy,
        **overrides,
    )
    return run_pipeline(config)


def _assert_parity(serial, sharded, shards: int):
    __tracebackhide__ = True
    assert sharded.extra["state_hash"] == serial.extra["state_hash"]
    assert sharded.extra["shards"] == shards
    assert sharded.elapsed == serial.elapsed
    assert sharded.speedup == pytest.approx(serial.speedup)


class TestTaskQueueParity:
    @pytest.mark.parametrize("n_nodes", [3, 5])
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_mesh(self, n_nodes, shards, policy):
        serial = _tq(n_nodes=n_nodes)
        sharded = _tq(shards=shards, policy=policy, n_nodes=n_nodes)
        _assert_parity(serial, sharded, min(shards, n_nodes))
        assert sharded.extra["all_executed"]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_ring(self, policy):
        serial = _tq(n_nodes=5, topology="ring")
        sharded = _tq(shards=2, policy=policy, n_nodes=5, topology="ring")
        _assert_parity(serial, sharded, 2)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_seeds(self, seed):
        serial = _tq(n_nodes=5, seed=seed)
        sharded = _tq(shards=2, policy="optimistic", n_nodes=5, seed=seed)
        _assert_parity(serial, sharded, 2)


class TestPipelineParity:
    @pytest.mark.parametrize("system", ["gwc", "gwc_optimistic"])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_four_nodes_two_shards(self, system, policy):
        serial = _pipe(system=system)
        sharded = _pipe(shards=2, policy=policy, system=system)
        _assert_parity(serial, sharded, 2)
        assert sharded.extra["acc_correct"]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_eight_nodes_four_shards(self, policy):
        serial = _pipe(n_nodes=8, data_size=64, system="gwc_optimistic")
        sharded = _pipe(
            shards=4,
            policy=policy,
            n_nodes=8,
            data_size=64,
            system="gwc_optimistic",
        )
        _assert_parity(serial, sharded, 4)


class TestRollbackBehaviour:
    def test_optimistic_task_queue_actually_rolls_back(self):
        # The contended task queue must exercise the Time Warp path —
        # a run with zero stragglers would make the parity tests above
        # vacuous for the rollback machinery.
        sharded = _tq(shards=2, policy="optimistic", n_nodes=5)
        stats = sharded.extra["shard_stats"]
        assert stats["stragglers"] > 0
        assert stats["rollbacks"] > 0
        assert stats["replayed"] > 0
        assert stats["routed"] > 0
        assert stats["rollback_ratio"] > 0.0

    def test_conservative_never_rolls_back(self):
        sharded = _tq(shards=2, policy="conservative", n_nodes=5)
        stats = sharded.extra["shard_stats"]
        assert stats["stragglers"] == 0
        assert stats["rollbacks"] == 0
        assert stats["annihilated"] == 0


class TestFaultPlanParity:
    DELAY_PLAN = FaultPlan(
        [delay(200e-6, extra=40e-6, until=2000e-6, probability=1.0)], seed=3
    )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_deterministic_delay_plan(self, policy):
        # probability=1.0 with zero jitter draws no randomness, so the
        # same plan installed on every replica replays bit-identically.
        serial = _tq(n_nodes=5, fault_plan=self.DELAY_PLAN)
        sharded = _tq(
            shards=2, policy=policy, n_nodes=5, fault_plan=self.DELAY_PLAN
        )
        _assert_parity(serial, sharded, 2)


class TestCrashMidOptimismWindow:
    """A node crash landing inside the optimism window.

    The task queue cannot survive losing a consumer (its claimed task is
    never reported and the producer waits forever), so this uses the
    shared-counter kernel with the crashed node's process tracked by the
    injector: the crash kills the generator, the survivors keep
    incrementing, and the run quiesces with a deterministic, reduced
    final count — which the sharded run must reproduce exactly even
    though the crash fires while shards are speculating past GVT.
    """

    N_NODES = 6
    PLAN = FaultPlan([crash(35e-6, node=4)], seed=2)
    CONFIG = counter_wl.CounterConfig(n_nodes=N_NODES, increments_per_node=6)
    SECTION = Section(
        lock=counter_wl.LOCK,
        body=counter_wl._increment_body,
        shared_reads=(counter_wl.COUNTER,),
        shared_writes=(counter_wl.COUNTER,),
        label="counter-increment",
    )

    @classmethod
    def _build(cls, owned):
        machine, system = build_machine("gwc", cls.N_NODES, seed=0)
        machine.shard_owned = owned
        injector = FaultInjector(machine, cls.PLAN)
        injector.install()
        machine.create_group(counter_wl.GROUP)
        machine.declare_variable(
            counter_wl.GROUP, counter_wl.COUNTER, 0, mutex_lock=counter_wl.LOCK
        )
        machine.declare_lock(
            counter_wl.GROUP,
            counter_wl.LOCK,
            protects=(counter_wl.COUNTER,),
            data_bytes=8,
        )
        for node in machine.nodes:
            node.locals["_update_time"] = cls.CONFIG.update_time
            process = machine.spawn_for(
                node.id,
                counter_wl._worker(node, system, cls.CONFIG, cls.SECTION),
                name=f"counter-{node.id}",
            )
            if process is not None:
                injector.track_process(node.id, process)
        return machine, system

    def _serial(self):
        machine, system = self._build(None)
        result = finish(machine, system)
        result.extra["final"] = machine.nodes[0].store.read(counter_wl.COUNTER)
        return result

    @pytest.mark.parametrize("policy", POLICIES)
    def test_crash_parity(self, policy):
        serial = self._serial()
        expected = self.N_NODES * self.CONFIG.increments_per_node
        # The crash really bites: node 4 loses increments.
        assert 0 < serial.extra["final"] < expected
        sharded = run_sharded(self._build, self.N_NODES, 2, policy)
        kernel = sharded.extra.pop("_kernel")
        assert sharded.extra["state_hash"] == serial.extra["state_hash"]
        assert kernel.node(0).store.read(counter_wl.COUNTER) == serial.extra["final"]

    def test_crash_lands_mid_window_under_optimism(self):
        sharded = run_sharded(self._build, self.N_NODES, 2, "optimistic")
        sharded.extra.pop("_kernel")
        # Speculation continues across the crash: rollbacks occur both
        # before and after it, proving the fault fired inside (not
        # between) optimism windows.
        assert sharded.extra["shard_stats"]["rollbacks"] > 0


class TestShardFallbacks:
    def test_entry_consistency_falls_back_to_serial(self):
        result = _tq(shards=2, system="entry", n_nodes=3, total_tasks=8)
        assert "message-pure" in result.extra["shard_fallback"]
        assert "shards" not in result.extra  # ran the serial path

    def test_single_shard_is_plain_serial(self):
        result = _tq(shards=1, n_nodes=3, total_tasks=8)
        assert "shard_fallback" not in result.extra
        assert "shards" not in result.extra

    def test_zero_delay_params_fall_back(self):
        from repro.params import PAPER_PARAMS

        result = _tq(
            shards=2, n_nodes=3, total_tasks=8, params=PAPER_PARAMS.zero_delay()
        )
        assert "lookahead" in result.extra["shard_fallback"]
