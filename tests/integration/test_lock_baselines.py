"""Integration tests for the cited baseline lock protocols (TAS, TTAS,
MCS) and the remote-atomic substrate they run on."""

from __future__ import annotations

import pytest

from repro.core.machine import DSMMachine
from repro.locks.rmw import RemoteAtomics
from repro.workloads.lock_bench import PROTOCOLS, LockBenchConfig, run_lock_bench


class TestRemoteAtomics:
    def build(self):
        machine = DSMMachine(n_nodes=4)
        machine.create_group("g", root=0)
        machine.declare_variable("g", "w", 10)
        atomics = RemoteAtomics(machine)
        return machine, atomics

    def test_fetch_and_store(self):
        machine, atomics = self.build()
        got = []

        def proc(node):
            old = yield from atomics.fetch_and_store(node, "w", 99)
            got.append(old)

        machine.spawn(proc(machine.nodes[2]), name="p")
        machine.run()
        assert got == [10]
        # The new value was sequenced and multicast to every member.
        assert all(n.store.read("w") == 99 for n in machine.nodes)

    def test_compare_and_swap_success_and_failure(self):
        machine, atomics = self.build()
        got = []

        def proc(node):
            old = yield from atomics.compare_and_swap(node, "w", expected=10, value=20)
            got.append(old)
            old = yield from atomics.compare_and_swap(node, "w", expected=10, value=30)
            got.append(old)

        machine.spawn(proc(machine.nodes[1]), name="p")
        machine.run()
        assert got == [10, 20]  # second CAS failed (old != expected)
        assert machine.nodes[3].store.read("w") == 20

    def test_fetch_and_add(self):
        machine, atomics = self.build()

        def proc(node, times):
            for _ in range(times):
                yield from atomics.fetch_and_add(node, "w", 1)

        machine.spawn(proc(machine.nodes[1], 5), name="p1")
        machine.spawn(proc(machine.nodes[3], 5), name="p3")
        machine.run()
        # Root arbitration makes concurrent increments atomic.
        assert all(n.store.read("w") == 20 for n in machine.nodes)

    def test_test_and_set_atomicity_under_race(self):
        machine, atomics = self.build()
        winners = []

        def proc(node):
            old = yield from atomics.test_and_set(node, "w", node.id, 10)
            if old == 10:
                winners.append(node.id)

        for node in machine.nodes:
            machine.spawn(proc(node), name=f"p{node.id}")
        machine.run()
        assert len(winners) == 1


class TestBaselineProtocols:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_no_lost_updates(self, protocol):
        result = run_lock_bench(
            LockBenchConfig(protocol=protocol, n_nodes=5, increments_per_node=6)
        )
        assert result.extra["correct"], result.extra
        assert result.extra["converged"]

    @pytest.mark.parametrize("protocol", ("tas", "ttas", "mcs"))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_baselines_across_seeds(self, protocol, seed):
        result = run_lock_bench(
            LockBenchConfig(
                protocol=protocol, n_nodes=6, increments_per_node=5, seed=seed
            )
        )
        assert result.extra["correct"]

    def test_ttas_spins_locally_more_than_tas(self):
        """TTAS's whole point: fewer remote attempts than plain TAS
        under the same contention."""
        tas = run_lock_bench(
            LockBenchConfig(protocol="tas", n_nodes=6, increments_per_node=8)
        )
        ttas = run_lock_bench(
            LockBenchConfig(protocol="ttas", n_nodes=6, increments_per_node=8)
        )
        assert ttas.extra["remote_attempts"] < tas.extra["remote_attempts"]

    def test_mcs_needs_no_spin_retries(self):
        result = run_lock_bench(
            LockBenchConfig(protocol="mcs", n_nodes=6, increments_per_node=8)
        )
        assert result.extra["remote_attempts"] == 0

    def test_gwc_queue_beats_spin_locks_under_contention(self):
        """The paper's motivation for queue-based locks on DSM."""
        gwc = run_lock_bench(
            LockBenchConfig(protocol="gwc_queue", n_nodes=8, increments_per_node=8,
                            think_time=2e-6)
        )
        tas = run_lock_bench(
            LockBenchConfig(protocol="tas", n_nodes=8, increments_per_node=8,
                            think_time=2e-6)
        )
        assert gwc.elapsed < tas.elapsed
