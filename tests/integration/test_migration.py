"""Epoch-fenced ownership handoff between live roots.

Online re-partitioning migrates a hot unit from one live root to
another behind an epoch fence — the same stale-window rule the
optimistic protocol already obeys for failover: any window that was
in flight when the fence landed is discarded and re-run under the new
owner, never committed against stale ownership.  These are regression
tests for that rule (the probe shapes below deterministically catch a
locker mid-window at fence time), plus an InvariantMonitor-armed run
that re-partitions a contended lock mid-flight.
"""

from __future__ import annotations

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.consistency.oracles import InvariantMonitor
from repro.core.machine import DSMMachine
from repro.core.section import Section
from repro.locks.gwc_lock import LockRetryPolicy
from repro.memory.repartition import arm_migration_fencing, migrate_units
from repro.workloads.rootshard import (
    RootShardConfig,
    _increment_body,
    run_rootshard,
)


def _config(roots: int, rebalance: bool, **overrides) -> RootShardConfig:
    """The probe shape: 8 nodes, rebalance at 35% progress catches the
    lockers mid-window when the fence lands (deterministic per seed)."""
    return RootShardConfig(
        n_nodes=8,
        roots=roots,
        hot_rounds=24,
        cold_units=4,
        cold_rounds=8,
        n_locks=2,
        n_lockers=6,
        increments=4,
        rebalance=rebalance,
        rebalance_frac=overrides.pop("rebalance_frac", 0.35),
        **overrides,
    )


class TestFencedHandoff:
    def test_handoff_discards_inflight_window_and_reruns(self):
        """A migration fence lands while lockers are mid-section: the
        stale window is discarded, the section re-runs under the new
        owner, and the final state still matches the serial baseline."""
        serial = run_rootshard(_config(roots=1, rebalance=False))
        sharded = run_rootshard(_config(roots=2, rebalance=True))
        assert sharded.extra["correct"]
        assert sharded.extra["shared_hash"] == serial.extra["shared_hash"]
        moves = sharded.extra["migration_moves"]
        assert moves, "rebalance never migrated a unit"
        assert all(src != dst for src, dst in moves.values())
        # The handoff happened between two LIVE roots — a lock unit
        # changed sequencers with its grant/queue state intact.
        assert sharded.extra["locks_transferred"] >= 1
        # The stale-window rule fired: at least one in-flight section
        # saw its epoch fence, rolled back, and re-ran.
        assert sharded.extra["epoch_restarts"] >= 1

    def test_optimistic_window_discarded_at_fence(self):
        """Same handoff under the optimistic system: the root also
        discards buffered old-epoch mutex writes for migrated names
        (they re-arrive at the new owner via the section re-run)."""
        serial = run_rootshard(
            _config(roots=1, rebalance=False, system="gwc_optimistic")
        )
        sharded = run_rootshard(
            _config(
                roots=2,
                rebalance=True,
                rebalance_frac=0.5,
                system="gwc_optimistic",
            )
        )
        assert sharded.extra["correct"]
        assert sharded.extra["shared_hash"] == serial.extra["shared_hash"]
        assert sharded.extra["epoch_restarts"] >= 1
        assert sharded.extra["migration_discards"] >= 1

    def test_handoff_is_deterministic(self):
        """Same seed, same fence, same moves, same state."""
        a = run_rootshard(_config(roots=2, rebalance=True))
        b = run_rootshard(_config(roots=2, rebalance=True))
        assert a.extra["shared_hash"] == b.extra["shared_hash"]
        assert a.extra["migration_moves"] == b.extra["migration_moves"]
        assert a.extra["epoch_restarts"] == b.extra["epoch_restarts"]


GROUP = "migr_group"
LOCK = "migr_lock"
COUNTER = "migr_counter"


def _locker(node, system, section, increments, think_time):
    for _ in range(increments):
        yield think_time
        yield from system.run_section(node, section)


def _migrating_controller(machine, threshold, moves, done):
    """Wait for real sequencing progress, then migrate mid-flight."""
    while sum(e.locally_sequenced for e in machine.engines_for(GROUP)) < threshold:
        yield machine.nack_timeout
    done["report"] = migrate_units(machine, GROUP, moves)


class TestMonitoredRepartition:
    def test_invariant_monitor_stays_quiet_across_handoff(self):
        """Re-partition a contended lock unit while the full oracle set
        (mutex, epoch/cursor monotonicity, RMW chain) is armed: the
        handoff must not trip a single invariant and the counter must
        land exactly on lockers x increments."""
        machine = DSMMachine(
            n_nodes=8,
            topology="mesh_torus",
            seed=0,
            reliable=True,
            checker=MutualExclusionChecker(),
        )
        unit = machine.nack_timeout
        retry = LockRetryPolicy(timeout=40.0 * unit, max_retries=64)
        system = make_system("gwc", machine, lock_retry=retry)
        machine.create_group(GROUP, roots=(0, 4))
        machine.declare_variable(GROUP, COUNTER, 0, mutex_lock=LOCK)
        machine.declare_lock(GROUP, LOCK, protects=(COUNTER,), data_bytes=8)
        for engine in machine.engines_for(GROUP):
            engine.configure_lock_recovery()
        arm_migration_fencing(machine)
        monitor = InvariantMonitor(machine, interval=5.0 * unit)
        monitor.install()

        lockers, increments = 6, 4
        section = Section(
            lock=LOCK,
            body=_increment_body,
            shared_reads=(COUNTER,),
            shared_writes=(COUNTER,),
            label="migr-inc",
        )
        for rank in range(lockers):
            node = machine.nodes[rank]
            node.locals["_rootshard_var"] = COUNTER
            node.locals["_rootshard_update_time"] = 1e-6
            machine.spawn(
                _locker(node, system, section, increments, 2e-6),
                name=f"migr-locker{rank}",
            )
        pmap = machine.partition_map(GROUP)
        source = pmap.partition_of(LOCK)
        target = 1 - source
        done: dict = {}
        total = 4 * lockers * increments
        machine.spawn(
            _migrating_controller(
                machine, total // 3, {LOCK: target}, done
            ),
            name="migr-controller",
        )

        machine.run()  # raises InvariantViolationError on any oracle trip
        monitor.armed = False
        monitor.check_now()

        assert monitor.sweeps > 0, "monitor never swept"
        report = done.get("report")
        assert report is not None, "controller never migrated"
        assert report.locks_transferred == 1
        assert report.moves[LOCK] == (source, target)
        assert pmap.partition_of(LOCK) == target
        assert pmap.partition_of(COUNTER) == target
        machine.checker.verify_chain(COUNTER, 0)
        machine.checker.verify_no_occupancy()
        for node in machine.nodes:
            assert node.store.read(COUNTER) == lockers * increments
