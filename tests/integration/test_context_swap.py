"""Integration tests for the "wait or context swap" alternative (§4)."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.section import Section
from repro.errors import LockError
from repro.locks.optimistic import OptimisticConfig


def build(wait_mode="swap", swap_overhead=0.2e-6, force="regular"):
    machine = DSMMachine(n_nodes=4, checker=MutualExclusionChecker())
    machine.create_group("g")
    machine.declare_variable("g", "v", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("v",))
    system = make_system(
        "gwc_optimistic",
        machine,
        wait_mode=wait_mode,
        swap_overhead=swap_overhead,
        force=force,
    )
    return machine, system


def increment_section(compute=4e-6):
    def body(ctx):
        value = ctx.read("v")
        yield from ctx.compute(compute)
        if ctx.aborted:
            return
        ctx.write("v", value + 1)

    return Section(lock="L", body=body, shared_reads=("v",), shared_writes=("v",))


def run_contended(machine, system, rounds=4, background=None):
    section = increment_section()

    def worker(node):
        if background:
            node.add_background_work(background)
        for _ in range(rounds):
            yield from system.run_section(node, section)

    for node in machine.nodes:
        machine.spawn(worker(node), name=f"w{node.id}")
    machine.run()
    return machine


class TestContextSwap:
    def test_background_work_runs_during_lock_waits(self):
        machine, system = build()
        run_contended(machine, system, background=[2e-6, 2e-6, 2e-6])
        assert machine.metrics.total_counter("swap.switches") > 0
        assert all(n.store.read("v") == 16 for n in machine.nodes)

    def test_swap_improves_total_useful_throughput(self):
        """The same contended run plus background work: swap mode turns
        lock-wait idle time into useful time."""
        background = [3e-6] * 4

        machine_spin, system_spin = build(wait_mode="spin")
        run_contended(machine_spin, system_spin, background=background)

        machine_swap, system_swap = build(wait_mode="swap")
        run_contended(machine_swap, system_swap, background=background)

        useful_rate_spin = (
            machine_spin.metrics.total_useful() / machine_spin.metrics.elapsed
        )
        useful_rate_swap = (
            machine_swap.metrics.total_useful() / machine_swap.metrics.elapsed
        )
        # Spin mode never touches the background queue.
        assert machine_spin.metrics.total_counter("swap.switches") == 0
        assert useful_rate_swap > useful_rate_spin

    def test_swap_overhead_is_charged(self):
        machine, system = build(swap_overhead=1e-6)
        run_contended(machine, system, background=[2e-6, 2e-6])
        switches = machine.metrics.total_counter("swap.switches")
        overhead = sum(n.metrics.overhead for n in machine.nodes)
        assert overhead >= switches * 1e-6 * 0.99

    def test_without_background_work_swap_degenerates_to_spin(self):
        machine, system = build(wait_mode="swap")
        run_contended(machine, system, background=None)
        assert machine.metrics.total_counter("swap.switches") == 0
        assert all(n.store.read("v") == 16 for n in machine.nodes)

    def test_correctness_unaffected_by_wait_mode(self):
        for mode in ("spin", "swap"):
            machine, system = build(wait_mode=mode, force=None)
            run_contended(machine, system, background=[1e-6] * 8)
            assert all(n.store.read("v") == 16 for n in machine.nodes)
            machine.checker.verify_no_occupancy()

    def test_config_validation(self):
        with pytest.raises(LockError):
            OptimisticConfig(wait_mode="hibernate")
        with pytest.raises(LockError):
            OptimisticConfig(swap_overhead=-1.0)

    def test_bad_background_chunk_rejected(self):
        machine, _ = build()
        with pytest.raises(ValueError):
            machine.nodes[0].add_background_work([0.0])
