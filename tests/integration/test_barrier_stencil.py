"""Integration tests for the central barrier and the Jacobi stencil."""

from __future__ import annotations

import pytest

from repro.core.machine import DSMMachine
from repro.errors import LockError
from repro.locks.barrier import CentralBarrier
from repro.locks.rmw import RemoteAtomics
from repro.workloads.stencil import StencilConfig, reference_jacobi, run_stencil


def build(n=5):
    machine = DSMMachine(n_nodes=n)
    machine.create_group("g", root=0)
    atomics = RemoteAtomics(machine)
    barrier = CentralBarrier("b", "g", machine, atomics)
    return machine, barrier


class TestCentralBarrier:
    def test_no_one_proceeds_until_all_arrive(self):
        machine, barrier = build()
        log = []

        def worker(node, delay):
            yield delay
            log.append(("arrive", node.id, node.sim.now))
            yield from barrier.wait(node)
            log.append(("pass", node.id, node.sim.now))

        delays = [0.0, 1e-6, 2e-6, 3e-6, 9e-6]
        for node, delay in zip(machine.nodes, delays):
            machine.spawn(worker(node, delay), name=f"w{node.id}")
        machine.run()
        last_arrival = max(t for kind, _, t in log if kind == "arrive")
        first_pass = min(t for kind, _, t in log if kind == "pass")
        assert first_pass >= last_arrival
        assert sum(1 for kind, _, _ in log if kind == "pass") == 5

    def test_reusable_across_episodes(self):
        machine, barrier = build(n=4)
        episodes = {i: [] for i in range(4)}

        def worker(node):
            rng = node.sim.rng.stream(f"b{node.id}")
            for episode in range(5):
                yield rng.uniform(0, 3e-6)
                yield from barrier.wait(node)
                episodes[node.id].append((episode, node.sim.now))

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        # Within each episode, no node passed before the episode's last
        # arrival; across episodes, pass times strictly increase.
        for episode in range(5):
            times = [episodes[n][episode][1] for n in range(4)]
            assert max(times) - min(times) < 5e-6  # released together-ish
        for n in range(4):
            times = [t for _, t in episodes[n]]
            assert times == sorted(times)

    def test_waiters_spin_locally(self):
        """Only the arrival atomics cross the network; the release is
        one eagershared flag write."""
        machine, barrier = build(n=4)

        def worker(node):
            yield from barrier.wait(node)

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        kinds = machine.network.stats.by_kind
        assert kinds["rmw.request"] == 4
        assert kinds["rmw.reply"] == 4
        # One sense-flag write: to root + multicast (plus the counter
        # updates the atomics sequenced).
        assert kinds.get("gwc.update", 0) == 1

    def test_invalid_party_count(self):
        machine = DSMMachine(n_nodes=2)
        machine.create_group("g", root=0)
        atomics = RemoteAtomics(machine)
        with pytest.raises(LockError):
            CentralBarrier("b", "g", machine, atomics, parties=0)


class TestStencil:
    def test_matches_sequential_reference_exactly(self):
        result = run_stencil(StencilConfig())
        assert result.extra["correct"]
        assert result.extra["max_error"] == 0.0

    @pytest.mark.parametrize("n_nodes", (1, 2, 4, 8))
    def test_any_decomposition_same_answer(self, n_nodes):
        config = StencilConfig(n_nodes=n_nodes, cells_per_node=6, iterations=5)
        result = run_stencil(config)
        assert result.extra["correct"], result.extra["max_error"]

    def test_more_iterations_converge_toward_flat(self):
        config = StencilConfig(n_nodes=4, cells_per_node=4, iterations=40)
        result = run_stencil(config)
        values = result.extra["computed"]
        spread = max(values) - min(values)
        initial_spread = 15.0  # 0..15
        assert spread < initial_spread * 0.6  # diffusion is slow but real
        assert result.extra["correct"]

    def test_boundary_traffic_is_pure_eagersharing(self):
        config = StencilConfig(n_nodes=4)
        result = run_stencil(config)
        # Useful work dominated by cell updates; no lock protocol ran
        # (barrier arrivals are atomics, halos are plain eagersharing).
        assert result.counter("lock.requests") == 0
        assert result.counter("barrier.arrivals") == 4 * config.iterations

    def test_reference_is_self_consistent(self):
        a = reference_jacobi(StencilConfig(n_nodes=2, cells_per_node=8))
        b = reference_jacobi(StencilConfig(n_nodes=4, cells_per_node=4))
        assert a == b  # decomposition-independent
