"""Integration tests for the remaining Section 2 patterns: the
single-writer ordinary-variable lock, multi-group mutual exclusion, and
the sequential-consistency baseline added for comparison."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.core.machine import DSMMachine
from repro.errors import LockError, LockStateError
from repro.locks.multigroup import MultiGroupMutex
from repro.locks.single_writer import (
    INVALID,
    SingleWriterPublisher,
    SingleWriterReader,
)


class TestSingleWriterPattern:
    def build(self):
        machine = DSMMachine(n_nodes=4)
        machine.create_group("g", root=0)
        machine.declare_variable("g", "valid", 0)
        machine.declare_variable("g", "d1", 0)
        machine.declare_variable("g", "d2", 0)
        return machine

    def test_readers_see_complete_published_updates(self):
        machine = self.build()
        writer_node = machine.nodes[1]
        publisher = SingleWriterPublisher("valid", writer_node)
        reader = SingleWriterReader("valid", ("d1", "d2"))
        snapshots = []

        def writer():
            for round_ in range(1, 4):
                publisher.begin_update()
                publisher.write("d1", round_ * 10)
                yield 2e-6  # mid-update delay: readers must not peek
                publisher.write("d2", round_ * 10 + 1)
                publisher.publish()
                yield 5e-6

        def read_proc(node):
            for version in range(1, 4):
                got = yield from reader.snapshot(node, min_version=version)
                snapshots.append((node.id, got))

        machine.spawn(writer(), name="writer")
        for node in (machine.nodes[2], machine.nodes[3]):
            machine.spawn(read_proc(node), name=f"reader-{node.id}")
        machine.run()
        assert len(snapshots) == 6
        for _node, (version, values) in snapshots:
            # A snapshot is always internally consistent: both fields
            # come from the same published round.
            assert values["d1"] == version * 10
            assert values["d2"] == version * 10 + 1

    def test_no_lock_traffic_at_all(self):
        machine = self.build()
        publisher = SingleWriterPublisher("valid", machine.nodes[1])
        reader = SingleWriterReader("valid", ("d1",))
        got = []

        def writer():
            publisher.begin_update()
            publisher.write("d1", 7)
            publisher.publish()
            yield 0

        def read_proc(node):
            got.append((yield from reader.snapshot(node)))

        machine.spawn(writer(), name="w")
        machine.spawn(read_proc(machine.nodes[3]), name="r")
        machine.run()
        assert got[0][1]["d1"] == 7
        # Only eagersharing updates flowed; no lock protocol messages.
        kinds = set(machine.network.stats.by_kind)
        assert kinds <= {"gwc.update", "gwc.apply"}

    def test_misuse_rejected(self):
        machine = self.build()
        publisher = SingleWriterPublisher("valid", machine.nodes[1])
        with pytest.raises(LockStateError):
            publisher.write("d1", 1)
        with pytest.raises(LockStateError):
            publisher.publish()
        publisher.begin_update()
        with pytest.raises(LockStateError):
            publisher.begin_update()


class TestMultiGroupMutex:
    def build(self):
        machine = DSMMachine(n_nodes=6)
        machine.create_group("g1", members=(0, 1, 2, 3), root=0)
        machine.create_group("g2", members=(2, 3, 4, 5), root=5)
        machine.declare_variable("g1", "x", 0, mutex_lock="L1")
        machine.declare_lock("g1", "L1", protects=("x",))
        machine.declare_variable("g2", "y", 0, mutex_lock="L2")
        machine.declare_lock("g2", "L2", protects=("y",))
        return machine

    def test_cross_group_updates_are_exclusive(self):
        machine = self.build()
        mutex = MultiGroupMutex(machine, ("L1", "L2"))
        inside = []
        violations = []

        def worker(node):
            for _ in range(3):
                yield from mutex.acquire(node)
                if inside:
                    violations.append(tuple(inside))
                inside.append(node.id)
                x = node.store.read("x")
                y = node.store.read("y")
                yield 1e-6
                node.iface.share_write("x", x + 1)
                node.iface.share_write("y", y + 1)
                inside.remove(node.id)
                yield from mutex.release(node)

        # Only nodes in BOTH groups can touch both variables.
        for node_id in (2, 3):
            machine.spawn(worker(machine.nodes[node_id]), name=f"w{node_id}")
        machine.run()
        assert not violations
        assert machine.nodes[2].store.read("x") == 6
        assert machine.nodes[3].store.read("y") == 6

    def test_canonical_order_prevents_deadlock(self):
        """Two workers name the locks in opposite orders; the mutex
        sorts them, so the classic AB/BA deadlock cannot happen."""
        machine = self.build()
        ab = MultiGroupMutex(machine, ("L1", "L2"))
        ba = MultiGroupMutex(machine, ("L2", "L1"))
        assert ab.locks == ba.locks
        done = []

        def worker(node, mutex):
            for _ in range(5):
                yield from mutex.acquire(node)
                yield 0.5e-6
                yield from mutex.release(node)
            done.append(node.id)

        machine.spawn(worker(machine.nodes[2], ab), name="w2")
        machine.spawn(worker(machine.nodes[3], ba), name="w3")
        machine.run()  # check_quiescent would flag a deadlock
        assert sorted(done) == [2, 3]

    def test_validation(self):
        machine = self.build()
        with pytest.raises(LockError):
            MultiGroupMutex(machine, ())
        with pytest.raises(LockError):
            MultiGroupMutex(machine, ("L1", "L1"))


class TestSequentialBaseline:
    def test_counter_correct_and_slowest_of_eager_models(self):
        from repro.workloads.counter import CounterConfig, run_counter

        elapsed = {}
        for system in ("gwc", "sequential"):
            result = run_counter(
                CounterConfig(system=system, n_nodes=5, increments_per_node=5)
            )
            assert result.extra["correct"]
            elapsed[system] = result.elapsed
        # "Inefficient even for two processors": SC's per-write fencing
        # must cost more than GWC's non-blocking eagersharing.
        assert elapsed["sequential"] > elapsed["gwc"]

    def test_plain_write_blocks_until_globally_applied(self):
        machine = DSMMachine(n_nodes=4)
        machine.create_group("g", root=0)
        machine.declare_variable("g", "x", 0)
        system = make_system("sequential", machine)
        durations = []

        def writer(node):
            start = node.sim.now
            yield from system.write(node, "x", 1)
            durations.append(node.sim.now - start)

        machine.spawn(writer(machine.nodes[2]), name="w")
        machine.run()
        # At least one full round trip through the sequencer.
        assert durations[0] >= 2 * machine.network.delay(2, 0, 16)
        assert all(n.store.read("x") == 1 for n in machine.nodes)
