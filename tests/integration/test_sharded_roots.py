"""Sharded-root parity: the sharded group converges to the serial state.

Root sharding (K sibling subgroups, each root sequencing a deterministic
partition of the shared address space) is only allowed to exist because
the *final converged state* is indistinguishable from the one-root
baseline.  Every test here runs the same workload with ``roots=1`` and
with sharded roots and compares :func:`shared_state_hash` payloads —
across seeds, topologies, partition counts, partition seeds, and with
hierarchical multicast relays in the delivery path.
"""

from __future__ import annotations

import pytest

from repro.workloads.rootshard import RootShardConfig, run_rootshard

TOPOLOGIES = ("mesh_torus", "ring")


def _config(roots: int = 1, **overrides) -> RootShardConfig:
    """A small, fast shape: 8 nodes, 7 units (hot + 4 cold + 2 locks)."""
    return RootShardConfig(
        n_nodes=overrides.pop("n_nodes", 8),
        roots=roots,
        hot_rounds=overrides.pop("hot_rounds", 8),
        cold_units=overrides.pop("cold_units", 4),
        cold_rounds=overrides.pop("cold_rounds", 4),
        n_locks=overrides.pop("n_locks", 2),
        n_lockers=overrides.pop("n_lockers", 4),
        increments=overrides.pop("increments", 2),
        rebalance=overrides.pop("rebalance", False),
        **overrides,
    )


def _run(roots: int = 1, **overrides):
    return run_rootshard(_config(roots=roots, **overrides))


def _assert_parity(serial, sharded, roots: int):
    __tracebackhide__ = True
    assert sharded.extra["correct"], "sharded run converged to wrong values"
    assert serial.extra["correct"], "serial baseline converged to wrong values"
    assert sharded.extra["shared_hash"] == serial.extra["shared_hash"]
    assert sharded.extra["roots"] == roots
    assert len(sharded.extra["load_total"]) == roots


class TestSerialShardedParity:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("roots", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matrix(self, topology, roots, seed):
        serial = _run(roots=1, topology=topology, seed=seed)
        sharded = _run(roots=roots, topology=topology, seed=seed)
        _assert_parity(serial, sharded, roots)

    def test_roots_equal_units_still_agrees(self):
        """More partitions than needed: some roots own nothing."""
        serial = _run(roots=1)
        sharded = _run(roots=7)
        _assert_parity(serial, sharded, 7)

    @pytest.mark.parametrize("partition_seed", [1, 7])
    def test_partition_seed_changes_layout_not_state(self, partition_seed):
        """A different partition seed shuffles unit ownership but the
        converged state is identical."""
        base = _run(roots=3)
        reseeded = _run(roots=3, partition_seed=partition_seed)
        assert reseeded.extra["shared_hash"] == base.extra["shared_hash"]

    def test_load_spreads_across_roots(self):
        """No single root sequences the whole group once sharded (the
        partition hash spreads 7 units over 3 roots for this seed)."""
        sharded = _run(roots=3)
        loads = sharded.extra["load_total"]
        assert sum(loads) > 0
        assert max(loads) < sum(loads)


class TestRelayParity:
    @pytest.mark.parametrize("fanout", [2, 3])
    def test_relay_tree_delivery_agrees_with_direct(self, fanout):
        """Hierarchical multicast forwards applies through member relays
        yet converges to the byte-identical direct-delivery state."""
        direct = _run(roots=2)
        relayed = _run(roots=2, fanout=fanout)
        assert relayed.extra["shared_hash"] == direct.extra["shared_hash"]
        assert relayed.extra["correct"]
        assert relayed.extra["relayed_applies"] > 0
        assert direct.extra["relayed_applies"] == 0

    def test_relay_serial_single_root(self):
        """Fanout applies to the one-root shape too (a plain relay tree
        under the single sequencer)."""
        serial = _run(roots=1)
        relayed = _run(roots=1, fanout=2)
        assert relayed.extra["shared_hash"] == serial.extra["shared_hash"]
        assert relayed.extra["relayed_applies"] > 0


class TestCrossRootAtomics:
    def test_locked_sections_with_remote_partitions(self):
        """Lockers whose tallies live on different roots still produce
        unbroken RMW chains (verified inside run_rootshard) and exact
        final tallies — the sync-boundary sibling flush holds."""
        sharded = _run(roots=3, n_locks=3, n_lockers=6, increments=3)
        assert sharded.extra["correct"]

    @pytest.mark.parametrize("system", ["gwc", "gwc_optimistic"])
    def test_parity_by_system(self, system):
        serial = _run(roots=1, system=system)
        sharded = _run(roots=2, system=system)
        _assert_parity(serial, sharded, 2)
