"""Integration: the continuous-verify guardrail end to end.

Covers the acceptance bar of the goldens work:

* ``update-goldens`` -> ``verify-goldens`` round-trips clean (exit 0);
* a single-byte mutation in a golden-covered artifact fails the gate
  (exit 1) with a per-file and per-field diff report;
* chaos / failover / shard-smoke artifact generation is byte-identical
  across two back-to-back runs per seed;
* SIGKILL mid-run leaves either a complete manifested artifact set or
  nothing detectable as valid — and the next run cleans the partials;
* exit codes are uniform: 0 clean, 1 drift/stall, 2 usage.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

from repro import cli
from repro.goldens.manifest import MANIFEST_NAME, manifest_errors
from repro.goldens.surfaces import SURFACES_BY_NAME, surface_names
from repro.goldens.verify import update_goldens, verify_goldens
from repro.goldens.writer import RunWriter

#: Fast surfaces used for the round-trip flow tests.
FAST = ("figure1", "replication", "grouping")

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
ENV = {"REPRO_REGEN_GOLDENS": "1"}


def _update(tmp_path, only=FAST):
    code = update_goldens(
        goldens_dir=tmp_path, only=only, out=lambda _line: None, environ=ENV
    )
    assert code == 0
    return tmp_path


class TestRoundTrip:
    def test_update_then_verify_is_clean(self, tmp_path):
        _update(tmp_path)
        lines = []
        assert verify_goldens(tmp_path, only=FAST, out=lines.append) == 0
        assert any("3/3 surface(s) clean" in line for line in lines)

    def test_single_byte_mutation_fails_with_field_diff(self, tmp_path):
        _update(tmp_path)
        target = tmp_path / "figure1" / "figure1.json"
        text = target.read_text()
        assert '"final_value": 3' in text
        target.write_text(text.replace('"final_value": 3', '"final_value": 4', 1))
        lines = []
        assert verify_goldens(tmp_path, only=("figure1",), out=lines.append) == 1
        report = "\n".join(lines)
        assert "figure1.json" in report  # per-file
        assert "final_value" in report  # per-field
        assert "golden 4 != current 3" in report

    def test_csv_mutation_reports_row_and_column(self, tmp_path):
        _update(tmp_path, only=("grouping",))
        target = tmp_path / "grouping" / "grouping.csv"
        rows = target.read_text().splitlines()
        cells = rows[1].split(",")
        cells[0] = "999"  # n_nodes of the first data row
        rows[1] = ",".join(cells)
        target.write_text("\n".join(rows) + "\n")
        lines = []
        assert verify_goldens(tmp_path, only=("grouping",), out=lines.append) == 1
        report = "\n".join(lines)
        assert "grouping.csv" in report
        assert "[n_nodes]" in report and "'999'" in report

    def test_truncated_golden_fails(self, tmp_path):
        _update(tmp_path, only=("figure1",))
        target = tmp_path / "figure1" / "figure1.json"
        target.write_text(target.read_text()[:-40])
        assert verify_goldens(tmp_path, only=("figure1",), out=lambda _l: None) == 1

    def test_missing_goldens_is_drift(self, tmp_path):
        lines = []
        assert verify_goldens(tmp_path, only=("figure1",), out=lines.append) == 1
        assert any("MISSING" in line for line in lines)

    def test_update_without_kill_switch_refused(self, tmp_path):
        lines = []
        code = update_goldens(
            goldens_dir=tmp_path, only=FAST, out=lines.append, environ={}
        )
        assert code == 2
        assert not any(tmp_path.iterdir())  # nothing was written
        assert any("REPRO_REGEN_GOLDENS" in line for line in lines)

    def test_unknown_surface_is_usage_error(self, tmp_path):
        assert verify_goldens(tmp_path, only=("nope",), out=lambda _l: None) == 2
        code = update_goldens(
            goldens_dir=tmp_path, only=("nope",), out=lambda _l: None, environ=ENV
        )
        assert code == 2

    def test_update_prints_field_diff_summary_on_change(self, tmp_path):
        _update(tmp_path, only=("figure1",))
        # Tamper, then regenerate: the update must print what moved.
        target = tmp_path / "figure1" / "figure1.json"
        text = target.read_text()
        target.write_text(text.replace('"final_value": 3', '"final_value": 4', 1))
        lines = []
        code = update_goldens(
            goldens_dir=tmp_path,
            only=("figure1",),
            out=lines.append,
            environ=ENV,
        )
        assert code == 0
        report = "\n".join(lines)
        assert "UPDATED" in report and "final_value" in report
        # And the rewritten goldens verify clean again.
        assert verify_goldens(tmp_path, only=("figure1",), out=lambda _l: None) == 0


class TestDeterminism:
    """Back-to-back runs per seed must produce byte-identical artifacts."""

    @pytest.mark.parametrize("name", ["chaos", "failover", "shard_smoke"])
    def test_surface_byte_identical_across_runs(self, tmp_path, name):
        surface = SURFACES_BY_NAME[name]
        first = RunWriter(tmp_path / "one", name)
        surface.generate(first)
        manifest_one = first.finalize()
        second = RunWriter(tmp_path / "two", name)
        surface.generate(second)
        manifest_two = second.finalize()
        assert set(manifest_one.files) == set(manifest_two.files)
        for file_name in manifest_one.files:
            bytes_one = (tmp_path / "one" / file_name).read_bytes()
            bytes_two = (tmp_path / "two" / file_name).read_bytes()
            assert bytes_one == bytes_two, f"{name}/{file_name} not reproducible"
        assert manifest_errors(tmp_path / "one") == []

    def test_every_surface_is_registered(self):
        names = surface_names()
        for expected in (
            "figure1",
            "figure2",
            "figure8",
            "ablation",
            "sensitivity",
            "grouping",
            "replication",
            "burst",
            "chaos",
            "failover",
            "shard_smoke",
            "shard_backend",
            "bench_kernel",
        ):
            assert expected in names


class TestCommittedGoldens:
    """The repo's committed goldens/ tree must verify clean (fast subset).

    CI runs the full gate via ``make verify-goldens``; here we keep
    tier-1 honest with the cheapest surfaces so a semantic change that
    forgets to regenerate goldens fails close to the code.
    """

    def test_committed_goldens_verify_clean(self):
        goldens = REPO_ROOT / "goldens"
        assert goldens.is_dir(), "goldens/ tree missing; run `make goldens`"
        lines = []
        code = verify_goldens(
            goldens, only=("figure1", "replication", "bench_kernel"),
            out=lines.append,
        )
        assert code == 0, "\n".join(lines)

    def test_committed_manifests_are_internally_consistent(self):
        goldens = REPO_ROOT / "goldens"
        for name in surface_names():
            directory = goldens / name
            assert directory.is_dir(), f"no committed goldens for {name}"
            problems = manifest_errors(directory)
            assert problems == [], f"{name}: {problems}"


class TestSigkillMidRun:
    """SIGKILL mid-run: complete-with-manifest or detectably invalid."""

    SCRIPT = """
import sys, time
from repro.goldens.writer import RunWriter
run = RunWriter(sys.argv[1], surface="killtest")
run.write_json("a.json", {"x": 1})
print("WROTE_A", flush=True)
time.sleep(30)  # SIGKILLed here
run.write_json("b.json", {"y": 2})
run.finalize()
"""

    def test_no_partial_survives_as_valid(self, tmp_path):
        run_dir = tmp_path / "run"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", self.SCRIPT, str(run_dir)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "WROTE_A"
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        # The artifact landed but the run never finalized: the directory
        # must be detectably invalid, never a silently-partial set.
        assert (run_dir / "a.json").is_file()
        assert not (run_dir / MANIFEST_NAME).exists()
        assert manifest_errors(run_dir)
        # The next run detects and cleans the stale partial, then
        # completes into a valid manifested set.
        notes = []
        fresh = RunWriter(run_dir, "killtest", out=notes.append)
        assert fresh.cleaned_stale == ["a.json"]
        assert any("stale partial" in note for note in notes)
        fresh.write_json("a.json", {"x": 1})
        fresh.write_json("b.json", {"y": 2})
        fresh.finalize()
        assert manifest_errors(run_dir) == []


class TestCliExitCodes:
    """0 clean / 1 drift-or-stall / 2 usage, across chaos and goldens."""

    def test_verify_goldens_usage(self):
        assert cli.main(["verify-goldens", "--only", "bogus"]) == 2

    def test_update_goldens_needs_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_REGEN_GOLDENS", raising=False)
        assert (
            cli.main(["update-goldens", "--dir", str(tmp_path), "--only", "figure1"])
            == 2
        )

    def test_verify_goldens_clean_and_drift(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGEN_GOLDENS", "1")
        assert (
            cli.main(["update-goldens", "--dir", str(tmp_path), "--only", "figure1"])
            == 0
        )
        assert (
            cli.main(["verify-goldens", "--dir", str(tmp_path), "--only", "figure1"])
            == 0
        )
        target = tmp_path / "figure1" / "figure1.json"
        payload = json.loads(target.read_text())
        payload["rows"][0]["final_value"] += 1
        target.write_text(json.dumps(payload))
        assert (
            cli.main(["verify-goldens", "--dir", str(tmp_path), "--only", "figure1"])
            == 1
        )

    def test_chaos_usage_errors(self, capsys):
        assert cli.main(["chaos", "--scenario", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert cli.main(["chaos", "--workload", "bogus"]) == 2
        assert cli.main(["chaos", "--systems", "gwc,bogus"]) == 2
        assert (
            cli.main(["chaos", "--scenario", "crash_root", "--systems", "release"])
            == 2
        )
        assert (
            cli.main(
                ["chaos", "--scenario", "crash_holder", "--workload", "task_queue"]
            )
            == 2
        )

    def test_chaos_clean_run_is_zero(self, capsys):
        code = cli.main(
            ["chaos", "--scenario", "delay", "--systems", "release", "--ops", "4"]
        )
        capsys.readouterr()
        assert code == 0

    def test_chaos_stall_is_one(self, capsys):
        # Negative control: crash_root without failover must stall.
        code = cli.main(
            [
                "chaos",
                "--scenario",
                "crash_root",
                "--systems",
                "gwc",
                "--no-failover",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "STALL" in out
