"""Cross-system workload correctness: the same program must be correct
under every consistency model, whatever its performance."""

from __future__ import annotations

import pytest

from repro.workloads.counter import CounterConfig, run_counter
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.synthetic import SyntheticConfig, run_synthetic
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

ALL_SYSTEMS = ("gwc", "gwc_optimistic", "entry", "release", "weak", "sequential")


class TestCounter:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_no_lost_updates(self, system):
        result = run_counter(
            CounterConfig(system=system, n_nodes=5, increments_per_node=6)
        )
        assert result.extra["correct"], result.extra

    @pytest.mark.parametrize("system", ("gwc", "gwc_optimistic", "release"))
    def test_eager_systems_converge_everywhere(self, system):
        result = run_counter(
            CounterConfig(system=system, n_nodes=5, increments_per_node=4)
        )
        assert result.extra["converged"], result.extra

    def test_entry_final_value_lives_with_last_owner(self):
        result = run_counter(
            CounterConfig(system="entry", n_nodes=4, increments_per_node=4)
        )
        assert max(result.extra["final_values"]) == result.extra["expected"]

    def test_single_node_degenerate_case(self):
        result = run_counter(
            CounterConfig(system="gwc_optimistic", n_nodes=1, increments_per_node=5)
        )
        assert result.extra["correct"]

    @pytest.mark.parametrize("seed", range(3))
    def test_seeds_do_not_affect_correctness(self, seed):
        result = run_counter(
            CounterConfig(
                system="gwc_optimistic", n_nodes=6, increments_per_node=5, seed=seed
            )
        )
        assert result.extra["correct"]


class TestTaskQueue:
    @pytest.mark.parametrize(
        "system", ("gwc", "gwc_optimistic", "entry", "release", "sequential")
    )
    def test_every_task_executed_exactly_once(self, system):
        result = run_task_queue(
            TaskQueueConfig(system=system, n_nodes=5, total_tasks=40)
        )
        assert result.extra["all_executed"], result.extra

    def test_speedup_below_consumer_count(self):
        result = run_task_queue(TaskQueueConfig(system="gwc", n_nodes=5, total_tasks=64))
        assert result.speedup <= 4.0 + 1e-9

    def test_speedup_grows_with_consumers(self):
        small = run_task_queue(TaskQueueConfig(system="gwc", n_nodes=3, total_tasks=64))
        large = run_task_queue(TaskQueueConfig(system="gwc", n_nodes=9, total_tasks=64))
        assert large.speedup > small.speedup * 2

    def test_two_nodes_minimum(self):
        result = run_task_queue(TaskQueueConfig(system="gwc", n_nodes=2, total_tasks=8))
        assert result.extra["all_executed"]

    def test_single_node_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            run_task_queue(TaskQueueConfig(system="gwc", n_nodes=1))


class TestPipeline:
    @pytest.mark.parametrize(
        "system", ("gwc", "gwc_optimistic", "entry", "release", "sequential")
    )
    def test_accumulator_exact(self, system):
        result = run_pipeline(
            PipelineConfig(system=system, n_nodes=4, data_size=32)
        )
        assert result.extra["acc_correct"], result.extra

    def test_no_rollbacks_without_contention(self):
        result = run_pipeline(
            PipelineConfig(system="gwc_optimistic", n_nodes=8, data_size=64)
        )
        assert result.extra["rollbacks"] == 0

    def test_optimistic_beats_regular(self):
        opt = run_pipeline(
            PipelineConfig(system="gwc_optimistic", n_nodes=4, data_size=64)
        )
        reg = run_pipeline(PipelineConfig(system="gwc", n_nodes=4, data_size=64))
        assert opt.speedup > reg.speedup

    def test_power_bounded_by_ideal(self):
        result = run_pipeline(
            PipelineConfig(system="gwc_optimistic", n_nodes=4, data_size=64)
        )
        assert result.speedup < result.extra["ideal_power"]

    def test_single_node_ring(self):
        result = run_pipeline(
            PipelineConfig(system="gwc_optimistic", n_nodes=1, data_size=8)
        )
        assert result.extra["acc_correct"]

    def test_indivisible_data_size_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            run_pipeline(PipelineConfig(system="gwc", n_nodes=3, data_size=32))


class TestSynthetic:
    @pytest.mark.parametrize("seed", range(5))
    def test_invariants_hold_across_seeds(self, seed):
        result = run_synthetic(
            SyntheticConfig(system="gwc_optimistic", n_nodes=5, sections_per_node=8, seed=seed)
        )
        assert result.extra["correct"], result.extra
        assert result.extra["converged"]

    @pytest.mark.parametrize("system", ("gwc", "release"))
    def test_other_systems_also_correct(self, system):
        result = run_synthetic(
            SyntheticConfig(system=system, n_nodes=4, sections_per_node=6)
        )
        assert result.extra["correct"]
