"""Entry consistency: concurrent non-exclusive readers."""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.entry import EXCLUSIVE, NON_EXCLUSIVE
from repro.core.machine import DSMMachine


def build(n=6):
    machine = DSMMachine(n_nodes=n)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "d", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("d",), data_bytes=32)
    return machine, make_system("entry", machine)


class TestConcurrentReaders:
    def test_readers_overlap_in_time(self):
        machine, system = build()
        spans = {}

        def reader(node):
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            start = node.sim.now
            yield 5e-6
            spans[node.id] = (start, node.sim.now)
            yield from system.release(node, "L")

        for nid in (2, 3, 4):
            machine.spawn(reader(machine.nodes[nid]), name=f"r{nid}")
        machine.run()
        assert len(spans) == 3
        # All three held simultaneously at some instant.
        latest_start = max(start for start, _ in spans.values())
        earliest_end = min(end for _, end in spans.values())
        assert latest_start < earliest_end

    def test_readers_see_writers_committed_value(self):
        machine, system = build()
        seen = []

        def writer(node):
            yield from system.acquire(node, "L", mode=EXCLUSIVE)
            system.section_write(node, "d", 7)
            yield from system.release(node, "L")

        def reader(node):
            yield 5e-6
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            seen.append(node.store.read("d"))
            yield from system.release(node, "L")

        machine.spawn(writer(machine.nodes[1]), name="w")
        for nid in (3, 4):
            machine.spawn(reader(machine.nodes[nid]), name=f"r{nid}")
        machine.run()
        assert seen == [7, 7]

    def test_writer_after_readers_invalidates_them_all(self):
        machine, system = build()

        def reader(node):
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            yield from system.release(node, "L")

        def writer(node):
            yield 5e-6
            yield from system.acquire(node, "L", mode=EXCLUSIVE)
            system.section_write(node, "d", 1)
            yield from system.release(node, "L")

        for nid in (2, 3, 4):
            machine.spawn(reader(machine.nodes[nid]), name=f"r{nid}")
        machine.spawn(writer(machine.nodes[5]), name="w")
        machine.run()
        # Readers 2,3,4 (and initial owner 0) lose their copies.
        assert system._lock_state("L").copyset == {5}
        assert system.invalidations >= 3

    def test_exclusive_waits_for_queue_position_behind_reads(self):
        machine, system = build()
        order = []

        def reader(node):
            yield from system.acquire(node, "L", mode=NON_EXCLUSIVE)
            order.append(("r", node.id))
            yield from system.release(node, "L")

        def writer(node):
            yield 0.2e-6
            yield from system.acquire(node, "L", mode=EXCLUSIVE)
            order.append(("w", node.id))
            yield from system.release(node, "L")

        machine.spawn(reader(machine.nodes[2]), name="r2")
        machine.spawn(writer(machine.nodes[4]), name="w4")
        machine.run()
        assert ("r", 2) in order and ("w", 4) in order
