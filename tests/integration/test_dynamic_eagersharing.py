"""Integration tests for dynamic disabling of eagersharing (§1.1) and
the grouping ablation (§1.2's global-root warning)."""

from __future__ import annotations

import pytest

from repro.core.machine import DSMMachine
from repro.errors import MemoryError_
from repro.experiments.grouping import GroupingConfig, run_grouping, run_grouping_sweep


def build():
    machine = DSMMachine(n_nodes=4)
    machine.create_group("g", root=0)
    machine.declare_variable("g", "big", 0, size_bytes=1024)
    machine.declare_variable("g", "m", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("m",))
    return machine


class TestDynamicDisable:
    def test_unsubscribed_member_keeps_stale_copy(self):
        machine = build()

        def unsub_then_wait(node):
            node.iface.unsubscribe("big")
            yield 5e-6  # let the unsubscribe reach the root

        def writer(node):
            yield 10e-6
            node.iface.share_write("big", 42)

        machine.spawn(unsub_then_wait(machine.nodes[3]), name="u")
        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run()
        assert machine.nodes[2].store.read("big") == 42  # still subscribed
        assert machine.nodes[3].store.read("big") == 0  # suppressed
        assert machine.nodes[3].iface.suppressed_applies == 1
        assert machine.root_engine("g").suppressed_sends == 1

    def test_sequencing_survives_suppression(self):
        """Header-only applies must consume sequence numbers, so later
        full applies (of other variables) still arrive in order."""
        machine = build()
        machine.declare_variable("g", "small", 0)

        def unsub(node):
            node.iface.unsubscribe("big")
            yield 5e-6

        def writer(node):
            yield 10e-6
            node.iface.share_write("big", 1)
            node.iface.share_write("small", 2)
            node.iface.share_write("big", 3)
            node.iface.share_write("small", 4)

        machine.spawn(unsub(machine.nodes[3]), name="u")
        machine.spawn(writer(machine.nodes[1]), name="w")
        machine.run()
        assert machine.nodes[3].store.read("small") == 4
        assert machine.nodes[3].store.read("big") == 0
        assert machine.nodes[3].iface.suppressed_applies == 2

    def test_resubscribe_refreshes_current_value(self):
        machine = build()

        def choreography(node, writer):
            node.iface.unsubscribe("big")
            yield 5e-6
            writer.iface.share_write("big", 7)
            yield 5e-6
            assert node.store.read("big") == 0  # missed it
            node.iface.resubscribe("big")
            yield from node.store.wait_until("big", lambda v: v == 7)

        machine.spawn(
            choreography(machine.nodes[3], machine.nodes[1]), name="c"
        )
        machine.run()
        assert machine.nodes[3].store.read("big") == 7

    def test_suppression_saves_wire_bytes(self):
        def run(unsubscribe: bool) -> int:
            machine = build()

            def maybe_unsub(node):
                if unsubscribe:
                    node.iface.unsubscribe("big")
                yield 5e-6

            def writer(node):
                yield 10e-6
                for i in range(10):
                    node.iface.share_write("big", i)

            machine.spawn(maybe_unsub(machine.nodes[3]), name="u")
            machine.spawn(writer(machine.nodes[1]), name="w")
            machine.run()
            return machine.network.stats.bytes

        assert run(unsubscribe=True) < run(unsubscribe=False)

    def test_synchronization_variables_cannot_unsubscribe(self):
        machine = build()
        with pytest.raises(MemoryError_):
            machine.nodes[1].iface.unsubscribe("L")
        with pytest.raises(MemoryError_):
            machine.nodes[1].iface.unsubscribe("m")


class TestGroupingAblation:
    def test_global_root_slower_than_split_roots(self):
        config = GroupingConfig(n_nodes=16, n_partitions=4)
        split = run_grouping(config, merged=False)
        merged = run_grouping(config, merged=True)
        assert merged["elapsed"] > split["elapsed"] * 1.5

    def test_gap_holds_across_sizes(self):
        rows = run_grouping_sweep(sizes=(8, 16))
        for row in rows:
            assert row.slowdown > 1.5

    def test_merged_root_carries_multiplied_load(self):
        """The mechanism, measured: the global root receives about
        n_partitions times the traffic of the busiest split root."""
        config = GroupingConfig(n_nodes=16, n_partitions=4)
        split = run_grouping(config, merged=False)
        merged = run_grouping(config, merged=True)
        assert merged["hottest_node"] == 0
        assert merged["hottest_load"] > 3 * split["hottest_load"]

    def test_without_service_time_no_bottleneck(self):
        """With the paper's infinitely fast interfaces the merged root
        is only mildly slower (longer average distances), showing the
        bottleneck really is interface occupancy."""
        config = GroupingConfig(
            n_nodes=16, n_partitions=4, interface_service_time=0.0
        )
        split = run_grouping(config, merged=False)
        merged = run_grouping(config, merged=True)
        assert merged["elapsed"] < split["elapsed"] * 1.6
