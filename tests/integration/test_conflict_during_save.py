"""The rarest Figure 5 path: a conflict arriving while saving.

Figure 5, lines P9-P10: "update usage frequency history; if
variables_saved == NO then resume insharing, return to reg-wait" — a
conflict that lands *between* arming the interrupt and finishing the
rollback save needs no rollback (nothing was altered yet); the
processor just falls back to a regular wait.

The save window is widened here by declaring a large save set (the
save cost is memory-bandwidth-limited), and the conflicting node is
placed adjacent to the root so its grant lands inside that window.
"""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.section import Section

#: A wide save set: 100 locals at 8 bytes = 800 B = 2 us at 400 MB/s.
WIDE_LOCALS = tuple(f"scratch_{i}" for i in range(100))


def build():
    machine = DSMMachine(
        n_nodes=8, topology="ring", checker=MutualExclusionChecker()
    )
    machine.create_group("g", root=0)
    machine.declare_variable("g", "v", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("v",))
    system = make_system("gwc_optimistic", machine)
    return machine, system


def make_section(local_vars=()):
    def body(ctx):
        value = ctx.read("v")
        yield from ctx.compute(1e-6)
        if ctx.aborted:
            return
        ctx.write("v", value + 1)
        ctx.observe_rmw("v", value, value + 1)

    return Section(
        lock="L",
        body=body,
        shared_reads=("v",),
        shared_writes=("v",),
        local_vars=local_vars,
    )


class TestConflictDuringSave:
    def test_unsaved_conflict_skips_rollback(self):
        machine, system = build()
        wide_section = make_section(WIDE_LOCALS)
        fast_section = make_section()
        outcomes = {}

        def far_node(node):
            # Prime the locals the wide save set names.
            for name in WIDE_LOCALS:
                node.locals[name] = 0
            outcome = yield from system.run_section(node, wide_section)
            outcomes["far"] = outcome

        def near_node(node):
            # Starts a touch later; being adjacent to the root its
            # request wins while the far node is still saving.
            yield 0.05e-6
            outcome = yield from system.run_section(node, fast_section)
            outcomes["near"] = outcome

        machine.spawn(far_node(machine.nodes[4]), name="far")
        machine.spawn(near_node(machine.nodes[1]), name="near")
        machine.run()

        far = machine.nodes[4].metrics.counters
        # The far node observed the conflict...
        assert far.get("opt.conflicts", 0) == 1
        # ...but had not finished saving, so no rollback was performed.
        assert far.get("opt.rollbacks", 0) == 0
        assert far.get("opt.attempts", 0) == 1
        # Both updates committed.
        assert machine.nodes[0].store.read("v") == 2
        machine.checker.verify_chain("v", 0)

    def test_saved_conflict_still_rolls_back(self):
        """Control: with a tiny save set the same timing produces a
        normal rollback instead."""
        machine, system = build()
        small_section = make_section()
        fast_section = make_section()

        def far_node(node):
            yield from system.run_section(node, small_section)

        def near_node(node):
            yield 0.05e-6
            yield from system.run_section(node, fast_section)

        machine.spawn(far_node(machine.nodes[4]), name="far")
        machine.spawn(near_node(machine.nodes[1]), name="near")
        machine.run()
        far = machine.nodes[4].metrics.counters
        assert far.get("opt.conflicts", 0) == 1
        assert far.get("opt.rollbacks", 0) == 1
        assert machine.nodes[0].store.read("v") == 2
        machine.checker.verify_chain("v", 0)
