"""Process-backend parity: forked workers change nothing observable.

Mirror of :mod:`tests.integration.test_shard_parity` for the
multi-process executor (:mod:`repro.sim.procshards`): every case runs
serial, in-process sharded, and process sharded, and all three canonical
state hashes must be bit-identical — across shard counts, both sync
policies, mesh and ring topologies, multiple seeds, a deterministic
delay plan, and a node crash landing mid-optimism-window.

Skipped wholesale on hosts that cannot fork (the backend falls back to
the in-process loops there, which the sibling module already covers).
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, crash, delay
from repro.sim.procshards import process_backend_unavailable
from repro.workloads import counter as counter_wl
from repro.workloads.base import run_sharded
from repro.workloads.pipeline import PipelineConfig, run_pipeline
from repro.workloads.task_queue import TaskQueueConfig, run_task_queue

pytestmark = pytest.mark.skipif(
    process_backend_unavailable() is not None,
    reason=str(process_backend_unavailable()),
)

POLICIES = ("optimistic", "conservative")


def _tq(shards: int = 1, policy: str = "optimistic", backend=None, **over):
    config = TaskQueueConfig(
        n_nodes=over.pop("n_nodes", 5),
        total_tasks=over.pop("total_tasks", 24),
        shards=shards,
        shard_policy=policy,
        shard_backend=backend,
        **over,
    )
    return run_task_queue(config)


def _pipe(shards: int = 1, policy: str = "optimistic", backend=None, **over):
    config = PipelineConfig(
        n_nodes=over.pop("n_nodes", 8),
        data_size=over.pop("data_size", 64),
        shards=shards,
        shard_policy=policy,
        shard_backend=backend,
        **over,
    )
    return run_pipeline(config)


def _assert_three_way(serial, inproc, process):
    __tracebackhide__ = True
    assert process.extra["shard_backend"] == "process"
    assert inproc.extra["shard_backend"] == "inproc"
    assert process.extra["state_hash"] == serial.extra["state_hash"]
    assert inproc.extra["state_hash"] == serial.extra["state_hash"]
    assert process.elapsed == serial.elapsed
    assert process.speedup == pytest.approx(serial.speedup)


class TestTaskQueueParity:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_mesh(self, shards, policy):
        serial = _tq()
        inproc = _tq(shards=shards, policy=policy, backend="inproc")
        process = _tq(shards=shards, policy=policy, backend="process")
        _assert_three_way(serial, inproc, process)
        assert process.extra["all_executed"]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_ring(self, policy):
        serial = _tq(topology="ring")
        inproc = _tq(shards=2, policy=policy, backend="inproc", topology="ring")
        process = _tq(
            shards=2, policy=policy, backend="process", topology="ring"
        )
        _assert_three_way(serial, inproc, process)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_seeds(self, seed):
        serial = _tq(seed=seed)
        inproc = _tq(shards=2, backend="inproc", seed=seed)
        process = _tq(shards=2, backend="process", seed=seed)
        _assert_three_way(serial, inproc, process)


class TestPipelineParity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_eight_nodes_two_shards(self, policy):
        serial = _pipe(system="gwc_optimistic")
        inproc = _pipe(
            shards=2, policy=policy, backend="inproc", system="gwc_optimistic"
        )
        process = _pipe(
            shards=2, policy=policy, backend="process", system="gwc_optimistic"
        )
        _assert_three_way(serial, inproc, process)
        assert process.extra["acc_correct"]


class TestProcessRollbackBehaviour:
    def test_optimistic_queue_rolls_back_across_processes(self):
        process = _tq(shards=2, policy="optimistic", backend="process")
        stats = process.extra["shard_stats"]
        assert stats["stragglers"] > 0
        assert stats["rollbacks"] > 0
        assert stats["replayed"] > 0
        assert stats["routed"] > 0

    def test_conservative_never_rolls_back(self):
        process = _tq(shards=2, policy="conservative", backend="process")
        stats = process.extra["shard_stats"]
        assert stats["stragglers"] == 0
        assert stats["rollbacks"] == 0
        assert stats["annihilated"] == 0


class TestFaultPlanParity:
    DELAY_PLAN = FaultPlan(
        [delay(200e-6, extra=40e-6, until=2000e-6, probability=1.0)], seed=3
    )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_deterministic_delay_plan(self, policy):
        serial = _tq(fault_plan=self.DELAY_PLAN)
        inproc = _tq(
            shards=2, policy=policy, backend="inproc",
            fault_plan=self.DELAY_PLAN,
        )
        process = _tq(
            shards=2, policy=policy, backend="process",
            fault_plan=self.DELAY_PLAN,
        )
        _assert_three_way(serial, inproc, process)


class TestCrashMidOptimismWindow:
    """The crash scenario from test_shard_parity, across real processes.

    The fault injector kills node 4's generator while other shards are
    speculating past GVT in their own worker processes; the merged final
    state must still hash identically to the serial crash run.
    """

    N_NODES = 6
    PLAN = FaultPlan([crash(35e-6, node=4)], seed=2)

    @classmethod
    def _build(cls, owned):
        from tests.integration.test_shard_parity import (
            TestCrashMidOptimismWindow as Serial,
        )

        return Serial._build(owned)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_crash_parity(self, policy):
        from repro.workloads.base import finish

        machine, system = self._build(None)
        serial = finish(machine, system)
        final = machine.nodes[0].store.read(counter_wl.COUNTER)
        process = run_sharded(
            self._build, self.N_NODES, 2, policy, backend="process"
        )
        kernel = process.extra.pop("_kernel")
        assert process.extra["shard_backend"] == "process"
        assert process.extra["state_hash"] == serial.extra["state_hash"]
        assert kernel.node(0).store.read(counter_wl.COUNTER) == final
