"""Integration tests for the optimistic mutual-exclusion protocol.

Each test pins one path through Figures 4 and 5: speculative success
with full overlap, conflict-and-rollback, the regular path under
recorded usage, the unsaved-conflict path, flicker handling, and the
nesting error.
"""

from __future__ import annotations

import pytest

from repro.consistency.base import make_system
from repro.consistency.checker import MutualExclusionChecker
from repro.core.machine import DSMMachine
from repro.core.section import Section
from repro.errors import LockNestingError


def build(n=4, threshold=None, force=None, topology="mesh_torus", **kwargs):
    machine = DSMMachine(
        n_nodes=n, topology=topology, checker=MutualExclusionChecker(), **kwargs
    )
    machine.create_group("g", root=0)
    machine.declare_variable("g", "v", 0, mutex_lock="L")
    machine.declare_lock("g", "L", protects=("v",))
    sys_kwargs = {}
    if threshold is not None:
        sys_kwargs["threshold"] = threshold
    if force is not None:
        sys_kwargs["force"] = force
    system = make_system("gwc_optimistic", machine, **sys_kwargs)
    return machine, system


def increment_section(compute=1e-6):
    def body(ctx):
        value = ctx.read("v")
        yield from ctx.compute(compute)
        if ctx.aborted:
            return
        ctx.write("v", value + 1)
        ctx.observe_rmw("v", value, value + 1)

    return Section(
        lock="L", body=body, shared_reads=("v",), shared_writes=("v",)
    )


class TestSpeculativeSuccess:
    def test_uncontended_section_succeeds_optimistically(self):
        machine, system = build()
        section = increment_section()
        outcomes = []

        def worker(node):
            outcome = yield from system.run_section(node, section)
            outcomes.append(outcome)

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        assert outcomes[0].optimistic
        assert not outcomes[0].rolled_back
        assert machine.metrics.total_counter("opt.successes") == 1
        assert machine.metrics.total_counter("opt.rollbacks") == 0
        assert all(n.store.read("v") == 1 for n in machine.nodes)

    def test_overlap_hides_the_lock_round_trip(self):
        """If the section compute exceeds the request round trip, total
        time is compute-bound: the grant delay is fully hidden."""
        compute = 20e-6
        machine, system = build(n=9)
        section = increment_section(compute=compute)
        finish_time = []

        def worker(node):
            yield from system.run_section(node, section)
            finish_time.append(node.sim.now)

        # Node 4 is several hops from the root on the 3x3 torus.
        machine.spawn(worker(machine.nodes[4]), name="w")
        machine.run()
        # Allow only the save/restore bookkeeping on top of the compute.
        assert finish_time[0] == pytest.approx(compute, rel=0.02)

    def test_regular_lock_pays_the_round_trip(self):
        compute = 20e-6
        machine_opt, system_opt = build(n=9)
        machine_reg, system_reg = build(n=9, force="regular")
        times = {}

        for label, (machine, system) in (
            ("opt", (machine_opt, system_opt)),
            ("reg", (machine_reg, system_reg)),
        ):
            section = increment_section(compute=compute)

            def worker(node, label=label, system=system):
                yield from system.run_section(node, section)
                times[label] = node.sim.now

            machine.spawn(worker(machine.nodes[4]), name="w")
            machine.run()
        round_trip = 2 * machine_reg.network.delay(4, 0, 16)
        assert times["reg"] - times["opt"] == pytest.approx(round_trip, rel=0.2)


class TestConflictAndRollback:
    def test_contending_nodes_roll_back_and_stay_correct(self):
        machine, system = build(n=4)
        section = increment_section(compute=2e-6)

        def worker(node):
            for _ in range(4):
                yield from system.run_section(node, section)

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        machine.checker.verify_chain("v", 0)
        assert machine.metrics.total_counter("opt.rollbacks") > 0
        assert all(n.store.read("v") == 16 for n in machine.nodes)

    def test_rollback_restores_saved_values(self):
        """A rolled-back section's speculative write must not survive
        locally once the conflicting holder's value arrives."""
        machine, system = build(n=4)
        observed = []

        def body_slow(ctx):
            value = ctx.read("v")
            yield from ctx.compute(8e-6)
            if ctx.aborted:
                return
            observed.append(("slow-write", value + 100))
            ctx.write("v", value + 100)

        def body_fast(ctx):
            value = ctx.read("v")
            yield from ctx.compute(0.2e-6)
            if ctx.aborted:
                return
            ctx.write("v", value + 1)

        slow = Section(lock="L", body=body_slow, shared_reads=("v",), shared_writes=("v",))
        fast = Section(lock="L", body=body_fast, shared_reads=("v",), shared_writes=("v",))

        def slow_worker(node):
            yield 0.0
            yield from system.run_section(node, slow)

        def fast_worker(node):
            yield from system.run_section(node, fast)

        # The fast worker is adjacent to the root and wins the race; the
        # slow worker (far away) speculates, conflicts, and rolls back.
        machine.spawn(fast_worker(machine.nodes[1]), name="fast")
        machine.spawn(slow_worker(machine.nodes[3]), name="slow")
        machine.run()
        assert all(n.store.read("v") == 101 for n in machine.nodes)

    def test_wasted_time_recorded_for_rollbacks(self):
        machine, system = build(n=4)
        section = increment_section(compute=4e-6)

        def worker(node):
            yield from system.run_section(node, section)

        for node in machine.nodes[1:]:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        if machine.metrics.total_counter("opt.rollbacks"):
            assert machine.metrics.total_wasted() > 0


class TestRegularPath:
    def test_history_pushes_hot_lock_to_regular_path(self):
        machine, system = build(n=4, threshold=0.05)
        section = increment_section(compute=2e-6)

        def worker(node):
            for _ in range(8):
                yield from system.run_section(node, section)

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        assert machine.metrics.total_counter("opt.regular_path") > 0
        assert all(n.store.read("v") == 32 for n in machine.nodes)

    def test_force_regular_never_speculates(self):
        machine, system = build(n=4, force="regular")
        section = increment_section()

        def worker(node):
            yield from system.run_section(node, section)

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        assert machine.metrics.total_counter("opt.attempts") == 0
        assert machine.root_engine("g").discarded == 0
        assert all(n.store.read("v") == 4 for n in machine.nodes)

    def test_force_optimistic_always_speculates(self):
        machine, system = build(n=4, force="optimistic")
        section = increment_section(compute=2e-6)

        def worker(node):
            for _ in range(4):
                yield from system.run_section(node, section)

        for node in machine.nodes:
            machine.spawn(worker(node), name=f"w{node.id}")
        machine.run()
        total = machine.metrics.total_counter
        # Every request either speculated or found the lock visibly held.
        assert total("opt.attempts") + total("opt.regular_path") == 16
        assert total("opt.attempts") > 0
        assert all(n.store.read("v") == 16 for n in machine.nodes)


class TestEdgeCases:
    def test_nested_acquisition_rejected(self):
        machine, system = build()
        inner = increment_section()

        def nesting_body(ctx):
            yield from ctx.compute(0.1e-6)
            # Illegal: re-enter the same lock from inside the section.
            yield from system.run_section(ctx.node, inner)

        outer = Section(lock="L", body=nesting_body)

        def worker(node):
            yield from system.run_section(node, outer)

        machine.spawn(worker(machine.nodes[1]), name="w")
        with pytest.raises(LockNestingError):
            machine.run()

    def test_own_release_flicker_continues_speculation(self):
        """Back-to-back sections by one node: the echo of its own
        release (FREE) arrives mid-speculation and must not abort it."""
        machine, system = build(n=6, topology="ring")
        section = increment_section(compute=3e-6)

        def worker(node):
            for _ in range(3):
                yield from system.run_section(node, section)

        machine.spawn(worker(machine.nodes[3]), name="w")
        machine.run()
        assert machine.metrics.total_counter("opt.flickers") > 0
        assert machine.metrics.total_counter("opt.rollbacks") == 0
        assert machine.metrics.total_counter("opt.successes") == 3
        assert all(n.store.read("v") == 3 for n in machine.nodes)

    def test_standalone_acquire_release_still_works(self):
        """The optimistic system's plain acquire/release (no section) is
        the regular blocking protocol."""
        machine, system = build()
        log = []

        def worker(node):
            yield from system.acquire(node, "L")
            log.append("held")
            yield from system.release(node, "L")

        machine.spawn(worker(machine.nodes[2]), name="w")
        machine.run()
        assert log == ["held"]
